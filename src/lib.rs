//! # truly-perfect-samplers
//!
//! Facade crate for the workspace reproducing Jayaram, Woodruff and Zhou,
//! *"Truly Perfect Samplers for Data Streams and Sliding Windows"*
//! (PODS 2022). It re-exports the six sub-crates under stable module names
//! so applications can depend on one crate:
//!
//! ```
//! use truly_perfect_samplers::core::lp::TrulyPerfectLpSampler;
//! use truly_perfect_samplers::streams::{SampleOutcome, StreamSampler};
//!
//! let mut sampler = TrulyPerfectLpSampler::new(2.0, 1024, 0.05, 42);
//! sampler.update_batch(&[3, 3, 3, 7, 7, 11]);
//! assert!(!matches!(sampler.sample(), SampleOutcome::Empty));
//! ```
//!
//! The parallel front door is builder-first, and queries go through the
//! typed [`QueryOptions`] surface — the same options drive the in-process
//! [`ShardedSampler::query`], the networked [`QueryClient`] and the
//! `tps-service query` CLI:
//!
//! ```
//! use truly_perfect_samplers::{
//!     restore_bytes, snapshot_bytes, Backpressure, QueryOptions, ShardedSampler,
//!     ShardedSamplerBuilder, StreamSampler, TrulyPerfectLpSampler,
//! };
//!
//! let mut sharded = ShardedSamplerBuilder::new(4)
//!     .seed(42)
//!     .backpressure(Backpressure::Spill)
//!     .build(|shard| TrulyPerfectLpSampler::new(2.0, 1024, 0.05, 42 ^ ((shard as u64) << 32)));
//! sharded.update_batch(&[3, 3, 3, 7, 7, 11]);
//!
//! // A consistent query folds the shards fresh; a cached query reuses
//! // the last published merge while it is within the staleness bound.
//! let fresh = sharded.query(&QueryOptions::consistent());
//! let cached = sharded.query(&QueryOptions::cached(2));
//! assert!(cached.cached && cached.epoch == fresh.epoch);
//!
//! // Checkpoint and restore through the top-level helpers.
//! let bytes = snapshot_bytes(&sharded);
//! let replica: ShardedSampler<TrulyPerfectLpSampler> = restore_bytes(&bytes).unwrap();
//! assert_eq!(snapshot_bytes(&replica), bytes);
//! ```
//!
//! See `crates/README.md` for the crate dependency DAG, the map from
//! modules to paper theorems, and the cross-process ingest service
//! (`tps-service`) built on these pieces — including the non-stalling
//! TCP query plane its coordinator serves ([`QueryClient`] dials it).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use tps_core as core;
pub use tps_random as random;
pub use tps_service as service;
pub use tps_sketches as sketches;
pub use tps_streams as streams;
pub use tps_window as window;

pub use tps_core::lp::TrulyPerfectLpSampler;
pub use tps_core::{
    hash_route, QueryCacheStats, RuntimeStats, ShardedSampler, ShardedSamplerBuilder,
    ShardingStrategy, StrictTurnstileF0Sampler, TrulyPerfectGSampler,
};
// The typed query surface (shared by `ShardedSampler::query`, the
// networked `QueryClient` and the CLI) plus the client itself.
pub use tps_service::{QueryClient, QueryError, QueryReport};
pub use tps_streams::codec::migrate::upgrade_to_current;
pub use tps_streams::{
    Backpressure, CodecError, MergeableSampler, MergeableSummary, Restore, SampleOutcome,
    SignedUpdate, SlidingWindowSampler, Snapshot, StreamSampler, TurnstileSampler,
};
pub use tps_streams::{QueryConsistency, QueryOptions, QuerySnapshot};

/// Seals `component`'s complete logical state as a versioned, checksummed
/// snapshot — the facade spelling of [`Snapshot::snapshot`], so callers
/// don't need the trait in scope to checkpoint.
pub fn snapshot_bytes<T: Snapshot>(component: &T) -> Vec<u8> {
    component.snapshot()
}

/// Rebuilds a component from bytes produced by [`snapshot_bytes`] — the
/// facade spelling of [`Restore::restore`]. Bytes sealed under an older
/// supported format version are converted through [`upgrade_to_current`]
/// automatically; only an unknown (e.g. future) version fails with
/// [`CodecError::UnsupportedVersion`].
pub fn restore_bytes<T: Restore>(bytes: &[u8]) -> Result<T, CodecError> {
    match T::restore(bytes) {
        Err(CodecError::UnsupportedVersion { .. }) => T::restore(&upgrade_to_current(bytes)?),
        result => result,
    }
}
