//! # truly-perfect-samplers
//!
//! Facade crate for the workspace reproducing Jayaram, Woodruff and Zhou,
//! *"Truly Perfect Samplers for Data Streams and Sliding Windows"*
//! (PODS 2022). It re-exports the six sub-crates under stable module names
//! so applications can depend on one crate:
//!
//! ```
//! use truly_perfect_samplers::core::lp::TrulyPerfectLpSampler;
//! use truly_perfect_samplers::streams::{SampleOutcome, StreamSampler};
//!
//! let mut sampler = TrulyPerfectLpSampler::new(2.0, 1024, 0.05, 42);
//! sampler.update_batch(&[3, 3, 3, 7, 7, 11]);
//! assert!(!matches!(sampler.sample(), SampleOutcome::Empty));
//! ```
//!
//! See `crates/README.md` for the crate dependency DAG and the map from
//! modules to paper theorems.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use tps_core as core;
pub use tps_random as random;
pub use tps_sketches as sketches;
pub use tps_streams as streams;
pub use tps_window as window;

pub use tps_core::lp::TrulyPerfectLpSampler;
pub use tps_core::{ShardedSampler, ShardingStrategy, TrulyPerfectGSampler};
pub use tps_streams::{
    Backpressure, CodecError, MergeableSampler, MergeableSummary, Restore, SampleOutcome,
    SlidingWindowSampler, Snapshot, StreamSampler, TurnstileSampler,
};
