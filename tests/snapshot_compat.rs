//! The snapshot-compat gate: the committed golden corpus under
//! `tests/golden/snapshots/` must stay decodable, canonical and
//! current-version. This is the CI job that turns any accidental wire-format
//! change into a hard failure:
//!
//! * every corpus file must **decode** with the current decoder (a PR that
//!   changes an encoding must bump `FORMAT_VERSION` and regenerate the
//!   corpus — silently breaking old checkpoints fails here);
//! * decoding and re-encoding must reproduce the committed bytes exactly
//!   (snapshots are canonical, so any encoder drift without a version bump
//!   also fails here);
//! * every file's header must carry the current `FORMAT_VERSION` (a bumped
//!   version with a stale corpus — a silent re-version — fails both the
//!   decode and this explicit check).
//!
//! Regenerate after an intentional format change with:
//!
//! ```bash
//! REGENERATE_GOLDEN_SNAPSHOTS=1 cargo test --test snapshot_compat
//! ```
//!
//! and commit the new files together with the `FORMAT_VERSION` bump.
//!
//! The same corpus doubles as the decode-hardening fixture: truncated,
//! bit-flipped, wrong-magic, future-version and oversized-length variants
//! of every file must come back as typed [`CodecError`]s — never a panic,
//! never an unbounded allocation.

use std::path::PathBuf;

use tps_core::engine::SkipAheadEngine;
use tps_core::f0::{SlidingWindowF0Sampler, TrulyPerfectF0Sampler};
use tps_core::framework::{MeasureNormalizer, TrulyPerfectGSampler};
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sharded::{ShardedSampler, ShardedSamplerBuilder, ShardingStrategy};
use tps_core::sliding::{SlidingWindowGSampler, SlidingWindowLpSampler};
use tps_core::turnstile::StrictTurnstileF0Sampler;
use tps_random::{default_rng, Xoshiro256};
use tps_sketches::exact_counter::SuffixCountTable;
use tps_sketches::{
    AmsFpEstimator, CountMin, CountSketch, MisraGries, SpaceSaving, SparseRecovery,
};
use tps_streams::codec::{self, peek_version, CodecError, Restore, Snapshot, FORMAT_VERSION};
use tps_streams::{
    Estimator, Huber, Item, Lp, SignedUpdate, SlidingWindowSampler, StreamSampler,
    TurnstileSampler, L1L2,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("snapshots")
}

/// An integer-only skewed stream (no float transcendentals, so corpus
/// generation is bit-stable across platforms and build profiles).
fn skewed_stream(len: usize, universe: u64) -> Vec<Item> {
    (0..len as u64)
        .map(|i| {
            let z = i
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            if z % 3 == 0 {
                z % 5
            } else {
                z % universe
            }
        })
        .collect()
}

/// Builds the full corpus deterministically: one representative snapshot
/// per top-level component tag, small enough to commit, states reached by
/// real ingestion (thresholds crossed, cohorts retired, shards skewed).
fn build_corpus() -> Vec<(&'static str, Vec<u8>)> {
    let stream = skewed_stream(3_000, 97);
    let mut corpus: Vec<(&'static str, Vec<u8>)> = Vec::new();

    let mut rng = Xoshiro256::seed_from_u64(42);
    for _ in 0..57 {
        use tps_random::StreamRng;
        rng.next_u64();
    }
    corpus.push(("xoshiro256.snap", rng.snapshot()));

    let mut engine = SkipAheadEngine::with_seed(5, 7);
    engine.update_batch(&stream);
    corpus.push(("skip_ahead_engine.snap", engine.snapshot()));

    let g = Huber::new(2.0);
    let mut huber = TrulyPerfectGSampler::with_instances(g, MeasureNormalizer::new(g), 8, 11);
    huber.update_batch(&stream);
    corpus.push(("g_sampler_huber.snap", huber.snapshot()));

    let mut l1l2 = TrulyPerfectGSampler::with_instances(L1L2, MeasureNormalizer::new(L1L2), 6, 13);
    l1l2.update_batch(&stream);
    corpus.push(("g_sampler_l1l2.snap", l1l2.snapshot()));

    let mut lp2 = TrulyPerfectLpSampler::new(2.0, 64, 0.2, 17);
    lp2.update_batch(&stream);
    corpus.push(("lp_sampler_p2.snap", lp2.snapshot()));

    let mut lp_half = TrulyPerfectLpSampler::fractional(0.5, 3_000, 0.3, 19);
    lp_half.update_batch(&stream);
    corpus.push(("lp_sampler_p05.snap", lp_half.snapshot()));

    // Overflows the sqrt(400) = 20 first-distinct threshold.
    let wide = skewed_stream(1_500, 380);
    let mut f0 = TrulyPerfectF0Sampler::new(400, 0.1, 23);
    f0.update_batch(&wide);
    corpus.push(("f0_sampler.snap", f0.snapshot()));

    let mut sliding_f0 = SlidingWindowF0Sampler::new(400, 120, 0.1, 29);
    for &x in &wide {
        SlidingWindowSampler::update(&mut sliding_f0, x);
    }
    corpus.push(("sliding_f0_sampler.snap", sliding_f0.snapshot()));

    // 3000 updates over window 250 → many cohort births and retirements.
    let mut sliding_g = SlidingWindowGSampler::new(Lp::new(1.0), 250, 0.1, 31);
    sliding_g.update_batch(&stream);
    corpus.push(("sliding_g_sampler.snap", sliding_g.snapshot()));

    let mut sliding_lp = SlidingWindowLpSampler::with_estimator_size(2.0, 64, 0.2, 2, 6, 37);
    sliding_lp.update_batch(&skewed_stream(500, 23));
    corpus.push(("sliding_lp_sampler.snap", sliding_lp.snapshot()));

    let mut sharded = ShardedSamplerBuilder::new(3)
        .strategy(ShardingStrategy::Hash)
        .seed(41)
        .build(|idx| TrulyPerfectLpSampler::new(2.0, 64, 0.2, 41 ^ ((idx as u64) << 32)));
    sharded.update_batch(&stream);
    corpus.push(("sharded_lp_hash.snap", sharded.snapshot()));

    let mut rng = default_rng(43);
    let mut cm = CountMin::new(&mut rng, 3, 32);
    cm.update_batch(&stream);
    corpus.push(("count_min.snap", cm.snapshot()));

    let mut rng = default_rng(47);
    let mut cs = CountSketch::new(&mut rng, 3, 32);
    cs.insert_batch(&stream);
    corpus.push(("count_sketch.snap", cs.snapshot()));

    let mut mg = MisraGries::new(16);
    mg.update_batch(&stream);
    corpus.push(("misra_gries.snap", mg.snapshot()));

    let mut ss = SpaceSaving::new(16);
    for &x in &stream {
        ss.update(x);
    }
    corpus.push(("space_saving.snap", ss.snapshot()));

    let mut table = SuffixCountTable::new();
    table.track(1);
    table.track(4);
    table.update_batch(&stream);
    corpus.push(("suffix_count_table.snap", table.snapshot()));

    let mut ams = AmsFpEstimator::new(2.0, 3, 8, default_rng(53));
    for &x in &stream[..1_000] {
        Estimator::update(&mut ams, x);
    }
    corpus.push(("ams_fp_estimator.snap", ams.snapshot()));

    // Strict-turnstile kinds (new tags in PR 8): signed updates with a
    // deterministic sprinkling of deletes, counts never negative.
    let signed: Vec<SignedUpdate> = skewed_stream(1_200, 90)
        .into_iter()
        .enumerate()
        .flat_map(|(i, item)| {
            let mut updates = vec![SignedUpdate { item, delta: 1 }];
            if i % 3 == 0 {
                updates.push(SignedUpdate { item, delta: 1 });
                updates.push(SignedUpdate { item, delta: -1 });
            }
            updates
        })
        .collect();

    let mut recovery = SparseRecovery::new(12, 90);
    for &u in &signed {
        recovery.update(u);
    }
    corpus.push(("sparse_recovery.snap", recovery.snapshot()));

    let mut turnstile = StrictTurnstileF0Sampler::new(90, 59);
    turnstile.update_batch(&signed);
    corpus.push(("turnstile_f0_sampler.snap", turnstile.snapshot()));

    let mut sharded_turnstile = ShardedSamplerBuilder::new(3)
        .strategy(ShardingStrategy::Hash)
        .seed(61)
        .build_turnstile(|_idx| StrictTurnstileF0Sampler::new(90, 61));
    sharded_turnstile.update_batch(&signed);
    corpus.push(("sharded_turnstile_hash.snap", sharded_turnstile.snapshot()));

    corpus
}

/// The committed corpus file names — deleting a file from the corpus
/// without touching this list fails the gate.
const CORPUS_FILES: &[&str] = &[
    "xoshiro256.snap",
    "skip_ahead_engine.snap",
    "g_sampler_huber.snap",
    "g_sampler_l1l2.snap",
    "lp_sampler_p2.snap",
    "lp_sampler_p05.snap",
    "f0_sampler.snap",
    "sliding_f0_sampler.snap",
    "sliding_g_sampler.snap",
    "sliding_lp_sampler.snap",
    "sharded_lp_hash.snap",
    "count_min.snap",
    "count_sketch.snap",
    "misra_gries.snap",
    "space_saving.snap",
    "suffix_count_table.snap",
    "ams_fp_estimator.snap",
    "sparse_recovery.snap",
    "turnstile_f0_sampler.snap",
    "sharded_turnstile_hash.snap",
];

fn reencode<T: Restore>(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    Ok(T::restore(bytes)?.snapshot())
}

/// Decodes a corpus file as the type its name announces and re-encodes it.
fn decode_and_reencode(name: &str, bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    match name {
        "xoshiro256.snap" => reencode::<Xoshiro256>(bytes),
        "skip_ahead_engine.snap" => reencode::<SkipAheadEngine>(bytes),
        "g_sampler_huber.snap" => {
            reencode::<TrulyPerfectGSampler<Huber, MeasureNormalizer<Huber>>>(bytes)
        }
        "g_sampler_l1l2.snap" => {
            reencode::<TrulyPerfectGSampler<L1L2, MeasureNormalizer<L1L2>>>(bytes)
        }
        "lp_sampler_p2.snap" | "lp_sampler_p05.snap" => reencode::<TrulyPerfectLpSampler>(bytes),
        "f0_sampler.snap" => reencode::<TrulyPerfectF0Sampler>(bytes),
        "sliding_f0_sampler.snap" => reencode::<SlidingWindowF0Sampler>(bytes),
        "sliding_g_sampler.snap" => reencode::<SlidingWindowGSampler<Lp>>(bytes),
        "sliding_lp_sampler.snap" => reencode::<SlidingWindowLpSampler>(bytes),
        "sharded_lp_hash.snap" => reencode::<ShardedSampler<TrulyPerfectLpSampler>>(bytes),
        "count_min.snap" => reencode::<CountMin>(bytes),
        "count_sketch.snap" => reencode::<CountSketch>(bytes),
        "misra_gries.snap" => reencode::<MisraGries>(bytes),
        "space_saving.snap" => reencode::<SpaceSaving>(bytes),
        "suffix_count_table.snap" => reencode::<SuffixCountTable>(bytes),
        "ams_fp_estimator.snap" => reencode::<AmsFpEstimator>(bytes),
        "sparse_recovery.snap" => reencode::<SparseRecovery>(bytes),
        "turnstile_f0_sampler.snap" => reencode::<StrictTurnstileF0Sampler>(bytes),
        "sharded_turnstile_hash.snap" => {
            reencode::<ShardedSampler<StrictTurnstileF0Sampler, SignedUpdate>>(bytes)
        }
        other => panic!("corpus file {other} has no registered decoder"),
    }
}

/// True while the regeneration test is rewriting the corpus in a parallel
/// test thread; the read-side tests skip in that mode instead of racing
/// half-written files.
fn regenerating() -> bool {
    std::env::var_os("REGENERATE_GOLDEN_SNAPSHOTS").is_some()
}

fn read_corpus_file(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read committed golden snapshot {}: {e} \
             (REGENERATE_GOLDEN_SNAPSHOTS=1 cargo test --test snapshot_compat)",
            path.display()
        )
    })
}

/// The compat gate itself (see the module docs). With
/// `REGENERATE_GOLDEN_SNAPSHOTS=1` it rewrites the corpus instead.
#[test]
fn golden_corpus_decodes_and_reencodes_byte_identically() {
    if regenerating() {
        let dir = corpus_dir();
        std::fs::create_dir_all(&dir).expect("create corpus dir");
        for (name, bytes) in build_corpus() {
            std::fs::write(dir.join(name), &bytes).expect("write corpus file");
        }
        eprintln!("regenerated {} golden snapshots", CORPUS_FILES.len());
        return;
    }
    let built: Vec<&str> = build_corpus().iter().map(|&(n, _)| n).collect();
    assert_eq!(
        built, CORPUS_FILES,
        "CORPUS_FILES must list exactly the snapshots build_corpus produces"
    );
    for &name in CORPUS_FILES {
        let bytes = read_corpus_file(name);
        assert_eq!(
            peek_version(&bytes),
            Ok(FORMAT_VERSION),
            "{name}: committed snapshot is not at the current format version — \
             bump FORMAT_VERSION and regenerate the corpus explicitly"
        );
        let reencoded = decode_and_reencode(name, &bytes).unwrap_or_else(|e| {
            panic!(
                "{name}: committed golden snapshot no longer decodes ({e}) — \
                 the wire format changed without a version bump + corpus regeneration"
            )
        });
        assert_eq!(
            reencoded, bytes,
            "{name}: decode → re-encode changed the bytes — the encoder drifted \
             without a version bump + corpus regeneration"
        );
    }
}

/// Decode hardening, part 1: every truncation of every corpus file returns
/// a typed error (never panics, never succeeds).
#[test]
fn truncated_snapshots_fail_with_typed_errors() {
    if regenerating() {
        return;
    }
    for &name in CORPUS_FILES {
        let bytes = read_corpus_file(name);
        let step = (bytes.len() / 512).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            match decode_and_reencode(name, &bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("{name}: truncation at {cut} decoded successfully"),
            }
        }
    }
}

/// Decode hardening, part 2: single-bit corruption anywhere in the file is
/// rejected (the FNV-1a checksum, or an earlier header check, catches it).
#[test]
fn bit_flipped_snapshots_fail_with_typed_errors() {
    if regenerating() {
        return;
    }
    for &name in CORPUS_FILES {
        let bytes = read_corpus_file(name);
        let step = (bytes.len() / 256).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                match decode_and_reencode(name, &corrupt) {
                    Err(_) => {}
                    Ok(_) => panic!("{name}: flipped bit {bit} of byte {pos} went unnoticed"),
                }
            }
        }
    }
}

/// Re-seals a tampered snapshot with a valid checksum, so the named header
/// check (not the checksum) is what the decoder must catch.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let end = bytes.len() - 8;
    let digest = codec::checksum(&bytes[..end]);
    bytes[end..].copy_from_slice(&digest.to_le_bytes());
    bytes
}

/// Decode hardening, part 3: wrong magic, future version, wrong component
/// tag and oversized length fields each produce their specific typed error
/// — with checksums fixed up so the targeted check is the one that fires —
/// and a length-field attack fails before any allocation.
#[test]
fn tampered_headers_fail_with_specific_errors() {
    if regenerating() {
        return;
    }
    for &name in CORPUS_FILES {
        let bytes = read_corpus_file(name);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        let wrong_magic = reseal(wrong_magic);
        assert!(
            matches!(
                decode_and_reencode(name, &wrong_magic),
                Err(CodecError::BadMagic { .. })
            ),
            "{name}: wrong magic not reported"
        );

        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let future = reseal(future);
        assert_eq!(
            decode_and_reencode(name, &future),
            Err(CodecError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            }),
            "{name}: future version not reported"
        );

        let mut wrong_tag = bytes.clone();
        wrong_tag[6] ^= 0xFF;
        let wrong_tag = reseal(wrong_tag);
        assert!(
            matches!(
                decode_and_reencode(name, &wrong_tag),
                Err(CodecError::TagMismatch { .. })
            ),
            "{name}: wrong component tag not reported"
        );

        // A length field claiming far more payload than exists must fail
        // fast (Truncated), not allocate.
        let mut oversized = bytes.clone();
        oversized[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let oversized = reseal(oversized);
        assert!(
            matches!(
                decode_and_reencode(name, &oversized),
                Err(CodecError::Truncated { .. })
            ),
            "{name}: oversized declared length not reported"
        );

        // Trailing garbage after a valid envelope is also rejected.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 16]);
        assert!(
            decode_and_reencode(name, &padded).is_err(),
            "{name}: trailing bytes went unnoticed"
        );
    }
}

/// Decode hardening, part 4: adversarial snapshots with *valid* checksums
/// (the FNV checksum is an integrity check, not an authenticity mechanism)
/// must still come back as typed errors or cheap successes — size fields
/// that are legal state but untrusted must never drive an allocation, and
/// no decodable state may panic later inside a query.
#[test]
fn crafted_snapshots_never_panic_or_overallocate() {
    use tps_streams::codec::{seal, tag, SnapshotWriter};
    use tps_streams::SampleOutcome;

    // A Misra–Gries summary declaring an absurd counter budget but holding
    // nothing: `capacity` is legal state, so this decodes — but it must do
    // so instantly, without sizing an allocation from the field.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::MISRA_GRIES);
    w.put_u64(1 << 60); // capacity
    w.put_u64(0); // processed
    w.put_u64(0); // decrements
    w.put_u64(0); // counter count
    let huge_mg = MisraGries::restore(&seal(tag::MISRA_GRIES, &w.into_bytes()))
        .expect("oversized capacity is legal state");
    assert_eq!(huge_mg.capacity(), 1 << 60);
    assert_eq!(huge_mg.estimate(7), 0);

    // Same shape for SpaceSaving.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::SPACE_SAVING);
    w.put_u64(1 << 60); // capacity
    w.put_u64(0); // processed
    w.put_u64(0); // merge slack
    w.put_u64(0); // counter count
    let huge_ss = SpaceSaving::restore(&seal(tag::SPACE_SAVING, &w.into_bytes()))
        .expect("oversized capacity is legal state");
    assert_eq!(huge_ss.processed(), 0);

    // An F0 snapshot claiming a non-empty, non-overflowed stream with an
    // empty first-distinct set: live ingestion can never produce this, and
    // accepting it would make the next `sample()` index into an empty
    // vector — the decoder must reject it.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::F0_SAMPLER);
    w.put_u64(1); // universe
    w.put_u64(1); // threshold
    w.put_u8(0); // overflowed = false
    w.put_u64(1); // processed
    Xoshiro256::seed_from_u64(1).encode_into(&mut w);
    w.put_u64(0); // first-distinct count (inconsistent with processed = 1)
    w.put_u64(0); // candidate repetitions
    assert!(matches!(
        TrulyPerfectF0Sampler::restore(&seal(tag::F0_SAMPLER, &w.into_bytes())),
        Err(CodecError::InvalidValue { .. })
    ));

    // The overflowed variant of the same shape IS reachable live-adjacent
    // state for queries: it must decode and fail the sample cleanly.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::F0_SAMPLER);
    w.put_u64(1); // universe
    w.put_u64(1); // threshold
    w.put_u8(1); // overflowed = true
    w.put_u64(1); // processed
    Xoshiro256::seed_from_u64(1).encode_into(&mut w);
    w.put_u64(0); // first-distinct count
    w.put_u64(0); // candidate repetitions
    let mut overflowed =
        TrulyPerfectF0Sampler::restore(&seal(tag::F0_SAMPLER, &w.into_bytes())).unwrap();
    assert_eq!(overflowed.sample(), SampleOutcome::Fail);

    // Grid-shaped components with dimension fields whose product
    // overflows or dwarfs the payload fail fast through `check_grid`.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::COUNT_MIN);
    w.put_u64(u64::MAX / 2); // rows
    w.put_u64(4); // cols
    w.put_u64(0); // processed
    assert!(matches!(
        CountMin::restore(&seal(tag::COUNT_MIN, &w.into_bytes())),
        Err(CodecError::Truncated { .. })
    ));
}

/// Decode hardening, part 5: restored state must never panic at query
/// time. A sharded snapshot whose individually-valid shards disagree on
/// configuration would explode inside the query-time fold-merge; the
/// decoder must reject it up front. Likewise, factory parameters that size
/// *future* allocations (smooth-histogram estimator dims, per-cohort unit
/// counts) are bounded at decode time even though no payload length covers
/// them.
#[test]
fn inconsistent_or_oversized_deferred_state_is_rejected() {
    use tps_streams::codec::{seal, tag, SnapshotWriter};

    // Two shards with different exponents: each decodes alone, merged they
    // would hit the Lp merge assertion.
    let stream = skewed_stream(500, 31);
    let mut shard_a = TrulyPerfectLpSampler::new(2.0, 64, 0.2, 1);
    let mut shard_b = TrulyPerfectLpSampler::new(1.5, 64, 0.2, 2);
    shard_a.update_batch(&stream);
    shard_b.update_batch(&stream);
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::SHARDED_SAMPLER);
    w.put_u8(0); // hash strategy
    w.put_u8(0); // backpressure: block
    w.put_u64(4_096); // parallel cutoff
    w.put_u64(32 * 1024); // chunk length
    w.put_u64(0); // cursor
    w.put_u64(1_000); // processed
    Xoshiro256::seed_from_u64(3).encode_into(&mut w);
    w.put_u64(2); // shard count
    shard_a.encode_into(&mut w);
    shard_b.encode_into(&mut w);
    assert!(matches!(
        ShardedSampler::<TrulyPerfectLpSampler>::restore(&seal(
            tag::SHARDED_SAMPLER,
            &w.into_bytes()
        )),
        Err(CodecError::InvalidValue { .. })
    ));

    // A window-norm estimator whose factory declares absurd dimensions:
    // nothing in the payload corroborates them (they size future
    // checkpoints), so the decoder must bound them.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::SLIDING_LP_ESTIMATE);
    w.put_f64(2.0); // p
    w.put_f64(1.5); // safety factor
    w.put_tag(tag::SMOOTH_HISTOGRAM);
    w.put_u64(100); // window
    w.put_f64(0.1); // beta
    w.put_u64(0); // time
    w.put_tag(tag::LP_FACTORY);
    w.put_f64(2.0); // p
    w.put_u64(1 << 31); // rows
    w.put_u64(1 << 31); // cols
    Xoshiro256::seed_from_u64(5).encode_into(&mut w);
    w.put_u64(0); // checkpoints
    assert!(matches!(
        tps_window::SlidingWindowLpEstimate::restore(&seal(
            tag::SLIDING_LP_ESTIMATE,
            &w.into_bytes()
        )),
        Err(CodecError::InvalidValue { .. })
    ));

    // An empty cohort manager (inside a sliding G-sampler) declaring an
    // absurd per-cohort unit count: the first post-restore epoch would
    // allocate it.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::SLIDING_G_SAMPLER);
    w.put_tag(tag::MEASURE_LP);
    w.put_f64(1.0);
    w.put_tag(tag::COHORT_MANAGER);
    w.put_u64(100); // window
    w.put_u64(1 << 60); // per-cohort units
    w.put_u64(0); // time
    Xoshiro256::seed_from_u64(7).encode_into(&mut w);
    w.put_u64(0); // cohorts
    assert!(matches!(
        SlidingWindowGSampler::<Lp>::restore(&seal(tag::SLIDING_G_SAMPLER, &w.into_bytes())),
        Err(CodecError::InvalidValue { .. })
    ));
}

/// Decode hardening, part 6: configuration smuggling. The exponent and
/// shard-count fields travel in several places; a crafted snapshot must
/// not decode with disagreeing copies (silently wrong distributions) or a
/// shard count sized to blow up the first post-restore scatter.
#[test]
fn disagreeing_or_oversized_configuration_is_rejected() {
    use tps_streams::codec::{seal, tag, SnapshotWriter};
    use tps_streams::Snapshot as _;

    // An honest L2 sampler, re-encoded with the top-level exponent nudged:
    // the sampler/measure cross-check must catch it.
    let mut honest = TrulyPerfectLpSampler::new(2.0, 64, 0.2, 3);
    honest.update_batch(&skewed_stream(200, 31));
    let mut w = SnapshotWriter::new();
    honest.encode_into(&mut w);
    let mut payload = w.into_bytes();
    // Field layout: tag u16, then the f64 exponent.
    payload[2..10].copy_from_slice(&1.5f64.to_bits().to_le_bytes());
    assert!(matches!(
        TrulyPerfectLpSampler::restore(&seal(tag::LP_SAMPLER, &payload)),
        Err(CodecError::InvalidValue { .. })
    ));

    // Mixed-measure shards (same instance counts, different Huber tau):
    // merge_compatible at decode time must reject what the query-time
    // fold-merge would silently mis-sample.
    let mut shard_a = TrulyPerfectGSampler::with_instances(
        Huber::new(1.0),
        MeasureNormalizer::new(Huber::new(1.0)),
        4,
        1,
    );
    let mut shard_b = TrulyPerfectGSampler::with_instances(
        Huber::new(1000.0),
        MeasureNormalizer::new(Huber::new(1000.0)),
        4,
        2,
    );
    shard_a.update_batch(&skewed_stream(200, 31));
    shard_b.update_batch(&skewed_stream(200, 31));
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::SHARDED_SAMPLER);
    w.put_u8(0);
    w.put_u8(0); // backpressure: block
    w.put_u64(4_096); // parallel cutoff
    w.put_u64(32 * 1024); // chunk length
    w.put_u64(0);
    w.put_u64(400);
    Xoshiro256::seed_from_u64(9).encode_into(&mut w);
    w.put_u64(2);
    shard_a.encode_into(&mut w);
    shard_b.encode_into(&mut w);
    assert!(matches!(
        ShardedSampler::<TrulyPerfectGSampler<Huber, MeasureNormalizer<Huber>>>::restore(&seal(
            tag::SHARDED_SAMPLER,
            &w.into_bytes()
        )),
        Err(CodecError::InvalidValue { .. })
    ));

    // A shard count big enough to make the k x k scatter matrix explode
    // must be rejected before any shard is even decoded.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::SHARDED_SAMPLER);
    w.put_u8(0);
    w.put_u8(0); // backpressure: block
    w.put_u64(4_096); // parallel cutoff
    w.put_u64(32 * 1024); // chunk length
    w.put_u64(0);
    w.put_u64(0);
    Xoshiro256::seed_from_u64(11).encode_into(&mut w);
    w.put_u64(1 << 20); // shard count
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(&vec![0u8; 1 << 20]); // one byte per claimed shard
    assert!(matches!(
        ShardedSampler::<TrulyPerfectLpSampler>::restore(&seal(tag::SHARDED_SAMPLER, &bytes)),
        Err(CodecError::InvalidValue { .. })
    ));
}

/// Decode hardening, part 7: the window-norm estimator's exponent must
/// agree with its factory and checkpoints, and F0 state must stay inside
/// its declared universe — the remaining configuration-smuggling seams.
#[test]
fn estimator_exponent_and_f0_universe_smuggling_rejected() {
    use tps_streams::codec::{seal, tag, SnapshotWriter};
    use tps_streams::Snapshot as _;

    // Estimator claiming p = 2 with a factory built for p = 1.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::SLIDING_LP_ESTIMATE);
    w.put_f64(2.0); // p
    w.put_f64(1.5); // safety factor
    w.put_tag(tag::SMOOTH_HISTOGRAM);
    w.put_u64(100); // window
    w.put_f64(0.1); // beta
    w.put_u64(0); // time
    w.put_tag(tag::LP_FACTORY);
    w.put_f64(1.0); // factory p — disagrees
    w.put_u64(2);
    w.put_u64(4);
    Xoshiro256::seed_from_u64(13).encode_into(&mut w);
    w.put_u64(0); // checkpoints
    assert!(matches!(
        tps_window::SlidingWindowLpEstimate::restore(&seal(
            tag::SLIDING_LP_ESTIMATE,
            &w.into_bytes()
        )),
        Err(CodecError::InvalidValue { .. })
    ));

    // F0 snapshot whose first-distinct set holds an item outside the
    // declared universe: consumers sized to universe() would misbehave.
    let mut w = SnapshotWriter::new();
    w.put_tag(tag::F0_SAMPLER);
    w.put_u64(100); // universe
    w.put_u64(10); // threshold
    w.put_u8(0); // overflowed
    w.put_u64(1); // processed
    Xoshiro256::seed_from_u64(17).encode_into(&mut w);
    w.put_u64(1); // first-distinct count
    w.put_u64(10_000); // item outside [0, 100)
    w.put_u64(1); // count
    w.put_u64(0); // candidate repetitions
    assert!(matches!(
        TrulyPerfectF0Sampler::restore(&seal(tag::F0_SAMPLER, &w.into_bytes())),
        Err(CodecError::InvalidValue { .. })
    ));
}
