//! Cross-crate integration tests: end-to-end scenarios exercising the
//! samplers through the same public API the examples and benches use.

use tps_core::f0::TrulyPerfectF0Sampler;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::mestimators::{HuberSampler, L1L2Sampler};
use tps_core::perfect_baselines::BiasedReferenceSampler;
use tps_core::sliding::SlidingWindowGSampler;
use tps_core::turnstile::{MultiPassLpSampler, StrictTurnstileF0Sampler};
use tps_random::default_rng;
use tps_streams::frequency::FrequencyVector;
use tps_streams::generators::{
    heavy_hitter_stream, split_into_portions, strict_turnstile_stream, zipfian_stream,
};
use tps_streams::stats::{expected_sampling_tv, SampleHistogram};
use tps_streams::update::WindowSpec;
use tps_streams::{
    Huber, Lp, MeasureFn, SampleOutcome, SlidingWindowSampler, SpaceUsage, StreamSampler,
    TurnstileSampler, L1L2,
};

/// E2E: a truly perfect L2 sampler on a realistic Zipfian workload matches
/// the exact quadratic distribution to within sampling noise.
#[test]
fn l2_sampler_on_zipfian_workload_matches_exact_distribution() {
    let universe = 512u64;
    let mut rng = default_rng(1);
    let stream = zipfian_stream(&mut rng, universe, 8_000, 1.3);
    let truth = FrequencyVector::from_stream(&stream);
    let target = truth.lp_distribution(2.0);

    let mut histogram = SampleHistogram::new();
    for seed in 0..1_200u64 {
        let mut sampler = TrulyPerfectLpSampler::new(2.0, universe, 0.05, seed);
        sampler.update_all(&stream);
        histogram.record(sampler.sample());
    }
    assert!(
        histogram.fail_rate() < 0.05,
        "fail rate {}",
        histogram.fail_rate()
    );
    let tv = histogram.tv_distance(&target);
    let noise = expected_sampling_tv(&target, histogram.successes());
    assert!(tv < 4.0 * noise + 0.02, "TV {tv} vs noise floor {noise}");
}

/// E2E: the sampler only ever reports items that are actually present, on
/// every supported measure.
#[test]
fn samplers_never_report_absent_items() {
    let mut rng = default_rng(2);
    let stream = heavy_hitter_stream(&mut rng, 10_000, 3_000, 5, 0.7);
    let truth = FrequencyVector::from_stream(&stream);

    for seed in 0..30u64 {
        let mut l2 = TrulyPerfectLpSampler::new(2.0, 10_000, 0.1, seed);
        let mut half = TrulyPerfectLpSampler::fractional(0.5, stream.len() as u64, 0.1, seed);
        let mut l1l2 = L1L2Sampler::l1l2(stream.len() as u64, 0.1, seed);
        let mut huber = HuberSampler::huber(4.0, stream.len() as u64, 0.1, seed);
        let mut f0 = TrulyPerfectF0Sampler::new(10_000, 0.1, seed);
        l2.update_all(&stream);
        half.update_all(&stream);
        l1l2.update_all(&stream);
        huber.update_all(&stream);
        f0.update_all(&stream);
        for outcome in [
            l2.sample(),
            half.sample(),
            l1l2.sample(),
            huber.sample(),
            f0.sample(),
        ] {
            if let SampleOutcome::Index(i) = outcome {
                assert!(truth.get(i) > 0, "absent item {i} reported");
            }
        }
    }
}

/// E2E: sliding-window sampling over a stream whose content changes
/// completely never reports expired items and matches the window's own
/// distribution.
#[test]
fn sliding_window_sampler_tracks_only_the_window() {
    let window = 400u64;
    let mut stream = Vec::new();
    for t in 0..2_000u64 {
        stream.push(t % 7); // items 0..6, later expired
    }
    for t in 0..400u64 {
        stream.push(100 + (t % 3) * (t % 2)); // items 100, 101, 102
    }
    let truth = FrequencyVector::from_window(&stream, WindowSpec::new(window));
    let g = Huber::new(2.0);
    let target = truth.g_distribution(&g);

    let mut histogram = SampleHistogram::new();
    for seed in 0..800u64 {
        let mut sampler = SlidingWindowGSampler::new(g, window, 0.1, seed);
        for &x in &stream {
            SlidingWindowSampler::update(&mut sampler, x);
        }
        histogram.record(SlidingWindowSampler::sample(&mut sampler));
    }
    for expired in 0..7u64 {
        assert_eq!(
            histogram.count(expired),
            0,
            "expired item {expired} sampled"
        );
    }
    assert!(histogram.tv_distance(&target) < 0.08);
}

/// E2E: the strict-turnstile pipeline — multi-pass Lp sampling and
/// sparse-recovery-based F0 sampling — agrees with ground truth after heavy
/// insert/delete churn.
#[test]
fn strict_turnstile_pipeline_agrees_with_ground_truth() {
    let universe = 256u64;
    let mut rng = default_rng(3);
    let updates = strict_turnstile_stream(&mut rng, universe, 4_000, 0.35);
    let truth = FrequencyVector::from_signed_stream(&updates);
    assert!(truth.is_non_negative());

    // Multi-pass L2 sampling.
    let sampler = MultiPassLpSampler::new(2.0, universe, 0.5, 0.1);
    let target = truth.lp_distribution(2.0);
    let mut histogram = SampleHistogram::new();
    let mut sample_rng = default_rng(4);
    for _ in 0..1_500 {
        let (outcome, report) = sampler.sample(&updates, &mut sample_rng);
        assert!(
            report.passes <= 4,
            "unexpected pass count {}",
            report.passes
        );
        histogram.record(outcome);
    }
    assert!(
        histogram.fail_rate() < 0.3,
        "fail rate {}",
        histogram.fail_rate()
    );
    // The support is large (hundreds of live items), so the comparison is
    // against the multinomial noise floor at this sample count rather than a
    // fixed constant.
    let noise = expected_sampling_tv(&target, histogram.successes());
    assert!(
        histogram.tv_distance(&target) < 2.0 * noise + 0.02,
        "tv {} vs noise floor {noise}",
        histogram.tv_distance(&target)
    );

    // Strict turnstile F0 sampling: every reported item must be live.
    for seed in 0..40u64 {
        let mut f0 = StrictTurnstileF0Sampler::new(universe, seed);
        for &u in &updates {
            f0.update(u);
        }
        if let SampleOutcome::Index(i) = f0.sample() {
            assert!(
                truth.get(i) > 0,
                "dead item {i} reported by strict turnstile F0"
            );
        }
    }
}

/// E2E: composing samplers across stream portions — the truly perfect
/// sampler's drift stays at the noise floor while a γ-additive sampler's
/// drift grows with the number of portions (the paper's motivating
/// separation).
#[test]
fn composition_separates_truly_perfect_from_gamma_additive() {
    let mut rng = default_rng(5);
    let stream = zipfian_stream(&mut rng, 40, 6_000, 1.0);
    let portions = split_into_portions(&stream, 12);
    let gamma = 0.3;

    let perfect = tps_core::composition::run_composition(
        &portions,
        400,
        |seed| TrulyPerfectLpSampler::new(1.0, 40, 0.1, seed),
        |truth| truth.lp_distribution(1.0),
    );
    let biased = tps_core::composition::run_composition(
        &portions,
        400,
        |seed| {
            BiasedReferenceSampler::new(
                TrulyPerfectLpSampler::new(1.0, 40, 0.1, seed),
                gamma,
                39,
                seed ^ 0xF00D,
            )
        },
        |truth| truth.lp_distribution(1.0),
    );
    assert!(
        perfect.drift_ratio() < 1.7,
        "perfect ratio {}",
        perfect.drift_ratio()
    );
    assert!(
        biased.drift_ratio() > 2.0,
        "biased ratio {}",
        biased.drift_ratio()
    );
    assert!(biased.total_drift() > 1.8 * perfect.total_drift());
}

/// E2E: space accounting is wired through every sampler (needed by the
/// benchmark harness) and reports sane, nonzero values.
#[test]
fn space_accounting_is_available_everywhere() {
    let stream: Vec<u64> = (0..500u64).map(|i| i % 37).collect();
    let mut l2 = TrulyPerfectLpSampler::new(2.0, 1_024, 0.1, 1);
    let mut l1l2 = L1L2Sampler::l1l2(500, 0.1, 1);
    let mut f0 = TrulyPerfectF0Sampler::new(1_024, 0.1, 1);
    let mut window = SlidingWindowGSampler::new(Lp::new(1.0), 100, 0.1, 1);
    l2.update_all(&stream);
    l1l2.update_all(&stream);
    f0.update_all(&stream);
    for &x in &stream {
        SlidingWindowSampler::update(&mut window, x);
    }
    for space in [
        l2.space_bytes(),
        l1l2.space_bytes(),
        f0.space_bytes(),
        window.space_bytes(),
    ] {
        assert!(
            space > 0 && space < 10_000_000,
            "implausible space report {space}"
        );
    }
    // Sanity: the M-estimator sampler (O(log) instances) is much smaller
    // than the L2 sampler (O(sqrt(n)) instances) on the same stream.
    assert!(l1l2.space_bytes() < l2.space_bytes());
    // The measure is exposed end-to-end.
    assert_eq!(L1L2.name(), "L1-L2");
}
