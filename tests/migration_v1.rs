//! The v1→v2 migration gate: the *previous* format's golden corpus
//! (preserved verbatim under `tests/golden/snapshots_v1/`) must convert
//! through `tps_streams::codec::migrate` into byte-valid version-2
//! snapshots — for every component tag the codec has ever sealed.
//!
//! The headline assertion is strict: because the v2 corpus under
//! `tests/golden/snapshots/` is regenerated from the *same* deterministic
//! states, migrating each v1 file must reproduce its committed v2
//! counterpart **byte for byte** (for the sharded sampler, that proves the
//! frozen v1 ingest-config defaults are spliced exactly where the v2
//! encoder writes them). A migration that merely "decodes fine" but drifts
//! canonically fails here.

use std::path::PathBuf;

use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sharded::ShardedSampler;
use tps_streams::codec::migrate::{migrate_v1_to_v2, upgrade_to_current};
use tps_streams::codec::{peek_version, CodecError, Restore, FORMAT_VERSION};
use tps_streams::spsc::Backpressure;

/// Every file of the preserved v1 corpus.
const V1_CORPUS_FILES: &[&str] = &[
    "xoshiro256.snap",
    "skip_ahead_engine.snap",
    "g_sampler_huber.snap",
    "g_sampler_l1l2.snap",
    "lp_sampler_p2.snap",
    "lp_sampler_p05.snap",
    "f0_sampler.snap",
    "sliding_f0_sampler.snap",
    "sliding_g_sampler.snap",
    "sliding_lp_sampler.snap",
    "sharded_lp_hash.snap",
    "count_min.snap",
    "count_sketch.snap",
    "misra_gries.snap",
    "space_saving.snap",
    "suffix_count_table.snap",
    "ams_fp_estimator.snap",
];

fn golden_dir(generation: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(generation)
}

fn read(generation: &str, name: &str) -> Vec<u8> {
    let path = golden_dir(generation).join(name);
    std::fs::read(&path)
        .unwrap_or_else(|e| panic!("cannot read golden snapshot {}: {e}", path.display()))
}

/// Migrating each preserved v1 file reproduces its committed v2
/// counterpart byte for byte, and the v1 bytes themselves no longer decode
/// directly (the decoder is single-version; migration is the only door).
#[test]
fn v1_corpus_migrates_byte_identically_to_the_v2_corpus() {
    const { assert!(FORMAT_VERSION >= 2, "this gate assumes the v2 era") };
    for &name in V1_CORPUS_FILES {
        let v1 = read("snapshots_v1", name);
        assert_eq!(
            peek_version(&v1),
            Ok(1),
            "{name}: preserved v1 corpus file is not version 1 — \
             the snapshots_v1 directory must never be regenerated"
        );
        let migrated = upgrade_to_current(&v1)
            .unwrap_or_else(|e| panic!("{name}: v1 snapshot failed to migrate ({e})"));
        assert_eq!(
            peek_version(&migrated),
            Ok(FORMAT_VERSION),
            "{name}: migration did not stamp the current version"
        );
        let v2 = read("snapshots", name);
        assert_eq!(
            migrated, v2,
            "{name}: migrating the v1 snapshot drifted from the committed v2 bytes"
        );
        // And migrate_v1_to_v2 (the explicit hop) agrees with the
        // version-dispatching wrapper.
        assert_eq!(migrate_v1_to_v2(&v1).unwrap(), v2, "{name}: hop disagrees");
    }
}

/// The migrated sharded snapshot decodes to a working sampler carrying the
/// frozen v1 ingest-configuration defaults, and answers queries like state
/// that never left the process.
#[test]
fn migrated_sharded_sampler_restores_with_frozen_v1_defaults() {
    let v1 = read("snapshots_v1", "sharded_lp_hash.snap");
    let migrated = upgrade_to_current(&v1).expect("sharded v1 snapshot migrates");
    let mut sampler: ShardedSampler<TrulyPerfectLpSampler> =
        ShardedSampler::restore(&migrated).expect("migrated sharded snapshot restores");
    assert_eq!(sampler.backpressure(), Backpressure::Block);
    assert_eq!(sampler.parallel_cutoff(), 4_096);
    assert_eq!(sampler.chunk_len(), 32 * 1024);
    assert_eq!(sampler.shard_count(), 3);
    // The restored sampler is live: it ingests and answers.
    use tps_streams::StreamSampler;
    let before = sampler.processed();
    sampler.update_batch(&[1, 2, 3, 4, 5]);
    assert_eq!(sampler.processed(), before + 5);
    let _ = sampler.sample();
}

/// Migration inputs that are not valid v1 snapshots fail typed: corrupt
/// envelopes, truncations, and versions that never existed.
#[test]
fn invalid_migration_inputs_fail_typed() {
    let v1 = read("snapshots_v1", "lp_sampler_p2.snap");

    // Truncations at every eighth cut.
    for cut in (0..v1.len()).step_by(8) {
        assert!(
            upgrade_to_current(&v1[..cut]).is_err(),
            "truncation at {cut} migrated successfully"
        );
    }

    // A bit flip anywhere is caught by the checksum during migration.
    let mut flipped = v1.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    assert!(matches!(
        upgrade_to_current(&flipped),
        Err(CodecError::ChecksumMismatch { .. })
    ));

    // Migrating already-current bytes is the identity (validated).
    let v2 = read("snapshots", "lp_sampler_p2.snap");
    assert_eq!(upgrade_to_current(&v2).unwrap(), v2);

    // The explicit v1 hop rejects current-version input rather than
    // double-migrating it.
    assert!(matches!(
        migrate_v1_to_v2(&v2),
        Err(CodecError::UnsupportedVersion { .. })
    ));
}

/// The facade's `restore_bytes` routes older-version bytes through
/// `upgrade_to_current` by itself: a v1 golden file — which the bare
/// single-version decoder rejects — restores directly, to the same state
/// as an explicit migrate-then-restore.
#[test]
fn facade_restore_bytes_upgrades_v1_automatically() {
    use truly_perfect_samplers::restore_bytes;

    let v1 = read("snapshots_v1", "lp_sampler_p2.snap");
    assert!(matches!(
        TrulyPerfectLpSampler::restore(&v1),
        Err(CodecError::UnsupportedVersion { .. })
    ));
    let upgraded: TrulyPerfectLpSampler = restore_bytes(&v1).expect("facade upgrades v1");
    let explicit = TrulyPerfectLpSampler::restore(&upgrade_to_current(&v1).unwrap()).unwrap();
    use tps_streams::codec::Snapshot;
    assert_eq!(upgraded.snapshot(), explicit.snapshot());

    // Current-version bytes keep taking the direct path.
    let v2 = read("snapshots", "lp_sampler_p2.snap");
    let direct: TrulyPerfectLpSampler = restore_bytes(&v2).expect("current version restores");
    assert_eq!(direct.snapshot(), explicit.snapshot());

    // A version that never existed still fails typed instead of looping
    // through the migrator.
    let mut future = v2.clone();
    future[4] = 0xFF; // version lives after the 4-byte magic
    assert!(matches!(
        restore_bytes::<TrulyPerfectLpSampler>(&future),
        Err(CodecError::UnsupportedVersion { .. }) | Err(CodecError::ChecksumMismatch { .. })
    ));
}
