//! The snapshot round-trip law, for every sampler, sketch and window type:
//!
//! > encode → decode → continue ingesting must be **byte-identical**
//! > (samples, estimates, and RNG position included) to the uninterrupted
//! > run.
//!
//! This is the same bar `tests/engine_golden.rs` set for the PR 2 engine
//! refactor, applied to the checkpoint/restore path. The check is done at
//! the strongest available granularity: after the restored and the
//! uninterrupted instance both ingest the same suffix (and answer the same
//! queries, which consume RNG draws), their snapshots must be equal as
//! byte strings — snapshots are canonical, so byte equality is logical
//! state equality, RNG position included.

use tps_core::engine::SkipAheadEngine;
use tps_core::f0::{SlidingWindowF0Sampler, TrulyPerfectF0Sampler};
use tps_core::framework::{MeasureNormalizer, TrulyPerfectGSampler};
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sharded::{ShardedSamplerBuilder, ShardingStrategy};
use tps_core::sliding::{SlidingWindowGSampler, SlidingWindowLpSampler};
use tps_core::turnstile::StrictTurnstileF0Sampler;
use tps_random::{default_rng, StreamRng, Xoshiro256};
use tps_sketches::exact_counter::SuffixCountTable;
use tps_sketches::{
    AmsFpEstimator, CountMin, CountSketch, MisraGries, SpaceSaving, SparseRecovery,
};
use tps_streams::codec::{Restore, Snapshot};
use tps_streams::generators::zipfian_stream;
use tps_streams::{
    Estimator, Huber, Item, Lp, SignedUpdate, SlidingWindowSampler, StreamSampler,
    TurnstileSampler, L1L2,
};

/// The core law: snapshot `live`, restore it, then drive both copies
/// through the same suffix of work; every intermediate and final snapshot
/// must agree byte for byte (and the snapshot itself must be canonical:
/// re-encoding the restored copy reproduces the input bytes exactly).
fn assert_roundtrip<T: Snapshot + Restore>(live: &mut T, mut drive: impl FnMut(&mut T)) {
    let bytes = live.snapshot();
    let mut restored = T::restore(&bytes).expect("snapshot must restore");
    assert_eq!(
        restored.snapshot(),
        bytes,
        "snapshot is not canonical: restore + re-encode changed the bytes"
    );
    drive(live);
    drive(&mut restored);
    assert_eq!(
        live.snapshot(),
        restored.snapshot(),
        "continued run diverged from the uninterrupted one"
    );
}

/// A skewed deterministic workload (Zipf 1.2) long enough to overflow the
/// small samplers' thresholds.
fn workload(seed: u64, len: usize, universe: u64) -> Vec<Item> {
    let mut rng = default_rng(seed);
    zipfian_stream(&mut rng, universe, len, 1.2)
}

#[test]
fn engine_roundtrip_is_byte_identical() {
    for seed in 0..4u64 {
        let stream = workload(seed, 4_000, 97);
        for split in [0usize, 1, 1_000, 3_999, 4_000] {
            let mut engine = SkipAheadEngine::with_seed(6, seed);
            engine.update_batch(&stream[..split]);
            assert_roundtrip(&mut engine, |e| {
                for chunk in stream[split..].chunks(313) {
                    e.update_batch(chunk);
                }
                // Query-path draws move the RNG; they must continue the
                // same sequence on both sides.
                let _ = e.first_accepted(|_, c| 1.0 / (c + 1) as f64);
            });
        }
    }
}

#[test]
fn g_sampler_roundtrip_is_byte_identical() {
    for seed in 0..3u64 {
        let stream = workload(10 + seed, 3_000, 61);
        let g = Huber::new(2.0);
        let mut sampler =
            TrulyPerfectGSampler::with_instances(g, MeasureNormalizer::new(g), 12, seed);
        sampler.update_batch(&stream[..1_500]);
        assert_roundtrip(&mut sampler, |s| {
            s.update_batch(&stream[1_500..]);
            for _ in 0..4 {
                let _ = s.sample();
            }
        });
        // A second measure family through the same generic impl.
        let mut l1l2 =
            TrulyPerfectGSampler::with_instances(L1L2, MeasureNormalizer::new(L1L2), 8, seed);
        l1l2.update_batch(&stream[..700]);
        assert_roundtrip(&mut l1l2, |s| {
            s.update_batch(&stream[700..]);
            let _ = s.sample();
        });
    }
}

#[test]
fn lp_sampler_roundtrip_both_regimes() {
    for seed in 0..3u64 {
        let stream = workload(20 + seed, 3_000, 61);
        // Misra–Gries regime (p in (1, 2]).
        let mut heavy = TrulyPerfectLpSampler::new(2.0, 256, 0.1, seed);
        heavy.update_batch(&stream[..2_000]);
        assert_roundtrip(&mut heavy, |s| {
            s.update_batch(&stream[2_000..]);
            for _ in 0..4 {
                let _ = s.sample();
            }
        });
        // p = 1 degenerates to plain reservoir sampling.
        let mut l1 = TrulyPerfectLpSampler::new(1.0, 256, 0.1, seed);
        l1.update_batch(&stream[..500]);
        assert_roundtrip(&mut l1, |s| {
            s.update_batch(&stream[500..]);
            let _ = s.sample();
        });
        // Fractional regime (p < 1).
        let mut frac = TrulyPerfectLpSampler::fractional(0.5, 3_000, 0.2, seed);
        frac.update_batch(&stream[..1_000]);
        assert_roundtrip(&mut frac, |s| {
            s.update_batch(&stream[1_000..]);
            let _ = s.sample();
        });
    }
}

#[test]
fn f0_sampler_roundtrip_small_and_overflowed_support() {
    for seed in 0..3u64 {
        // Small support: the first-distinct side answers exactly.
        let small: Vec<Item> = (0..600u64).map(|i| i % 9).collect();
        let mut sampler = TrulyPerfectF0Sampler::new(10_000, 0.1, seed);
        sampler.update_batch(&small[..300]);
        assert_roundtrip(&mut sampler, |s| {
            s.update_batch(&small[300..]);
            for _ in 0..4 {
                let _ = s.sample();
            }
        });
        // Overflowed support: the pre-drawn random subsets answer.
        let wide = workload(30 + seed, 2_000, 900);
        let mut sampler = TrulyPerfectF0Sampler::new(1_000, 0.05, seed);
        sampler.update_batch(&wide[..1_200]);
        assert_roundtrip(&mut sampler, |s| {
            s.update_batch(&wide[1_200..]);
            for _ in 0..4 {
                let _ = s.sample();
            }
        });
    }
}

#[test]
fn sliding_f0_sampler_roundtrip() {
    for seed in 0..3u64 {
        let stream = workload(40 + seed, 1_500, 400);
        let mut sampler = SlidingWindowF0Sampler::new(1_000, 200, 0.1, seed);
        for &x in &stream[..900] {
            SlidingWindowSampler::update(&mut sampler, x);
        }
        assert_roundtrip(&mut sampler, |s| {
            for &x in &stream[900..] {
                SlidingWindowSampler::update(s, x);
            }
            for _ in 0..4 {
                let _ = SlidingWindowSampler::sample(s);
            }
        });
    }
}

#[test]
fn sliding_g_sampler_roundtrip_across_epoch_boundaries() {
    for seed in 0..3u64 {
        let stream = workload(50 + seed, 1_300, 31);
        for split in [0usize, 137, 650, 1_300] {
            // Window 100 → the 1300-update stream crosses 13 cohort epochs,
            // so cohort birth/retirement happens on both sides of the cut.
            let mut sampler = SlidingWindowGSampler::new(Lp::new(1.0), 100, 0.1, seed);
            sampler.update_batch(&stream[..split]);
            assert_roundtrip(&mut sampler, |s| {
                for chunk in stream[split..].chunks(73) {
                    s.update_batch(chunk);
                }
                for _ in 0..4 {
                    let _ = SlidingWindowSampler::sample(s);
                }
            });
        }
    }
}

#[test]
fn sliding_lp_sampler_roundtrip_with_estimator() {
    for seed in 0..2u64 {
        let stream = workload(60 + seed, 700, 23);
        let mut sampler = SlidingWindowLpSampler::with_estimator_size(2.0, 64, 0.2, 2, 8, seed);
        sampler.update_batch(&stream[..350]);
        assert_roundtrip(&mut sampler, |s| {
            s.update_batch(&stream[350..]);
            for _ in 0..3 {
                let _ = SlidingWindowSampler::sample(s);
            }
        });
    }
}

#[test]
fn sharded_sampler_roundtrip_both_strategies() {
    for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
        let stream = workload(70, 4_000, 61);
        let mut sharded = ShardedSamplerBuilder::new(3)
            .strategy(strategy)
            .seed(7)
            .build(|idx| TrulyPerfectLpSampler::new(2.0, 256, 0.1, 7 ^ ((idx as u64) << 32)));
        sharded.update_batch(&stream[..2_500]);
        assert_roundtrip(&mut sharded, |s| {
            for chunk in stream[2_500..].chunks(401) {
                s.update_batch(chunk);
            }
            // Queries fold-merge clones and draw from the front-end RNG.
            for _ in 0..3 {
                let _ = s.sample();
            }
        });
    }
}

/// Restore-then-merge across "processes": shards snapshotted from one
/// front-end and restored elsewhere must merge into exactly the state the
/// original front-end's own query-time merge produces.
#[test]
fn sharded_snapshots_restore_then_merge_across_process_boundary() {
    use tps_streams::MergeableSampler;
    let stream = workload(80, 6_000, 61);
    let mut sharded = ShardedSamplerBuilder::new(4)
        .strategy(ShardingStrategy::Hash)
        .seed(11)
        .build(|idx| TrulyPerfectLpSampler::new(2.0, 256, 0.1, 11 ^ ((idx as u64) << 32)));
    sharded.update_batch(&stream);
    // Ship each shard through the wire format, as a scatter-gather
    // deployment would.
    let shipped: Vec<Vec<u8>> = (0..4).map(|j| sharded.shard(j).snapshot()).collect();
    let mut gathered: Vec<TrulyPerfectLpSampler> = shipped
        .iter()
        .map(|bytes| TrulyPerfectLpSampler::restore(bytes).expect("shard restores"))
        .collect();
    // Merge the restored shards with the same coin sequence the front-end
    // would use, and compare against its own merged instance byte for byte.
    let mut coins_a = Xoshiro256::seed_from_u64(99);
    let mut coins_b = Xoshiro256::seed_from_u64(99);
    let mut merged_remote = gathered.remove(0);
    for shard in gathered {
        merged_remote = merged_remote.merge(shard, &mut coins_a);
    }
    let mut merged_local = TrulyPerfectLpSampler::restore(&shipped[0]).unwrap();
    for bytes in &shipped[1..] {
        let shard = TrulyPerfectLpSampler::restore(bytes).unwrap();
        merged_local = merged_local.merge(shard, &mut coins_b);
    }
    assert_eq!(merged_remote.snapshot(), merged_local.snapshot());
    assert_eq!(merged_remote.processed(), stream.len() as u64);
}

#[test]
fn sketches_roundtrip_is_byte_identical() {
    let stream = workload(90, 5_000, 300);

    let mut rng = default_rng(4);
    let mut cm = CountMin::new(&mut rng, 4, 64);
    cm.update_batch(&stream[..2_500]);
    assert_roundtrip(&mut cm, |s| {
        s.update_batch(&stream[2_500..]);
    });

    let mut rng = default_rng(5);
    let mut cs = CountSketch::new(&mut rng, 5, 64);
    cs.insert_batch(&stream[..2_500]);
    assert_roundtrip(&mut cs, |s| {
        s.insert_batch(&stream[2_500..]);
        s.update(17, -3);
    });

    let mut mg = MisraGries::new(24);
    mg.update_batch(&stream[..2_500]);
    assert_roundtrip(&mut mg, |s| {
        s.update_batch(&stream[2_500..]);
    });

    let mut ss = SpaceSaving::new(24);
    for &x in &stream[..2_500] {
        ss.update(x);
    }
    assert_roundtrip(&mut ss, |s| {
        for &x in &stream[2_500..] {
            s.update(x);
        }
    });

    let mut table = SuffixCountTable::new();
    table.track(3);
    table.track(7);
    table.update_batch(&stream[..2_500]);
    assert_roundtrip(&mut table, |t| {
        t.update_batch(&stream[2_500..]);
    });

    let mut ams = AmsFpEstimator::new(2.0, 3, 16, default_rng(6));
    for &x in &stream[..2_500] {
        Estimator::update(&mut ams, x);
    }
    assert_roundtrip(&mut ams, |e| {
        for &x in &stream[2_500..] {
            Estimator::update(e, x);
        }
    });
    // Estimates of the restored and uninterrupted estimator agree exactly.
    let restored = AmsFpEstimator::restore(&ams.snapshot()).unwrap();
    assert_eq!(
        ams.fp_estimate().to_bits(),
        restored.fp_estimate().to_bits()
    );
}

#[test]
fn window_estimator_roundtrip_is_byte_identical() {
    use tps_window::SlidingWindowLpEstimate;
    let stream = workload(95, 900, 40);
    let mut est = SlidingWindowLpEstimate::new(2.0, 150, 2, 10, default_rng(8));
    for &x in &stream[..450] {
        est.update(x);
    }
    assert_roundtrip(&mut est, |e| {
        for &x in &stream[450..] {
            e.update(x);
        }
    });
    let restored = SlidingWindowLpEstimate::restore(&est.snapshot()).unwrap();
    assert_eq!(
        est.lp_estimate().to_bits(),
        restored.lp_estimate().to_bits()
    );
}

#[test]
fn rng_roundtrip_preserves_draw_sequence() {
    let mut rng = Xoshiro256::seed_from_u64(123);
    for _ in 0..1_000 {
        rng.next_u64();
    }
    assert_roundtrip(&mut rng, |r| {
        for _ in 0..100 {
            r.next_u64();
        }
    });
}

/// A lockstep-merged sliding sampler (the PR 3 query-time snapshot state:
/// merged cohort engines carry the *sum* of the shards' seen counts) must
/// round-trip too — shipping the merged query snapshot is exactly the
/// scatter-gather use case the wire format exists for.
#[test]
fn merged_sliding_sampler_snapshot_roundtrips() {
    for seed in 0..3u64 {
        let stream_a = workload(100 + seed, 390, 31);
        let stream_b: Vec<Item> = workload(200 + seed, 390, 31)
            .iter()
            .map(|&x| x + 40)
            .collect();
        let mut a = SlidingWindowGSampler::new(Lp::new(1.0), 100, 0.1, seed);
        let mut b = SlidingWindowGSampler::new(Lp::new(1.0), 100, 0.1, 77 + seed);
        a.update_batch(&stream_a);
        b.update_batch(&stream_b);
        let mut merged = a.merge(b);
        // The merged sampler is a query-time snapshot: drive queries only.
        assert_roundtrip(&mut merged, |s| {
            for _ in 0..4 {
                let _ = SlidingWindowSampler::sample(s);
            }
        });
    }
}

/// A merged sampler that (against advice, but through the public API)
/// keeps ingesting is still a reachable state and must round-trip: its
/// cohort engines carry summed seen counts plus post-merge updates.
#[test]
fn merged_then_updated_sliding_sampler_roundtrips() {
    let mut a = SlidingWindowGSampler::new(Lp::new(1.0), 10, 0.2, 5);
    let mut b = SlidingWindowGSampler::new(Lp::new(1.0), 10, 0.2, 6);
    for t in 0..5u64 {
        SlidingWindowSampler::update(&mut a, t);
        SlidingWindowSampler::update(&mut b, 100 + t);
    }
    let mut merged = a.merge(b);
    SlidingWindowSampler::update(&mut merged, 7);
    assert_roundtrip(&mut merged, |s| {
        SlidingWindowSampler::update(s, 8);
        let _ = SlidingWindowSampler::sample(s);
    });
}

/// Signed (turnstile) workload derived from the Zipf stream: every item
/// is inserted, and every third position also gets an insert-then-delete
/// pair, so negative deltas flow through the syndromes while every
/// prefix stays a strict turnstile stream (no count goes negative).
fn signed_workload(seed: u64, len: usize, universe: u64) -> Vec<SignedUpdate> {
    let items = workload(seed, len, universe);
    let mut out = Vec::with_capacity(len * 2);
    for (i, &item) in items.iter().enumerate() {
        out.push(SignedUpdate { item, delta: 1 });
        if i % 3 == 0 {
            out.push(SignedUpdate { item, delta: 1 });
            out.push(SignedUpdate { item, delta: -1 });
        }
    }
    out
}

#[test]
fn turnstile_sampler_roundtrip_is_byte_identical() {
    for seed in 0..3u64 {
        let stream = signed_workload(110 + seed, 1_800, 120);
        for split in [0usize, 1, stream.len() / 2, stream.len()] {
            let mut sampler = StrictTurnstileF0Sampler::new(120, seed);
            sampler.update_batch(&stream[..split]);
            assert_roundtrip(&mut sampler, |s| {
                for chunk in stream[split..].chunks(257) {
                    s.update_batch(chunk);
                }
                // Draws decode the live syndromes and consume RNG; the
                // restored copy must continue the identical sequence.
                for _ in 0..4 {
                    let _ = s.sample();
                }
            });
        }
    }
}

#[test]
fn sparse_recovery_roundtrip_is_byte_identical() {
    let stream = signed_workload(120, 1_000, 80);
    let mut recovery = SparseRecovery::new(12, 80);
    for &u in &stream[..600] {
        recovery.update(u);
    }
    assert_roundtrip(&mut recovery, |r| {
        for &u in &stream[600..] {
            r.update(u);
        }
    });
}

#[test]
fn sharded_turnstile_roundtrip_both_strategies() {
    for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
        let stream = signed_workload(130, 2_400, 150);
        // One shared seed across shards: the turnstile merge law requires
        // identical pre-drawn subsets.
        let mut sharded = ShardedSamplerBuilder::new(3)
            .strategy(strategy)
            .seed(13)
            .build_turnstile(|_idx| StrictTurnstileF0Sampler::new(150, 13));
        sharded.ingest_batch(&stream[..1_500]);
        assert_roundtrip(&mut sharded, |s| {
            for chunk in stream[1_500..].chunks(311) {
                s.ingest_batch(chunk);
            }
            // Queries fold-merge clones and draw from the merged state.
            for _ in 0..3 {
                let _ = TurnstileSampler::sample(s);
            }
        });
    }
}
