//! Property-based tests (proptest) for the core data structures and the
//! invariants the samplers' correctness rests on.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use tps_core::f0::TrulyPerfectF0Sampler;
use tps_core::framework::{MisraGriesNormalizer, RejectionNormalizer};
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sharded::{ShardedSamplerBuilder, ShardingStrategy};
use tps_core::sliding::{SlidingWindowGSampler, SlidingWindowLpSampler};
use tps_core::turnstile::{MultiPassL1Sampler, StrictTurnstileF0Sampler};
use tps_random::default_rng;
use tps_sketches::{CountMin, CountSketch, MisraGries, SpaceSaving, SparseRecovery};
use tps_streams::frequency::FrequencyVector;
use tps_streams::stats::{fit_power_law, tv_distance, SampleHistogram};
use tps_streams::update::WindowSpec;
use tps_streams::{
    CappedCount, ConcaveLog, Fair, Huber, Item, Lp, MeasureFn, MergeableSampler, MergeableSummary,
    SampleOutcome, SignedUpdate, SlidingWindowSampler, StreamSampler, Tukey, TurnstileSampler,
    L1L2,
};

/// Asserts the batch ≡ loop law for one `StreamSampler`: feeding a stream
/// through `update_batch` (whole-slice *and* split at an arbitrary point)
/// must leave the sampler in a state indistinguishable from the per-item
/// loop's — checked by drawing several samples from each copy, which also
/// compares the RNG positions.
fn assert_stream_batch_law<S, F>(
    build: F,
    stream: &[Item],
    split: usize,
) -> Result<(), TestCaseError>
where
    S: StreamSampler,
    F: Fn() -> S,
{
    let mut looped = build();
    for &x in stream {
        looped.update(x);
    }
    let mut whole = build();
    whole.update_batch(stream);
    let split = split.min(stream.len());
    let mut halves = build();
    halves.update_batch(&stream[..split]);
    halves.update_batch(&stream[split..]);
    for draw in 0..6 {
        let expected = looped.sample();
        prop_assert_eq!(
            expected,
            whole.sample(),
            "whole-slice batch diverged from loop at draw {}",
            draw
        );
        prop_assert_eq!(
            expected,
            halves.sample(),
            "split batch diverged from loop at draw {}",
            draw
        );
    }
    Ok(())
}

/// Same law for a `SlidingWindowSampler`.
fn assert_window_batch_law<S, F>(
    build: F,
    stream: &[Item],
    split: usize,
) -> Result<(), TestCaseError>
where
    S: SlidingWindowSampler,
    F: Fn() -> S,
{
    let mut looped = build();
    for &x in stream {
        looped.update(x);
    }
    let mut whole = build();
    whole.update_batch(stream);
    let split = split.min(stream.len());
    let mut halves = build();
    halves.update_batch(&stream[..split]);
    halves.update_batch(&stream[split..]);
    for draw in 0..6 {
        let expected = looped.sample();
        prop_assert_eq!(
            expected,
            whole.sample(),
            "whole-slice batch diverged from loop at draw {}",
            draw
        );
        prop_assert_eq!(
            expected,
            halves.sample(),
            "split batch diverged from loop at draw {}",
            draw
        );
    }
    Ok(())
}

/// Same law for a `TurnstileSampler` over signed updates.
fn assert_turnstile_batch_law<S, F>(
    build: F,
    updates: &[SignedUpdate],
    split: usize,
) -> Result<(), TestCaseError>
where
    S: TurnstileSampler,
    F: Fn() -> S,
{
    let mut looped = build();
    for &u in updates {
        looped.update(u);
    }
    let mut whole = build();
    whole.update_batch(updates);
    let split = split.min(updates.len());
    let mut halves = build();
    halves.update_batch(&updates[..split]);
    halves.update_batch(&updates[split..]);
    for draw in 0..6 {
        let expected = looped.sample();
        prop_assert_eq!(
            expected,
            whole.sample(),
            "whole-slice batch diverged from loop at draw {}",
            draw
        );
        prop_assert_eq!(
            expected,
            halves.sample(),
            "split batch diverged from loop at draw {}",
            draw
        );
    }
    Ok(())
}

/// Cases per property: 64 by default (the CI pull-request budget), raised
/// by the `PROPTEST_CASES` environment variable (the weekly scheduled job
/// runs 4096). Resolved explicitly so the override works with both the
/// offline shim and registry proptest.
fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(64)
}

/// Arbitrary small insertion-only streams.
fn small_stream() -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec(0u64..50, 1..400)
}

/// Arbitrary strict-turnstile streams (inserts, then delete a prefix of the
/// inserted copies so every intermediate frequency is non-negative).
fn strict_stream() -> impl Strategy<Value = Vec<SignedUpdate>> {
    (proptest::collection::vec(0u64..40, 1..150), any::<u64>()).prop_map(|(inserts, seed)| {
        use tps_random::StreamRng;
        let mut rng = default_rng(seed);
        let mut updates: Vec<SignedUpdate> =
            inserts.iter().map(|&i| SignedUpdate::insert(i)).collect();
        // Delete a random subset of what was inserted, after the inserts.
        let mut deletions = Vec::new();
        for &i in &inserts {
            if rng.gen_bool(0.4) {
                deletions.push(SignedUpdate::delete(i));
            }
        }
        updates.extend(deletions);
        updates
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(configured_cases()))]

    /// The telescoping identity Σ_{c=1}^{x} (G(c) − G(c−1)) = G(x) that the
    /// framework's correctness proof relies on, for every measure.
    #[test]
    fn measures_telescope(x in 1u64..200) {
        fn check<G: MeasureFn>(g: &G, x: u64) -> Result<(), TestCaseError> {
            let sum: f64 = (1..=x).map(|c| g.delta(c)).sum();
            prop_assert!((sum - g.value(x)).abs() < 1e-6 * g.value(x).max(1.0));
            Ok(())
        }
        check(&Lp::new(0.5), x)?;
        check(&Lp::new(1.5), x)?;
        check(&Lp::new(2.0), x)?;
        check(&L1L2, x)?;
        check(&Fair::new(2.5), x)?;
        check(&Huber::new(3.0), x)?;
        check(&Tukey::new(9.0), x)?;
        check(&ConcaveLog, x)?;
        check(&CappedCount::new(7), x)?;
    }

    /// Every measure's increment bound really bounds every increment up to
    /// the declared maximum frequency.
    #[test]
    fn increment_bounds_hold(max_freq in 1u64..500) {
        fn check<G: MeasureFn>(g: &G, max_freq: u64) -> Result<(), TestCaseError> {
            let zeta = g.increment_bound(max_freq);
            for c in 1..=max_freq {
                prop_assert!(g.delta(c) <= zeta + 1e-9);
            }
            Ok(())
        }
        check(&Lp::new(0.7), max_freq)?;
        check(&Lp::new(2.0), max_freq)?;
        check(&L1L2, max_freq)?;
        check(&Fair::new(1.5), max_freq)?;
        check(&Huber::new(0.8), max_freq)?;
        check(&ConcaveLog, max_freq)?;
    }

    /// Misra–Gries: deterministic two-sided frequency bounds and a certain
    /// upper bound on the maximum frequency, for arbitrary streams and
    /// counter budgets.
    #[test]
    fn misra_gries_invariants(stream in small_stream(), capacity in 1usize..40) {
        let mut mg = MisraGries::new(capacity);
        for &x in &stream {
            mg.update(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        let err = mg.error_bound();
        for (item, freq) in truth.iter() {
            let est = mg.estimate(item);
            prop_assert!(est <= freq as u64);
            prop_assert!(est + err >= freq as u64);
        }
        prop_assert!(mg.max_frequency_upper_bound() >= truth.l_inf());
        prop_assert!(mg.max_frequency_upper_bound() <= truth.l_inf() + err);
    }

    /// SpaceSaving overestimates and respects its error bound.
    #[test]
    fn space_saving_invariants(stream in small_stream(), capacity in 1usize..40) {
        let mut ss = SpaceSaving::new(capacity);
        for &x in &stream {
            ss.update(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        prop_assert!(ss.max_frequency_upper_bound() >= truth.l_inf());
        for (item, freq) in truth.iter() {
            prop_assert!(ss.estimate(item) <= freq as u64 + ss.error_bound());
        }
    }

    /// The Misra–Gries normaliser used by the L_p sampler is always a valid
    /// (certain) bound on the largest achievable increment.
    #[test]
    fn misra_gries_normalizer_is_certain(stream in small_stream(), p in 1.0f64..2.0) {
        let mut norm = MisraGriesNormalizer::new(p, 8);
        for &x in &stream {
            norm.observe(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        let max_f = truth.l_inf().max(1);
        let zeta = norm.zeta(stream.len() as u64);
        let largest_increment = (max_f as f64).powf(p) - ((max_f - 1) as f64).powf(p);
        prop_assert!(zeta + 1e-9 >= largest_increment);
    }

    /// Sparse recovery is exact for any vector within its sparsity budget,
    /// including after insert/delete churn.
    #[test]
    fn sparse_recovery_roundtrip(updates in strict_stream()) {
        let truth = FrequencyVector::from_signed_stream(&updates);
        let sparsity = (truth.f0() as usize).max(1);
        let mut sr = SparseRecovery::new(sparsity, 40);
        for &u in &updates {
            sr.update(u);
        }
        let recovered = sr.recover();
        prop_assert!(recovered.is_some());
        let recovered = recovered.unwrap();
        let as_vector = FrequencyVector::from_counts(&recovered);
        prop_assert_eq!(as_vector, truth);
    }

    /// The frequency-vector window restriction agrees with replaying only
    /// the suffix.
    #[test]
    fn window_restriction_is_suffix_replay(stream in small_stream(), window in 1u64..500) {
        let via_window = FrequencyVector::from_window(&stream, WindowSpec::new(window));
        let start = stream.len().saturating_sub(window as usize);
        let via_suffix = FrequencyVector::from_stream(&stream[start..]);
        prop_assert_eq!(via_window, via_suffix);
    }

    /// Exact target distributions are proper probability distributions for
    /// every measure and every non-empty stream.
    #[test]
    fn target_distributions_are_normalised(stream in small_stream()) {
        let truth = FrequencyVector::from_stream(&stream);
        for p in [0.5, 1.0, 1.5, 2.0] {
            let total: f64 = truth.lp_distribution(p).values().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        let total_g: f64 = truth.g_distribution(&Huber::new(2.0)).values().sum();
        prop_assert!((total_g - 1.0).abs() < 1e-9);
        let total_f0: f64 = truth.f0_distribution().values().sum();
        prop_assert!((total_f0 - 1.0).abs() < 1e-9);
    }

    /// TV distance is a metric-like quantity: symmetric, zero on identical
    /// distributions, bounded by 1.
    #[test]
    fn tv_distance_properties(stream_a in small_stream(), stream_b in small_stream()) {
        let a = FrequencyVector::from_stream(&stream_a).lp_distribution(1.0);
        let b = FrequencyVector::from_stream(&stream_b).lp_distribution(1.0);
        let d_ab = tv_distance(&a, &b);
        let d_ba = tv_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!(tv_distance(&a, &a) < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d_ab));
    }

    /// The truly perfect L1 sampler (single reservoir instance) never fails
    /// and never reports an absent item, for arbitrary streams.
    #[test]
    fn l1_sampler_total_correctness(stream in small_stream(), seed in any::<u64>()) {
        let truth = FrequencyVector::from_stream(&stream);
        let mut sampler = TrulyPerfectLpSampler::new(1.0, 64, 0.1, seed);
        sampler.update_all(&stream);
        match sampler.sample() {
            SampleOutcome::Index(i) => prop_assert!(truth.get(i) > 0),
            SampleOutcome::Empty => prop_assert!(truth.is_zero()),
            SampleOutcome::Fail => prop_assert!(false, "L1 sampler must never fail"),
        }
    }

    /// The multi-pass strict-turnstile L1 sampler never reports an item with
    /// zero final frequency and reports Empty exactly on the zero vector.
    #[test]
    fn multipass_l1_soundness(updates in strict_stream(), seed in any::<u64>()) {
        let truth = FrequencyVector::from_signed_stream(&updates);
        let sampler = MultiPassL1Sampler::new(64, 0.5);
        let mut rng = default_rng(seed);
        let (outcome, report) = sampler.sample(&updates, &mut rng);
        prop_assert!(report.passes <= 4);
        match outcome {
            SampleOutcome::Index(i) => prop_assert!(truth.get(i) > 0),
            SampleOutcome::Empty => prop_assert!(truth.is_zero()),
            SampleOutcome::Fail => prop_assert!(false, "multi-pass L1 never fails"),
        }
    }

    /// The batch engine law for every insertion-only sampler with an
    /// amortised `update_batch` override: batched ingestion (whole-slice and
    /// split at a random point) is byte-identical to the per-item loop —
    /// same logical state, same RNG position, so repeated `sample()` draws
    /// agree exactly.
    #[test]
    fn stream_batch_equals_loop(stream in small_stream(), seed in any::<u64>(), split in 0usize..400) {
        // Truly perfect L2 (framework + Misra-Gries normaliser path).
        assert_stream_batch_law(
            || TrulyPerfectLpSampler::new(2.0, 64, 0.1, seed),
            &stream,
            split,
        )?;
        // Truly perfect L1 (single-reservoir degenerate case).
        assert_stream_batch_law(
            || TrulyPerfectLpSampler::new(1.0, 64, 0.1, seed ^ 1),
            &stream,
            split,
        )?;
        // Fractional L_{0.5} (framework + closed-form normaliser path).
        assert_stream_batch_law(
            || TrulyPerfectLpSampler::fractional(0.5, stream.len() as u64, 0.2, seed ^ 2),
            &stream,
            split,
        )?;
        // F0 sampler (aggregated multiplicity path, no RNG in updates).
        assert_stream_batch_law(|| TrulyPerfectF0Sampler::new(4_096, 0.1, seed ^ 3), &stream, split)?;
    }

    /// The batch engine law for the strict-turnstile F0 sampler's
    /// coalescing `update_batch` override: one net delta per item must
    /// leave exactly the per-update loop's state — same sample draws (and
    /// RNG position, exercised by repeated draws), same `processed` count.
    #[test]
    fn turnstile_batch_equals_loop(updates in strict_stream(), seed in any::<u64>(), split in 0usize..300) {
        assert_turnstile_batch_law(
            || StrictTurnstileF0Sampler::new(40, seed),
            &updates,
            split,
        )?;
        let mut looped = StrictTurnstileF0Sampler::new(40, seed);
        for &u in &updates {
            looped.update(u);
        }
        let mut batched = StrictTurnstileF0Sampler::new(40, seed);
        batched.update_batch(&updates);
        prop_assert_eq!(looped.processed(), batched.processed());
    }

    /// Coalescing law of the sparse-recovery syndromes: applying one
    /// net-delta update per item leaves the structure byte-identical to
    /// the per-update loop (same recovery output, same update count).
    #[test]
    fn sparse_recovery_coalesced_equals_loop(updates in strict_stream()) {
        let mut looped = SparseRecovery::new(16, 40);
        for &u in &updates {
            looped.update(u);
        }
        let mut coalesced = SparseRecovery::new(16, 40);
        let mut order: Vec<Item> = Vec::new();
        let mut totals: std::collections::HashMap<Item, (i64, u64)> = Default::default();
        for u in &updates {
            let entry = totals.entry(u.item).or_insert_with(|| {
                order.push(u.item);
                (0, 0)
            });
            entry.0 += u.delta;
            entry.1 += 1;
        }
        for item in order {
            let (total, count) = totals[&item];
            coalesced.update_coalesced(item, total, count);
        }
        prop_assert_eq!(looped.updates_processed(), coalesced.updates_processed());
        prop_assert_eq!(looped.is_zero(), coalesced.is_zero());
        prop_assert_eq!(looped.recover(), coalesced.recover());
    }

    /// The batch engine law for the sliding-window samplers (cohort
    /// epoch-splitting path), across window widths that put the batch
    /// boundary before, inside, and after the active window.
    #[test]
    fn window_batch_equals_loop(stream in small_stream(), seed in any::<u64>(), window in 1u64..300, split in 0usize..400) {
        assert_window_batch_law(
            || SlidingWindowGSampler::new(Huber::new(2.0), window, 0.2, seed),
            &stream,
            split,
        )?;
        assert_window_batch_law(
            || SlidingWindowLpSampler::with_estimator_size(2.0, window, 0.2, 2, 8, seed ^ 1),
            &stream,
            split,
        )?;
    }

    /// The batch engine law for the batched sketches: CountMin, CountSketch
    /// and Misra-Gries leave exactly the per-item loop's state (checked
    /// through their complete query surfaces).
    #[test]
    fn sketch_batch_equals_loop(stream in small_stream(), seed in any::<u64>()) {
        {
            let mut looped = CountMin::new(&mut default_rng(seed), 4, 32);
            let mut batched = CountMin::new(&mut default_rng(seed), 4, 32);
            for &x in &stream {
                looped.update(x);
            }
            batched.update_batch(&stream);
            prop_assert_eq!(looped.processed(), batched.processed());
            for item in 0..60u64 {
                prop_assert_eq!(looped.estimate(item), batched.estimate(item));
            }
        }
        {
            let mut looped = CountSketch::new(&mut default_rng(seed), 5, 32);
            let mut batched = CountSketch::new(&mut default_rng(seed), 5, 32);
            for &x in &stream {
                looped.insert(x);
            }
            batched.insert_batch(&stream);
            for item in 0..60u64 {
                prop_assert_eq!(looped.estimate(item), batched.estimate(item));
            }
        }
        for capacity in [1usize, 3, 8, 64] {
            let mut looped = MisraGries::new(capacity);
            let mut batched = MisraGries::new(capacity);
            for &x in &stream {
                looped.update(x);
            }
            batched.update_batch(&stream);
            prop_assert_eq!(looped.processed(), batched.processed());
            prop_assert_eq!(looped.error_bound(), batched.error_bound());
            prop_assert_eq!(
                looped.max_frequency_upper_bound(),
                batched.max_frequency_upper_bound()
            );
            prop_assert_eq!(looped.heavy_hitters(), batched.heavy_hitters());
        }
    }

    /// Exact-sketch merge law: same-seed CountMin / CountSketch instances
    /// fed the two halves of a stream and merged are **byte-identical** to
    /// one instance fed the concatenated stream (tables, processed counts,
    /// and therefore every estimate).
    #[test]
    fn countmin_countsketch_merge_equals_concatenated_stream(
        stream_a in small_stream(),
        stream_b in small_stream(),
        seed in any::<u64>(),
    ) {
        let concat: Vec<Item> = stream_a.iter().chain(&stream_b).copied().collect();
        {
            let mut half_a = CountMin::new(&mut default_rng(seed), 4, 32);
            let mut half_b = CountMin::new(&mut default_rng(seed), 4, 32);
            let mut sequential = CountMin::new(&mut default_rng(seed), 4, 32);
            half_a.update_batch(&stream_a);
            half_b.update_batch(&stream_b);
            sequential.update_batch(&concat);
            let merged = MergeableSummary::merge(half_a, half_b);
            prop_assert_eq!(merged.table(), sequential.table());
            prop_assert_eq!(merged.processed(), sequential.processed());
        }
        {
            let mut half_a = CountSketch::new(&mut default_rng(seed), 5, 32);
            let mut half_b = CountSketch::new(&mut default_rng(seed), 5, 32);
            let mut sequential = CountSketch::new(&mut default_rng(seed), 5, 32);
            half_a.insert_batch(&stream_a);
            half_b.insert_batch(&stream_b);
            sequential.insert_batch(&concat);
            let merged = MergeableSummary::merge(half_a, half_b);
            prop_assert_eq!(merged.table(), sequential.table());
        }
    }

    /// Misra–Gries merge law. Byte-level part: on item-disjoint shards with
    /// enough counters for the union (no decrements anywhere), the merged
    /// summary equals sequential ingestion of the concatenated stream
    /// exactly. Guarantee-level part: for *any* capacity the merged summary
    /// keeps the deterministic two-sided bounds over the concatenated
    /// stream (the Agarwal et al. mergeability result).
    #[test]
    fn misra_gries_merge_law(
        stream_a in small_stream(),
        stream_b in small_stream(),
        capacity in 1usize..40,
    ) {
        // Disjoint relabeling: evens from A, odds from B.
        let disjoint_a: Vec<Item> = stream_a.iter().map(|&x| 2 * x).collect();
        let disjoint_b: Vec<Item> = stream_b.iter().map(|&x| 2 * x + 1).collect();
        let concat: Vec<Item> = disjoint_a.iter().chain(&disjoint_b).copied().collect();
        let union_distinct = FrequencyVector::from_stream(&concat).f0() as usize;
        {
            // Byte-equality regime: capacity covers the union.
            let roomy = union_distinct.max(1);
            let mut half_a = MisraGries::new(roomy);
            let mut half_b = MisraGries::new(roomy);
            let mut sequential = MisraGries::new(roomy);
            half_a.update_batch(&disjoint_a);
            half_b.update_batch(&disjoint_b);
            sequential.update_batch(&concat);
            let merged = MergeableSummary::merge(half_a, half_b);
            prop_assert_eq!(merged.processed(), sequential.processed());
            prop_assert_eq!(merged.heavy_hitters(), sequential.heavy_hitters());
            prop_assert_eq!(merged.error_bound(), sequential.error_bound());
        }
        {
            // Guarantee regime: arbitrary capacity, overlapping items.
            let mut half_a = MisraGries::new(capacity);
            let mut half_b = MisraGries::new(capacity);
            half_a.update_batch(&stream_a);
            half_b.update_batch(&stream_b);
            let merged = MergeableSummary::merge(half_a, half_b);
            let both: Vec<Item> = stream_a.iter().chain(&stream_b).copied().collect();
            let truth = FrequencyVector::from_stream(&both);
            prop_assert_eq!(merged.processed(), both.len() as u64);
            let err = merged.error_bound();
            for (item, freq) in truth.iter() {
                let est = merged.estimate(item);
                prop_assert!(est <= freq as u64, "merged MG must underestimate");
                prop_assert!(est + err >= freq as u64, "merged MG bound violated");
            }
            prop_assert!(merged.max_frequency_upper_bound() >= truth.l_inf());
        }
    }

    /// SpaceSaving merge keeps the overestimate-within-error guarantee over
    /// the concatenated stream for arbitrary capacities and overlap.
    #[test]
    fn space_saving_merge_guarantees(
        stream_a in small_stream(),
        stream_b in small_stream(),
        capacity in 1usize..40,
    ) {
        let mut half_a = SpaceSaving::new(capacity);
        let mut half_b = SpaceSaving::new(capacity);
        for &x in &stream_a {
            half_a.update(x);
        }
        for &x in &stream_b {
            half_b.update(x);
        }
        let merged = MergeableSummary::merge(half_a, half_b);
        let both: Vec<Item> = stream_a.iter().chain(&stream_b).copied().collect();
        let truth = FrequencyVector::from_stream(&both);
        let err = merged.error_bound();
        for (item, freq) in truth.iter() {
            let est = merged.estimate(item);
            prop_assert!(est >= freq as u64 || est >= err);
            prop_assert!(est <= freq as u64 + err);
        }
        prop_assert!(merged.max_frequency_upper_bound() >= truth.l_inf());
    }

    /// F0 merge law: same-seed shards over item-disjoint streams merge into
    /// exactly the sampler state sequential ingestion of the concatenated
    /// stream produces — same support bookkeeping, same exact frequencies,
    /// and the same RNG position, so every subsequent draw agrees.
    #[test]
    fn f0_merge_equals_concatenated_stream(
        stream_a in small_stream(),
        stream_b in small_stream(),
        seed in any::<u64>(),
    ) {
        let disjoint_a: Vec<Item> = stream_a.iter().map(|&x| 2 * x).collect();
        let disjoint_b: Vec<Item> = stream_b.iter().map(|&x| 2 * x + 1).collect();
        let mut half_a = TrulyPerfectF0Sampler::new(4_096, 0.1, seed);
        let mut half_b = TrulyPerfectF0Sampler::new(4_096, 0.1, seed);
        let mut sequential = TrulyPerfectF0Sampler::new(4_096, 0.1, seed);
        half_a.update_batch(&disjoint_a);
        half_b.update_batch(&disjoint_b);
        let concat: Vec<Item> = disjoint_a.iter().chain(&disjoint_b).copied().collect();
        sequential.update_batch(&concat);
        let mut coins = default_rng(seed ^ 0xC01);
        let mut merged = half_a.merge(half_b, &mut coins);
        prop_assert_eq!(merged.processed(), sequential.processed());
        prop_assert_eq!(merged.overflowed(), sequential.overflowed());
        for draw in 0..8 {
            prop_assert_eq!(
                merged.sample_with_frequency(),
                sequential.sample_with_frequency(),
                "draw {} diverged",
                draw
            );
        }
    }

    /// Turnstile merge law, stronger than the F0 one: same-seed
    /// `StrictTurnstileF0Sampler` shards merge byte-exactly under *any*
    /// partitioning of the stream — not just item-disjoint splits —
    /// because everything the sampler keeps (field syndromes, membership
    /// counters, processed counts) is linear in the updates and no RNG is
    /// consumed during ingestion. Checked on snapshot bytes, which also
    /// pins the RNG position.
    #[test]
    fn turnstile_merge_equals_concatenated_stream(
        updates in strict_stream(),
        seed in any::<u64>(),
        split in 0usize..400,
    ) {
        use tps_streams::Snapshot;
        // Interleaved partition: shard A takes even indices, B odd — the
        // same item's updates land on both shards.
        let part_a: Vec<SignedUpdate> =
            updates.iter().step_by(2).copied().collect();
        let part_b: Vec<SignedUpdate> =
            updates.iter().skip(1).step_by(2).copied().collect();
        // And an arbitrary contiguous split.
        let split = split.min(updates.len());
        for (a, b) in [
            (part_a.as_slice(), part_b.as_slice()),
            (&updates[..split], &updates[split..]),
        ] {
            let mut half_a = StrictTurnstileF0Sampler::new(40, seed);
            let mut half_b = StrictTurnstileF0Sampler::new(40, seed);
            let mut sequential = StrictTurnstileF0Sampler::new(40, seed);
            half_a.update_batch(a);
            half_b.update_batch(b);
            sequential.update_batch(a);
            sequential.update_batch(b);
            prop_assert!(half_a.merge_compatible(&half_b));
            let mut coins = default_rng(seed ^ 0xC01);
            let mut merged = half_a.merge(half_b, &mut coins);
            prop_assert_eq!(
                merged.snapshot(),
                sequential.snapshot(),
                "merged state is not byte-identical to sequential ingestion"
            );
            for draw in 0..6 {
                prop_assert_eq!(merged.sample(), sequential.sample(), "draw {} diverged", draw);
            }
        }
    }

    /// The sharded turnstile front-end obeys batch ≡ loop for both routing
    /// strategies and arbitrary chunkings, and its merged answer equals a
    /// single unsharded instance over the interleaved stream (byte-exact,
    /// by the linear merge law above).
    #[test]
    fn sharded_turnstile_batch_equals_loop_and_single_instance(
        updates in strict_stream(),
        seed in any::<u64>(),
        chunk in 1usize..400,
    ) {
        use tps_streams::Snapshot;
        for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
            let build = || {
                ShardedSamplerBuilder::new(3)
                    .strategy(strategy)
                    .seed(seed)
                    // Shared seed: the turnstile merge law requires every
                    // shard to pre-draw identical structure.
                    .build_turnstile(|_idx| StrictTurnstileF0Sampler::new(40, seed))
            };
            let mut looped = build();
            for &u in &updates {
                looped.update(u);
            }
            let mut batched = build();
            for piece in updates.chunks(chunk.max(1)) {
                batched.update_batch(piece);
            }
            let mut single = StrictTurnstileF0Sampler::new(40, seed);
            single.update_batch(&updates);
            prop_assert_eq!(
                looped.merged().snapshot(),
                single.snapshot(),
                "{:?}: merged shards drifted from the single instance",
                strategy
            );
            for draw in 0..4 {
                let want = looped.sample();
                prop_assert_eq!(want, batched.sample(), "{:?} diverged at draw {}", strategy, draw);
            }
        }
    }

    /// The sharded front-end obeys batch ≡ loop for both routing
    /// strategies and arbitrary chunkings: same shard states, same query
    /// RNG position, so repeated samples agree draw for draw.
    #[test]
    fn sharded_batch_equals_loop(
        stream in small_stream(),
        seed in any::<u64>(),
        chunk in 1usize..400,
    ) {
        for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
            let build = || {
                ShardedSamplerBuilder::new(3).strategy(strategy).seed(seed).build(|idx| {
                    TrulyPerfectLpSampler::new(2.0, 128, 0.1, seed ^ ((idx as u64) << 32))
                })
            };
            let mut looped = build();
            for &x in &stream {
                looped.update(x);
            }
            let mut batched = build();
            for piece in stream.chunks(chunk) {
                batched.update_batch(piece);
            }
            for draw in 0..4 {
                prop_assert_eq!(
                    looped.sample(),
                    batched.sample(),
                    "{:?} diverged at draw {}",
                    strategy,
                    draw
                );
            }
        }
    }

    /// Power-law fitting recovers planted exponents (used to validate the
    /// scaling experiments' methodology).
    #[test]
    fn power_law_fit_recovers_exponent(exponent in 0.1f64..2.0, scale in 0.5f64..10.0) {
        let points: Vec<(f64, f64)> =
            (1..=10).map(|i| {
                let x = 2f64.powi(i);
                (x, scale * x.powf(exponent))
            }).collect();
        let fitted = fit_power_law(&points);
        prop_assert!((fitted - exponent).abs() < 1e-6);
    }
}

/// The headline merge law: `k`-shard hash-partitioned ingest + query-time
/// merging is distributionally equivalent to sequential ingest — the
/// sharded L2 sampler's output histogram must hit the exact `f_i² / F_2`
/// target, with expired-free support (every occurrence of an item lives on
/// one shard, so merged suffix counts are exact).
#[test]
fn sharded_l2_hash_matches_sequential_distribution() {
    let stream: Vec<Item> = [(1u64, 10u64), (2, 5), (3, 2), (4, 1)]
        .iter()
        .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
        .collect();
    let target = FrequencyVector::from_stream(&stream).lp_distribution(2.0);
    let mut histogram = SampleHistogram::new();
    for seed in 0..5_000u64 {
        let mut sharded = ShardedSamplerBuilder::new(4)
            .strategy(ShardingStrategy::Hash)
            .seed(90_000 + seed)
            .build(|idx| {
                TrulyPerfectLpSampler::new(2.0, 64, 0.05, 90_000 + seed + ((idx as u64) << 32))
            });
        sharded.update_all(&stream);
        histogram.record(sharded.sample());
    }
    assert!(
        histogram.fail_rate() < 0.05,
        "fail rate {}",
        histogram.fail_rate()
    );
    let tv = histogram.tv_distance(&target);
    assert!(tv < 0.04, "sharded L2 TV {tv} off the exact target");
}

/// Round-robin sharding is exact for constant-increment measures: the `L_1`
/// sampler's acceptance ignores suffix counts, so cyclically splitting an
/// item's occurrences across shards loses nothing.
#[test]
fn sharded_round_robin_l1_matches_frequency_distribution() {
    let stream: Vec<Item> = [(7u64, 8u64), (8, 4), (9, 2), (10, 1)]
        .iter()
        .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
        .collect();
    let target = FrequencyVector::from_stream(&stream).lp_distribution(1.0);
    let mut histogram = SampleHistogram::new();
    for seed in 0..5_000u64 {
        let mut sharded = ShardedSamplerBuilder::new(3)
            .strategy(ShardingStrategy::RoundRobin)
            .seed(70_000 + seed)
            .build(|idx| {
                TrulyPerfectLpSampler::new(1.0, 64, 0.1, 70_000 + seed + ((idx as u64) << 32))
            });
        sharded.update_all(&stream);
        histogram.record(sharded.sample());
    }
    assert_eq!(histogram.fails(), 0, "L1 sampling never fails");
    let tv = histogram.tv_distance(&target);
    assert!(tv < 0.04, "round-robin L1 TV {tv} off the exact target");
}

/// Sharded F0: hash-partitioned support splits merge back into an exactly
/// uniform-over-support sampler (shards share one seed, as the F0 merge
/// contract requires).
#[test]
fn sharded_f0_matches_uniform_support_distribution() {
    let stream: Vec<Item> = [(3u64, 30u64), (11, 9), (17, 3), (29, 1)]
        .iter()
        .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
        .collect();
    let target = FrequencyVector::from_stream(&stream).f0_distribution();
    let mut histogram = SampleHistogram::new();
    for seed in 0..4_000u64 {
        let mut sharded = ShardedSamplerBuilder::new(4)
            .strategy(ShardingStrategy::Hash)
            .seed(50_000 + seed)
            .build(|_| TrulyPerfectF0Sampler::new(10_000, 0.1, 50_000 + seed));
        sharded.update_all(&stream);
        histogram.record(sharded.sample());
    }
    assert_eq!(histogram.fails(), 0);
    let tv = histogram.tv_distance(&target);
    assert!(tv < 0.04, "sharded F0 TV {tv} off uniform-over-support");
}

/// Sliding-window merge law: two lockstep item-disjoint shards merge into a
/// sampler whose output hits the exact distribution of the **union** of the
/// two active windows (`L_1` through the bounded-increment G-framework, so
/// suffix counts are irrelevant and failures impossible at `ζ = 1`).
#[test]
fn merged_sliding_g_samplers_match_union_window_distribution() {
    let window = 60u64;
    let len = 150usize;
    // Shard A: items 1..=3 cyclically; shard B: items 11..=12, skewed.
    let stream_a: Vec<Item> = (0..len as u64).map(|t| t % 3 + 1).collect();
    let stream_b: Vec<Item> = (0..len as u64)
        .map(|t| if t % 4 == 0 { 12 } else { 11 })
        .collect();
    let union_window: Vec<Item> = stream_a[len - window as usize..]
        .iter()
        .chain(&stream_b[len - window as usize..])
        .copied()
        .collect();
    let target = FrequencyVector::from_stream(&union_window).lp_distribution(1.0);
    let g = Lp::new(1.0);
    let mut histogram = SampleHistogram::new();
    for seed in 0..3_000u64 {
        let mut shard_a = SlidingWindowGSampler::new(g, window, 0.1, 60_000 + seed);
        let mut shard_b = SlidingWindowGSampler::new(g, window, 0.1, 61_000_000 + seed);
        SlidingWindowSampler::update_batch(&mut shard_a, &stream_a);
        SlidingWindowSampler::update_batch(&mut shard_b, &stream_b);
        let mut merged = shard_a.merge(shard_b);
        histogram.record(SlidingWindowSampler::sample(&mut merged));
    }
    assert!(
        histogram.fail_rate() < 0.02,
        "fail rate {}",
        histogram.fail_rate()
    );
    let tv = histogram.tv_distance(&target);
    assert!(
        tv < 0.04,
        "merged sliding TV {tv} off the union-window target"
    );
}

/// Sliding-window edge case: `W = 1`. Every update opens a new cohort, the
/// active window is exactly the last item, and batch ≡ loop must hold
/// across chunkings that straddle every epoch boundary.
#[test]
fn sliding_window_of_one_batch_equals_loop_and_samples_last_item() {
    let stream: Vec<Item> = (0..40u64).map(|t| t % 7 + 100).collect();
    for chunk in [1usize, 2, 3, 40] {
        for seed in 0..50u64 {
            let mut looped = SlidingWindowGSampler::new(Huber::new(2.0), 1, 0.1, 400 + seed);
            for &x in &stream {
                SlidingWindowSampler::update(&mut looped, x);
            }
            let mut batched = SlidingWindowGSampler::new(Huber::new(2.0), 1, 0.1, 400 + seed);
            for piece in stream.chunks(chunk) {
                SlidingWindowSampler::update_batch(&mut batched, piece);
            }
            for _ in 0..4 {
                let expected = SlidingWindowSampler::sample(&mut looped);
                assert_eq!(expected, SlidingWindowSampler::sample(&mut batched));
                if let SampleOutcome::Index(i) = expected {
                    assert_eq!(i, *stream.last().unwrap(), "W=1 must sample the last item");
                }
            }
        }
    }
}

/// Sliding-window edge case: one `update_batch` call spanning more than
/// three cohort epochs must split at every boundary and agree with the
/// per-item loop (and with a two-piece chunking) on both sampler families.
#[test]
fn batch_spanning_three_cohort_epochs_equals_loop() {
    let window = 5u64;
    let stream: Vec<Item> = (0..23u64).map(|t| t % 4 + 50).collect();
    for seed in 0..100u64 {
        assert_window_batch_law(
            || SlidingWindowGSampler::new(Huber::new(2.0), window, 0.2, 500 + seed),
            &stream,
            7,
        )
        .unwrap();
        assert_window_batch_law(
            || SlidingWindowLpSampler::with_estimator_size(2.0, window, 0.2, 2, 8, 600 + seed),
            &stream,
            7,
        )
        .unwrap();
    }
}

/// Sliding-window edge case: querying before the first window fills must
/// answer from the partial window (never `Fail`ing into expired territory,
/// never inventing items), and batch ≡ loop holds on the short prefix.
#[test]
fn query_before_first_window_fills() {
    let window = 100u64;
    let prefix: Vec<Item> = vec![5, 6, 5, 7, 5, 5, 6, 8, 5, 6];
    let mut seen_index = false;
    for seed in 0..200u64 {
        assert_window_batch_law(
            || SlidingWindowGSampler::new(Huber::new(2.0), window, 0.2, 700 + seed),
            &prefix,
            3,
        )
        .unwrap();
        let mut sampler = SlidingWindowGSampler::new(Huber::new(2.0), window, 0.2, 700 + seed);
        SlidingWindowSampler::update_batch(&mut sampler, &prefix);
        match SlidingWindowSampler::sample(&mut sampler) {
            SampleOutcome::Index(i) => {
                seen_index = true;
                assert!(prefix.contains(&i), "sampled {i} not in the partial window");
            }
            SampleOutcome::Empty => panic!("non-empty prefix reported Empty"),
            SampleOutcome::Fail => {}
        }
    }
    assert!(seen_index, "partial-window queries must succeed sometimes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(configured_cases()))]

    /// The snapshot round-trip law as a property: for an arbitrary stream,
    /// cut point and seed, encode → decode → continue ingesting leaves a
    /// sampler byte-identical (snapshots are canonical, so byte equality is
    /// state equality, RNG position included) to the uninterrupted run.
    /// `tests/snapshot_roundtrip.rs` covers every type at fixed seeds; this
    /// property hammers the representative stack — engine, Misra–Gries
    /// `L_p` regime, sliding cohorts — with arbitrary inputs (4096 cases in
    /// the weekly run).
    #[test]
    fn snapshot_roundtrip_law(stream in small_stream(), cut in 0usize..400, seed in 0u64..1_000) {
        use tps_streams::codec::{Restore, Snapshot};

        fn check<T: Snapshot + Restore>(
            live: &mut T,
            mut drive: impl FnMut(&mut T),
        ) -> Result<(), TestCaseError> {
            let bytes = live.snapshot();
            let mut restored = match T::restore(&bytes) {
                Ok(r) => r,
                Err(e) => return Err(TestCaseError::fail(format!("restore failed: {e}"))),
            };
            prop_assert_eq!(&restored.snapshot(), &bytes, "snapshot not canonical");
            drive(live);
            drive(&mut restored);
            prop_assert_eq!(
                live.snapshot(),
                restored.snapshot(),
                "continued run diverged after restore"
            );
            Ok(())
        }

        let cut = cut.min(stream.len());
        let mut lp = TrulyPerfectLpSampler::new(2.0, 64, 0.2, seed);
        lp.update_batch(&stream[..cut]);
        check(&mut lp, |s| {
            s.update_batch(&stream[cut..]);
            let _ = s.sample();
        })?;

        let mut sliding = SlidingWindowGSampler::new(Lp::new(1.0), 37, 0.2, seed);
        SlidingWindowSampler::update_batch(&mut sliding, &stream[..cut]);
        check(&mut sliding, |s| {
            SlidingWindowSampler::update_batch(s, &stream[cut..]);
            let _ = SlidingWindowSampler::sample(s);
        })?;

        let mut engine = tps_core::engine::SkipAheadEngine::with_seed(4, seed);
        engine.update_batch(&stream[..cut]);
        check(&mut engine, |e| {
            e.update_batch(&stream[cut..]);
        })?;
    }
}
