//! Property-based tests (proptest) for the core data structures and the
//! invariants the samplers' correctness rests on.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use tps_core::f0::TrulyPerfectF0Sampler;
use tps_core::framework::{MisraGriesNormalizer, RejectionNormalizer};
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sliding::{SlidingWindowGSampler, SlidingWindowLpSampler};
use tps_core::turnstile::MultiPassL1Sampler;
use tps_random::default_rng;
use tps_sketches::{CountMin, CountSketch, MisraGries, SpaceSaving, SparseRecovery};
use tps_streams::frequency::FrequencyVector;
use tps_streams::stats::{fit_power_law, tv_distance};
use tps_streams::update::WindowSpec;
use tps_streams::{
    CappedCount, ConcaveLog, Fair, Huber, Item, Lp, MeasureFn, SampleOutcome, SignedUpdate,
    SlidingWindowSampler, StreamSampler, Tukey, L1L2,
};

/// Asserts the batch ≡ loop law for one `StreamSampler`: feeding a stream
/// through `update_batch` (whole-slice *and* split at an arbitrary point)
/// must leave the sampler in a state indistinguishable from the per-item
/// loop's — checked by drawing several samples from each copy, which also
/// compares the RNG positions.
fn assert_stream_batch_law<S, F>(
    build: F,
    stream: &[Item],
    split: usize,
) -> Result<(), TestCaseError>
where
    S: StreamSampler,
    F: Fn() -> S,
{
    let mut looped = build();
    for &x in stream {
        looped.update(x);
    }
    let mut whole = build();
    whole.update_batch(stream);
    let split = split.min(stream.len());
    let mut halves = build();
    halves.update_batch(&stream[..split]);
    halves.update_batch(&stream[split..]);
    for draw in 0..6 {
        let expected = looped.sample();
        prop_assert_eq!(
            expected,
            whole.sample(),
            "whole-slice batch diverged from loop at draw {}",
            draw
        );
        prop_assert_eq!(
            expected,
            halves.sample(),
            "split batch diverged from loop at draw {}",
            draw
        );
    }
    Ok(())
}

/// Same law for a `SlidingWindowSampler`.
fn assert_window_batch_law<S, F>(
    build: F,
    stream: &[Item],
    split: usize,
) -> Result<(), TestCaseError>
where
    S: SlidingWindowSampler,
    F: Fn() -> S,
{
    let mut looped = build();
    for &x in stream {
        looped.update(x);
    }
    let mut whole = build();
    whole.update_batch(stream);
    let split = split.min(stream.len());
    let mut halves = build();
    halves.update_batch(&stream[..split]);
    halves.update_batch(&stream[split..]);
    for draw in 0..6 {
        let expected = looped.sample();
        prop_assert_eq!(
            expected,
            whole.sample(),
            "whole-slice batch diverged from loop at draw {}",
            draw
        );
        prop_assert_eq!(
            expected,
            halves.sample(),
            "split batch diverged from loop at draw {}",
            draw
        );
    }
    Ok(())
}

/// Cases per property: 64 by default (the CI pull-request budget), raised
/// by the `PROPTEST_CASES` environment variable (the weekly scheduled job
/// runs 4096). Resolved explicitly so the override works with both the
/// offline shim and registry proptest.
fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(64)
}

/// Arbitrary small insertion-only streams.
fn small_stream() -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec(0u64..50, 1..400)
}

/// Arbitrary strict-turnstile streams (inserts, then delete a prefix of the
/// inserted copies so every intermediate frequency is non-negative).
fn strict_stream() -> impl Strategy<Value = Vec<SignedUpdate>> {
    (proptest::collection::vec(0u64..40, 1..150), any::<u64>()).prop_map(|(inserts, seed)| {
        use tps_random::StreamRng;
        let mut rng = default_rng(seed);
        let mut updates: Vec<SignedUpdate> =
            inserts.iter().map(|&i| SignedUpdate::insert(i)).collect();
        // Delete a random subset of what was inserted, after the inserts.
        let mut deletions = Vec::new();
        for &i in &inserts {
            if rng.gen_bool(0.4) {
                deletions.push(SignedUpdate::delete(i));
            }
        }
        updates.extend(deletions);
        updates
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(configured_cases()))]

    /// The telescoping identity Σ_{c=1}^{x} (G(c) − G(c−1)) = G(x) that the
    /// framework's correctness proof relies on, for every measure.
    #[test]
    fn measures_telescope(x in 1u64..200) {
        fn check<G: MeasureFn>(g: &G, x: u64) -> Result<(), TestCaseError> {
            let sum: f64 = (1..=x).map(|c| g.delta(c)).sum();
            prop_assert!((sum - g.value(x)).abs() < 1e-6 * g.value(x).max(1.0));
            Ok(())
        }
        check(&Lp::new(0.5), x)?;
        check(&Lp::new(1.5), x)?;
        check(&Lp::new(2.0), x)?;
        check(&L1L2, x)?;
        check(&Fair::new(2.5), x)?;
        check(&Huber::new(3.0), x)?;
        check(&Tukey::new(9.0), x)?;
        check(&ConcaveLog, x)?;
        check(&CappedCount::new(7), x)?;
    }

    /// Every measure's increment bound really bounds every increment up to
    /// the declared maximum frequency.
    #[test]
    fn increment_bounds_hold(max_freq in 1u64..500) {
        fn check<G: MeasureFn>(g: &G, max_freq: u64) -> Result<(), TestCaseError> {
            let zeta = g.increment_bound(max_freq);
            for c in 1..=max_freq {
                prop_assert!(g.delta(c) <= zeta + 1e-9);
            }
            Ok(())
        }
        check(&Lp::new(0.7), max_freq)?;
        check(&Lp::new(2.0), max_freq)?;
        check(&L1L2, max_freq)?;
        check(&Fair::new(1.5), max_freq)?;
        check(&Huber::new(0.8), max_freq)?;
        check(&ConcaveLog, max_freq)?;
    }

    /// Misra–Gries: deterministic two-sided frequency bounds and a certain
    /// upper bound on the maximum frequency, for arbitrary streams and
    /// counter budgets.
    #[test]
    fn misra_gries_invariants(stream in small_stream(), capacity in 1usize..40) {
        let mut mg = MisraGries::new(capacity);
        for &x in &stream {
            mg.update(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        let err = mg.error_bound();
        for (item, freq) in truth.iter() {
            let est = mg.estimate(item);
            prop_assert!(est <= freq as u64);
            prop_assert!(est + err >= freq as u64);
        }
        prop_assert!(mg.max_frequency_upper_bound() >= truth.l_inf());
        prop_assert!(mg.max_frequency_upper_bound() <= truth.l_inf() + err);
    }

    /// SpaceSaving overestimates and respects its error bound.
    #[test]
    fn space_saving_invariants(stream in small_stream(), capacity in 1usize..40) {
        let mut ss = SpaceSaving::new(capacity);
        for &x in &stream {
            ss.update(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        prop_assert!(ss.max_frequency_upper_bound() >= truth.l_inf());
        for (item, freq) in truth.iter() {
            prop_assert!(ss.estimate(item) <= freq as u64 + ss.error_bound());
        }
    }

    /// The Misra–Gries normaliser used by the L_p sampler is always a valid
    /// (certain) bound on the largest achievable increment.
    #[test]
    fn misra_gries_normalizer_is_certain(stream in small_stream(), p in 1.0f64..2.0) {
        let mut norm = MisraGriesNormalizer::new(p, 8);
        for &x in &stream {
            norm.observe(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        let max_f = truth.l_inf().max(1);
        let zeta = norm.zeta(stream.len() as u64);
        let largest_increment = (max_f as f64).powf(p) - ((max_f - 1) as f64).powf(p);
        prop_assert!(zeta + 1e-9 >= largest_increment);
    }

    /// Sparse recovery is exact for any vector within its sparsity budget,
    /// including after insert/delete churn.
    #[test]
    fn sparse_recovery_roundtrip(updates in strict_stream()) {
        let truth = FrequencyVector::from_signed_stream(&updates);
        let sparsity = (truth.f0() as usize).max(1);
        let mut sr = SparseRecovery::new(sparsity, 40);
        for &u in &updates {
            sr.update(u);
        }
        let recovered = sr.recover();
        prop_assert!(recovered.is_some());
        let recovered = recovered.unwrap();
        let as_vector = FrequencyVector::from_counts(&recovered);
        prop_assert_eq!(as_vector, truth);
    }

    /// The frequency-vector window restriction agrees with replaying only
    /// the suffix.
    #[test]
    fn window_restriction_is_suffix_replay(stream in small_stream(), window in 1u64..500) {
        let via_window = FrequencyVector::from_window(&stream, WindowSpec::new(window));
        let start = stream.len().saturating_sub(window as usize);
        let via_suffix = FrequencyVector::from_stream(&stream[start..]);
        prop_assert_eq!(via_window, via_suffix);
    }

    /// Exact target distributions are proper probability distributions for
    /// every measure and every non-empty stream.
    #[test]
    fn target_distributions_are_normalised(stream in small_stream()) {
        let truth = FrequencyVector::from_stream(&stream);
        for p in [0.5, 1.0, 1.5, 2.0] {
            let total: f64 = truth.lp_distribution(p).values().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        let total_g: f64 = truth.g_distribution(&Huber::new(2.0)).values().sum();
        prop_assert!((total_g - 1.0).abs() < 1e-9);
        let total_f0: f64 = truth.f0_distribution().values().sum();
        prop_assert!((total_f0 - 1.0).abs() < 1e-9);
    }

    /// TV distance is a metric-like quantity: symmetric, zero on identical
    /// distributions, bounded by 1.
    #[test]
    fn tv_distance_properties(stream_a in small_stream(), stream_b in small_stream()) {
        let a = FrequencyVector::from_stream(&stream_a).lp_distribution(1.0);
        let b = FrequencyVector::from_stream(&stream_b).lp_distribution(1.0);
        let d_ab = tv_distance(&a, &b);
        let d_ba = tv_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!(tv_distance(&a, &a) < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d_ab));
    }

    /// The truly perfect L1 sampler (single reservoir instance) never fails
    /// and never reports an absent item, for arbitrary streams.
    #[test]
    fn l1_sampler_total_correctness(stream in small_stream(), seed in any::<u64>()) {
        let truth = FrequencyVector::from_stream(&stream);
        let mut sampler = TrulyPerfectLpSampler::new(1.0, 64, 0.1, seed);
        sampler.update_all(&stream);
        match sampler.sample() {
            SampleOutcome::Index(i) => prop_assert!(truth.get(i) > 0),
            SampleOutcome::Empty => prop_assert!(truth.is_zero()),
            SampleOutcome::Fail => prop_assert!(false, "L1 sampler must never fail"),
        }
    }

    /// The multi-pass strict-turnstile L1 sampler never reports an item with
    /// zero final frequency and reports Empty exactly on the zero vector.
    #[test]
    fn multipass_l1_soundness(updates in strict_stream(), seed in any::<u64>()) {
        let truth = FrequencyVector::from_signed_stream(&updates);
        let sampler = MultiPassL1Sampler::new(64, 0.5);
        let mut rng = default_rng(seed);
        let (outcome, report) = sampler.sample(&updates, &mut rng);
        prop_assert!(report.passes <= 4);
        match outcome {
            SampleOutcome::Index(i) => prop_assert!(truth.get(i) > 0),
            SampleOutcome::Empty => prop_assert!(truth.is_zero()),
            SampleOutcome::Fail => prop_assert!(false, "multi-pass L1 never fails"),
        }
    }

    /// The batch engine law for every insertion-only sampler with an
    /// amortised `update_batch` override: batched ingestion (whole-slice and
    /// split at a random point) is byte-identical to the per-item loop —
    /// same logical state, same RNG position, so repeated `sample()` draws
    /// agree exactly.
    #[test]
    fn stream_batch_equals_loop(stream in small_stream(), seed in any::<u64>(), split in 0usize..400) {
        // Truly perfect L2 (framework + Misra-Gries normaliser path).
        assert_stream_batch_law(
            || TrulyPerfectLpSampler::new(2.0, 64, 0.1, seed),
            &stream,
            split,
        )?;
        // Truly perfect L1 (single-reservoir degenerate case).
        assert_stream_batch_law(
            || TrulyPerfectLpSampler::new(1.0, 64, 0.1, seed ^ 1),
            &stream,
            split,
        )?;
        // Fractional L_{0.5} (framework + closed-form normaliser path).
        assert_stream_batch_law(
            || TrulyPerfectLpSampler::fractional(0.5, stream.len() as u64, 0.2, seed ^ 2),
            &stream,
            split,
        )?;
        // F0 sampler (aggregated multiplicity path, no RNG in updates).
        assert_stream_batch_law(|| TrulyPerfectF0Sampler::new(4_096, 0.1, seed ^ 3), &stream, split)?;
    }

    /// The batch engine law for the sliding-window samplers (cohort
    /// epoch-splitting path), across window widths that put the batch
    /// boundary before, inside, and after the active window.
    #[test]
    fn window_batch_equals_loop(stream in small_stream(), seed in any::<u64>(), window in 1u64..300, split in 0usize..400) {
        assert_window_batch_law(
            || SlidingWindowGSampler::new(Huber::new(2.0), window, 0.2, seed),
            &stream,
            split,
        )?;
        assert_window_batch_law(
            || SlidingWindowLpSampler::with_estimator_size(2.0, window, 0.2, 2, 8, seed ^ 1),
            &stream,
            split,
        )?;
    }

    /// The batch engine law for the batched sketches: CountMin, CountSketch
    /// and Misra-Gries leave exactly the per-item loop's state (checked
    /// through their complete query surfaces).
    #[test]
    fn sketch_batch_equals_loop(stream in small_stream(), seed in any::<u64>()) {
        {
            let mut looped = CountMin::new(&mut default_rng(seed), 4, 32);
            let mut batched = CountMin::new(&mut default_rng(seed), 4, 32);
            for &x in &stream {
                looped.update(x);
            }
            batched.update_batch(&stream);
            prop_assert_eq!(looped.processed(), batched.processed());
            for item in 0..60u64 {
                prop_assert_eq!(looped.estimate(item), batched.estimate(item));
            }
        }
        {
            let mut looped = CountSketch::new(&mut default_rng(seed), 5, 32);
            let mut batched = CountSketch::new(&mut default_rng(seed), 5, 32);
            for &x in &stream {
                looped.insert(x);
            }
            batched.insert_batch(&stream);
            for item in 0..60u64 {
                prop_assert_eq!(looped.estimate(item), batched.estimate(item));
            }
        }
        for capacity in [1usize, 3, 8, 64] {
            let mut looped = MisraGries::new(capacity);
            let mut batched = MisraGries::new(capacity);
            for &x in &stream {
                looped.update(x);
            }
            batched.update_batch(&stream);
            prop_assert_eq!(looped.processed(), batched.processed());
            prop_assert_eq!(looped.error_bound(), batched.error_bound());
            prop_assert_eq!(
                looped.max_frequency_upper_bound(),
                batched.max_frequency_upper_bound()
            );
            prop_assert_eq!(looped.heavy_hitters(), batched.heavy_hitters());
        }
    }

    /// Power-law fitting recovers planted exponents (used to validate the
    /// scaling experiments' methodology).
    #[test]
    fn power_law_fit_recovers_exponent(exponent in 0.1f64..2.0, scale in 0.5f64..10.0) {
        let points: Vec<(f64, f64)> =
            (1..=10).map(|i| {
                let x = 2f64.powi(i);
                (x, scale * x.powf(exponent))
            }).collect();
        let fitted = fit_power_law(&points);
        prop_assert!((fitted - exponent).abs() < 1e-6);
    }
}
