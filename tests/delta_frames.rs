//! Decode hardening for incremental checkpoint frames
//! (`tps_streams::codec::delta`), mirroring the golden-corpus hardening in
//! `tests/snapshot_compat.rs`: truncation, bit flips, stale bases,
//! oversized length fields and op-stream smuggling must all come back as
//! typed [`CodecError`]s — never a panic, never an allocation sized by an
//! untrusted field.
//!
//! The fixtures are realistic: checkpoint chains produced by the
//! [`IncrementalCheckpointer`] over a live sharded sampler, so the frames
//! being attacked are exactly what the ingest service writes to disk.

use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sharded::{ShardedSamplerBuilder, ShardingStrategy};
use tps_streams::codec::delta::{
    apply_delta_frame, encode_delta_frame, peek_frame, unwrap_full_frame, CheckpointFrame,
    CheckpointReplayer, FrameKind, IncrementalCheckpointer,
};
use tps_streams::codec::{checksum, CodecError, Snapshot};
use tps_streams::{Item, StreamSampler};

fn skewed_stream(len: usize, universe: u64) -> Vec<Item> {
    (0..len as u64)
        .map(|i| {
            let z = i
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            if z % 3 == 0 {
                z % 7
            } else {
                z % universe
            }
        })
        .collect()
}

/// A realistic checkpoint chain over a hot-shard sampler: one full frame,
/// then deltas as the stream grows. Returns (frames, final snapshot).
fn sampler_chain(epochs: u64) -> (Vec<CheckpointFrame>, Vec<u8>) {
    let mut sampler = ShardedSamplerBuilder::new(2)
        .strategy(ShardingStrategy::Hash)
        .seed(77)
        .build(|idx| TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 77 ^ ((idx as u64) << 32)));
    let mut writer = IncrementalCheckpointer::new();
    let mut frames = Vec::new();
    let stream = skewed_stream(epochs as usize * 4_000, 4_096);
    for (i, chunk) in stream.chunks(4_000).enumerate() {
        sampler.update_batch(chunk);
        frames.push(writer.checkpoint(&sampler, i as u64 + 1));
    }
    let last = sampler.snapshot();
    (frames, last)
}

/// Replays a frame slice from scratch; helper for the positive controls.
fn replay(frames: &[CheckpointFrame]) -> Result<Vec<u8>, CodecError> {
    let mut replayer = CheckpointReplayer::new();
    for frame in frames {
        replayer.apply(frame.bytes())?;
    }
    Ok(replayer
        .into_current()
        .map(|(_, bytes)| bytes)
        .expect("non-empty chain"))
}

/// Positive control: the untampered chain replays to the live snapshot and
/// actually contains delta frames (otherwise the attacks below would be
/// exercising the full-frame path only).
#[test]
fn untampered_chain_replays_and_contains_deltas() {
    let (frames, live) = sampler_chain(6);
    assert!(
        frames.iter().any(CheckpointFrame::is_delta),
        "fixture chain produced no delta frames — attacks would be vacuous"
    );
    assert_eq!(replay(&frames).unwrap(), live);
}

/// Truncating any frame at any cut fails typed — both through the raw
/// appliers and through the replayer.
#[test]
fn truncated_frames_fail_typed() {
    let (frames, _) = sampler_chain(4);
    for (index, frame) in frames.iter().enumerate() {
        let bytes = frame.bytes();
        let step = (bytes.len() / 128).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            let cutp = &bytes[..cut];
            assert!(peek_frame(cutp).is_err(), "frame {index} cut {cut} peeked");
            let mut replayer = CheckpointReplayer::new();
            for prior in &frames[..index] {
                replayer.apply(prior.bytes()).unwrap();
            }
            assert!(
                replayer.apply(cutp).is_err(),
                "frame {index} truncated at {cut} applied successfully"
            );
        }
    }
}

/// Flipping any single bit in any frame is rejected (checksum or a header
/// check fires) — corruption never silently reconstructs wrong state.
#[test]
fn bit_flipped_frames_fail_typed() {
    let (frames, _) = sampler_chain(4);
    for (index, frame) in frames.iter().enumerate() {
        let bytes = frame.bytes();
        let step = (bytes.len() / 64).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            for bit in [0, 3, 7] {
                let mut corrupt = bytes.to_vec();
                corrupt[pos] ^= 1 << bit;
                let mut replayer = CheckpointReplayer::new();
                for prior in &frames[..index] {
                    replayer.apply(prior.bytes()).unwrap();
                }
                assert!(
                    replayer.apply(&corrupt).is_err(),
                    "frame {index}: flipped bit {bit} of byte {pos} went unnoticed"
                );
            }
        }
    }
}

/// Stale bases in every flavour: wrong epoch, wrong bytes (same length),
/// wrong length, and a gap in the chain — all typed `StaleBase`, and the
/// replayer's held state is untouched by the failed apply.
#[test]
fn stale_bases_fail_typed_and_leave_state_intact() {
    let base_a: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    let mut target = base_a.clone();
    target[100] ^= 0xFF;
    target.extend_from_slice(&[7; 32]);
    let frame = encode_delta_frame(1, &base_a, 2, &target);

    // Wrong epoch.
    match apply_delta_frame(&base_a, 9, &frame) {
        Err(CodecError::StaleBase {
            base_epoch: 1,
            found_epoch: 9,
        }) => {}
        other => panic!("wrong epoch: {other:?}"),
    }
    // Right epoch, different bytes of the same length (checksum catches).
    let mut impostor = base_a.clone();
    impostor[0] ^= 1;
    assert!(matches!(
        apply_delta_frame(&impostor, 1, &frame),
        Err(CodecError::StaleBase { .. })
    ));
    // Wrong length.
    assert!(matches!(
        apply_delta_frame(&base_a[..100], 1, &frame),
        Err(CodecError::StaleBase { .. })
    ));
    // Applying the right base still works after all those failures.
    let (rebuilt, epoch) = apply_delta_frame(&base_a, 1, &frame).unwrap();
    assert_eq!((rebuilt, epoch), (target, 2));

    // Chain gap through the replayer: skipping a delta leaves the held
    // checkpoint exactly where it was.
    let (frames, _) = sampler_chain(8);
    let delta_positions: Vec<usize> = frames
        .iter()
        .enumerate()
        .filter(|&(i, f)| i >= 2 && f.is_delta())
        .map(|(i, _)| i)
        .collect();
    let &skip = delta_positions.last().expect("chain has deltas");
    let mut replayer = CheckpointReplayer::new();
    for frame in &frames[..skip - 1] {
        replayer.apply(frame.bytes()).unwrap();
    }
    let held_before = replayer.current().map(|(e, b)| (e, b.to_vec()));
    assert!(matches!(
        replayer.apply(frames[skip].bytes()),
        Err(CodecError::StaleBase { .. })
    ));
    let held_after = replayer.current().map(|(e, b)| (e, b.to_vec()));
    assert_eq!(held_before, held_after, "failed apply mutated held state");
}

/// Length-field attacks: resealed frames whose op counts, op lengths or
/// embedded-snapshot lengths claim far more than the payload holds must
/// fail fast (typed, no allocation sized by the claim). The checksum is an
/// integrity check, not an authenticity mechanism, so these frames are
/// *validly sealed* — the structural checks have to do the work.
#[test]
fn oversized_length_fields_fail_before_allocating() {
    fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
        let end = bytes.len() - 8;
        let digest = checksum(&bytes[..end]);
        bytes[end..].copy_from_slice(&digest.to_le_bytes());
        bytes
    }

    let base: Vec<u8> = (0..2048u32).map(|i| (i % 17) as u8).collect();
    let mut target = base.clone();
    target[9] = 0xAA;
    let frame = encode_delta_frame(3, &base, 4, &target);

    // Find the op-count field: payload layout after the sealed header
    // (magic 4 + version 2 + tag 2 + len 8) is tag u16, kind u8, epoch u64,
    // base_epoch u64, base_len u64, base_digest u64, target_len u64,
    // target_digest u64, then op_count u64.
    let op_count_at = 16 + 2 + 1 + 8 + 8 + 8 + 8 + 8 + 8;

    // Claim u64::MAX ops.
    let mut huge_ops = frame.clone();
    huge_ops[op_count_at..op_count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        apply_delta_frame(&base, 3, &reseal(huge_ops)),
        Err(CodecError::Truncated { .. })
    ));

    // Claim an absurd target length (output must never pre-allocate it).
    let target_len_at = 16 + 2 + 1 + 8 + 8 + 8 + 8;
    let mut huge_target = frame.clone();
    huge_target[target_len_at..target_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(apply_delta_frame(&base, 3, &reseal(huge_target)).is_err());

    // A copy op reaching past the base: craft a minimal delta by hand.
    let sneaky = encode_delta_frame(5, &base, 6, &base); // all-copy delta
    let mut replayed = sneaky.clone();
    // First op starts right after op_count; op = kind u8, base_off u64, len u64.
    let first_op_at = op_count_at + 8;
    replayed[first_op_at + 1..first_op_at + 9].copy_from_slice(&(base.len() as u64).to_le_bytes()); // base_off = len(base)
    assert!(
        apply_delta_frame(&base, 5, &reseal(replayed)).is_err(),
        "copy op past the end of the base applied successfully"
    );

    // Full frames: embedded snapshot length inflated past the payload.
    let mut writer = IncrementalCheckpointer::new();
    let full = match writer.checkpoint_bytes(base.clone(), 1) {
        CheckpointFrame::Full { bytes, .. } => bytes,
        CheckpointFrame::Delta { .. } => unreachable!("first frame is always full"),
    };
    let embedded_len_at = 16 + 2 + 1 + 8;
    let mut huge_embed = full.clone();
    huge_embed[embedded_len_at..embedded_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        unwrap_full_frame(&reseal(huge_embed)),
        Err(CodecError::Truncated { .. })
    ));
    // And the untampered full frame still unwraps (sanity).
    assert_eq!(unwrap_full_frame(&full).unwrap(), (base.clone(), 1));
    assert_eq!(peek_frame(&full).unwrap(), (FrameKind::Full, 1));
}
