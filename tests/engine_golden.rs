//! Golden seed-vector tests for the skip-ahead reservoir engine.
//!
//! The traces in `tests/golden/skip_ahead_seed_vectors.txt` were recorded
//! from the pre-refactor implementations (PR 1: `TrulyPerfectGSampler` and
//! `Cohort` each carrying a private copy of the instances / schedule /
//! suffix-table machinery). Every sampler that now routes through
//! `tps_core::engine::SkipAheadEngine` must reproduce them **byte for
//! byte**: the same RNG draw sequence (skip-ahead reschedules and rejection
//! coins in the same order) and therefore the same sample outcomes at every
//! checkpoint. A mismatch means the unification changed observable
//! behaviour, not just code layout.
//!
//! Regenerate (only when a *deliberate* behaviour change is being made):
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test engine_golden
//! ```

use tps_core::framework::{MeasureNormalizer, TrulyPerfectGSampler};
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sliding::{SlidingWindowGSampler, SlidingWindowLpSampler};
use tps_streams::{Huber, Item, SampleOutcome, SlidingWindowSampler, StreamSampler};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/skip_ahead_seed_vectors.txt"
);

/// Checkpoints (in processed updates) at which each sampler is queried.
/// They straddle several W=50 cohort epochs so the sliding traces exercise
/// cohort birth, retirement and window expiry.
const CHECKPOINTS: [usize; 4] = [37, 100, 260, 600];
const DRAWS_PER_CHECKPOINT: usize = 8;

/// A deterministic, mildly skewed stream over a 64-item universe. Inlined
/// (splitmix64 finalizer) so the golden vectors depend on nothing but this
/// file and the samplers under test.
fn golden_stream(len: usize) -> Vec<Item> {
    (0..len as u64)
        .map(|i| {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // Two-tier skew: half the mass on 8 heavy items.
            if z % 4 < 2 {
                z % 8
            } else {
                z % 64
            }
        })
        .collect()
}

fn outcome_token(outcome: SampleOutcome) -> String {
    match outcome {
        SampleOutcome::Index(i) => format!("I{i}"),
        SampleOutcome::Fail => "F".to_string(),
        SampleOutcome::Empty => "E".to_string(),
    }
}

/// Feeds the stream through the per-item `update` loop, pausing at each
/// checkpoint to record `DRAWS_PER_CHECKPOINT` consecutive samples (each
/// draw advances the sampler's RNG, so the trace pins the RNG position, not
/// just the reservoir contents).
fn trace_stream_sampler<S: StreamSampler>(name: &str, mut sampler: S, stream: &[Item]) -> String {
    let mut lines = String::new();
    let mut fed = 0;
    for &checkpoint in &CHECKPOINTS {
        for &item in &stream[fed..checkpoint] {
            sampler.update(item);
        }
        fed = checkpoint;
        let tokens: Vec<String> = (0..DRAWS_PER_CHECKPOINT)
            .map(|_| outcome_token(sampler.sample()))
            .collect();
        lines.push_str(&format!("{name}@{checkpoint}: {}\n", tokens.join(" ")));
    }
    lines
}

/// Same trace for a sliding-window sampler.
fn trace_window_sampler<S: SlidingWindowSampler>(
    name: &str,
    mut sampler: S,
    stream: &[Item],
) -> String {
    let mut lines = String::new();
    let mut fed = 0;
    for &checkpoint in &CHECKPOINTS {
        for &item in &stream[fed..checkpoint] {
            sampler.update(item);
        }
        fed = checkpoint;
        let tokens: Vec<String> = (0..DRAWS_PER_CHECKPOINT)
            .map(|_| outcome_token(sampler.sample()))
            .collect();
        lines.push_str(&format!("{name}@{checkpoint}: {}\n", tokens.join(" ")));
    }
    lines
}

/// Every adapter over the shared engine, covering both normaliser flavours,
/// the single-instance degenerate case, a direct framework instantiation,
/// and both sliding-window samplers (private per-cohort RNGs).
fn record_all_traces() -> String {
    let stream = golden_stream(*CHECKPOINTS.last().unwrap());
    let mut out = String::new();
    out.push_str(&trace_stream_sampler(
        "lp2_misra_gries",
        TrulyPerfectLpSampler::new(2.0, 64, 0.1, 42),
        &stream,
    ));
    out.push_str(&trace_stream_sampler(
        "lp1_single_reservoir",
        TrulyPerfectLpSampler::new(1.0, 64, 0.1, 43),
        &stream,
    ));
    out.push_str(&trace_stream_sampler(
        "lp_half_fractional",
        TrulyPerfectLpSampler::fractional(0.5, 600, 0.1, 44),
        &stream,
    ));
    out.push_str(&trace_stream_sampler(
        "huber_framework_16",
        TrulyPerfectGSampler::with_instances(
            Huber::new(2.0),
            MeasureNormalizer::new(Huber::new(2.0)),
            16,
            45,
        ),
        &stream,
    ));
    out.push_str(&trace_window_sampler(
        "sliding_huber_w50",
        SlidingWindowGSampler::new(Huber::new(2.0), 50, 0.2, 46),
        &stream,
    ));
    out.push_str(&trace_window_sampler(
        "sliding_l2_w50",
        SlidingWindowLpSampler::with_estimator_size(2.0, 50, 0.2, 2, 8, 47),
        &stream,
    ));
    out
}

#[test]
fn samplers_reproduce_pre_refactor_seed_vectors() {
    let actual = record_all_traces();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        eprintln!("golden vectors rewritten: {GOLDEN_PATH}");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden vectors missing; run with UPDATE_GOLDEN=1 to record them");
    for (line_no, (exp, act)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            exp,
            act,
            "sample trace diverged from the pre-refactor golden vector at line {}",
            line_no + 1
        );
    }
    assert_eq!(
        expected.lines().count(),
        actual.lines().count(),
        "trace line count changed"
    );
}
