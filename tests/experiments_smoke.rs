//! Smoke tests for the benchmark harness: every experiment of
//! `EXPERIMENTS.md` can be executed at a reduced scale and produces rows
//! whose *shape* matches the paper's claims. The full-scale numbers are
//! produced by `cargo run --release -p tps-bench --bin report`.

use tps_bench::experiments;

#[test]
fn e1_lp_space_scaling_exponent_matches_theorem() {
    // Measured instance count should grow like n^{1-1/p}.
    let rows = experiments::e1_lp_space(&[256, 1_024, 4_096], &[1.5, 2.0], 0.1);
    for row in &rows {
        let theory = 1.0 - 1.0 / row.p;
        assert!(
            (row.fitted_exponent - theory).abs() < 0.25,
            "p={}: fitted {} vs theory {}",
            row.p,
            row.fitted_exponent,
            theory
        );
    }
}

#[test]
fn e2_fractional_lp_space_scaling() {
    let rows = experiments::e2_fractional_space(&[1_000, 4_000, 16_000], &[0.5, 0.75], 0.2);
    for row in &rows {
        let theory = 1.0 - row.p;
        assert!(
            (row.fitted_exponent - theory).abs() < 0.25,
            "p={}: fitted {} vs theory {}",
            row.p,
            row.fitted_exponent,
            theory
        );
    }
}

#[test]
fn e3_update_time_is_flat_for_truly_perfect_and_grows_for_baseline() {
    let row = experiments::e3_update_time(20_000, 256, &[8, 32, 128], &[100, 10_000]);
    // Truly perfect sampler: per-update cost roughly constant in the
    // baseline's duplication knob (it does not have one).
    // Baseline: cost must grow roughly linearly with duplication.
    let first = row.baseline_nanos_per_update[0];
    let last = *row.baseline_nanos_per_update.last().unwrap();
    assert!(
        last > 4.0 * first,
        "baseline update time should grow with duplication: {first} -> {last}"
    );
    assert!(
        row.truly_perfect_nanos_per_update < first.max(1_000.0) * 10.0,
        "truly perfect update time should not dwarf the cheapest baseline"
    );
    // Skip-ahead engine: growing the reservoir count 100x must not grow
    // the per-element cost anywhere near 100x — the schedule only touches
    // due slots (generous 10x bound for noisy CI hosts).
    let engine_small = row.engine_nanos_per_update[0];
    let engine_big = *row.engine_nanos_per_update.last().unwrap();
    assert!(
        engine_big < engine_small.max(50.0) * 10.0,
        "engine per-update cost should be near-flat in the slot count: \
         {engine_small} ns at {} slots -> {engine_big} ns at {} slots",
        row.engine_slot_counts[0],
        row.engine_slot_counts.last().unwrap()
    );
}

#[test]
fn e4_exactness_and_composition() {
    let row = experiments::e4_distribution(6_000, 48, 10, 300, 0.1);
    assert!(row.truly_perfect_drift_ratio < 2.0);
    assert!(row.biased_drift_ratio > row.truly_perfect_drift_ratio);
}

#[test]
fn e5_mestimator_samplers_are_small_and_exact() {
    let rows = experiments::e5_mestimators(2_000, 32, 600);
    for row in rows {
        assert!(
            row.tv_distance < 3.0 * row.expected_noise.max(0.02),
            "{}: tv {} vs noise {}",
            row.measure,
            row.tv_distance,
            row.expected_noise
        );
        assert!(
            row.space_bytes < 64 * 1024,
            "{}: space {}",
            row.measure,
            row.space_bytes
        );
    }
}

#[test]
fn e6_f0_space_scaling_and_uniformity() {
    let row = experiments::e6_f0(&[1_024, 16_384], 400);
    assert!(row.fitted_space_exponent > 0.3 && row.fitted_space_exponent < 0.8);
    assert!(row.tv_distance < 0.25);
}

#[test]
fn e9_equality_attack_advantage_matches_gamma() {
    let rows = experiments::e9_equality(&[0.0, 0.05, 0.1], 128, 2_000);
    assert_eq!(rows[0].observed_advantage, 0.0);
    assert!((rows[2].observed_advantage - 0.1).abs() < 0.03);
    // Smaller additive error ⇒ larger implied space bound (gamma = 0 is
    // clamped to a tiny positive value inside the experiment).
    assert!(rows[0].lower_bound_bits > rows[2].lower_bound_bits);
}

#[test]
fn e10_multipass_tradeoff() {
    let rows = experiments::e10_multipass(4_096, 2_000, &[0.5, 0.25, 0.125]);
    // More passes <=> fewer counters as gamma shrinks.
    assert!(rows.windows(2).all(|w| w[1].passes >= w[0].passes));
    assert!(rows
        .windows(2)
        .all(|w| w[1].peak_counters <= w[0].peak_counters));
}

#[test]
fn f1_smooth_histogram_checkpoints_are_logarithmic() {
    let rows = experiments::f1_checkpoints(&[1_000, 10_000]);
    for row in &rows {
        assert!(
            (row.checkpoints as f64) < 40.0 * (row.window as f64).ln(),
            "window {}: {} checkpoints",
            row.window,
            row.checkpoints
        );
    }
    assert!(rows[1].checkpoints < rows[0].checkpoints * 4);
}
