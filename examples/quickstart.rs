//! Quickstart: the builder-first parallel front-end, checkpointing, and a
//! truly perfect `L_2` distribution check.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example walks the public surface end to end: build a sharded
//! sampler with [`ShardedSamplerBuilder`], ingest a skewed stream, read
//! the runtime's backpressure counters, checkpoint mid-stream with
//! [`snapshot_bytes`], restore a replica with [`restore_bytes`] and show
//! the two stay byte-identical as both keep ingesting — then run the
//! turnstile (insert *and* delete) kind through the same sharded
//! front-end via [`ShardedSamplerBuilder::build_turnstile`], and finally
//! draw many samples with fresh single-instance samplers and compare the
//! empirical distribution against the exact `f_i² / F_2` target.

use truly_perfect_samplers::streams::frequency::FrequencyVector;
use truly_perfect_samplers::streams::generators::zipfian_stream;
use truly_perfect_samplers::streams::stats::{expected_sampling_tv, SampleHistogram};
use truly_perfect_samplers::streams::SpaceUsage;
use truly_perfect_samplers::{
    restore_bytes, snapshot_bytes, Backpressure, SampleOutcome, ShardedSampler,
    ShardedSamplerBuilder, SignedUpdate, StreamSampler, StrictTurnstileF0Sampler,
    TrulyPerfectLpSampler, TurnstileSampler,
};

fn main() {
    let universe = 1_024u64;
    let stream_length = 200_000usize;
    let p = 2.0;
    let seed = 42u64;

    // A Zipf(1.1) stream: a few heavy items and a long tail, the regime in
    // which L2 sampling differs most from plain frequency sampling.
    let mut rng = truly_perfect_samplers::random::default_rng(7);
    let stream = zipfian_stream(&mut rng, universe, stream_length, 1.1);
    let (head, tail) = stream.split_at(stream.len() / 2);

    // --- The parallel front-end, builder-first -------------------------
    let mut sharded = ShardedSamplerBuilder::new(4)
        .seed(seed)
        .backpressure(Backpressure::Spill)
        .build(|shard| {
            TrulyPerfectLpSampler::new(p, universe, 0.05, seed ^ ((shard as u64) << 32))
        });
    sharded.update_batch(head);

    // --- Checkpoint / restore through the facade helpers ---------------
    let checkpoint = snapshot_bytes(&sharded);
    let mut replica: ShardedSampler<TrulyPerfectLpSampler> =
        restore_bytes(&checkpoint).expect("own snapshot restores");
    sharded.update_batch(tail);
    replica.update_batch(tail);
    assert_eq!(
        snapshot_bytes(&sharded),
        snapshot_bytes(&replica),
        "restore-and-continue must be byte-identical to never stopping"
    );

    let stats = sharded.runtime_stats();
    println!("stream length            : {stream_length}");
    println!("shards                   : {}", sharded.shard_count());
    println!("checkpoint size          : {} bytes", checkpoint.len());
    println!(
        "runtime chunks           : {} ({} spilled, {} blocked)",
        stats.chunks, stats.spilled, stats.blocked
    );
    match sharded.sample() {
        SampleOutcome::Index(item) => println!("merged L2 sample         : item {item}"),
        outcome => println!("merged L2 sample         : {outcome:?}"),
    }
    println!();

    // --- Turnstile: the same front-end over signed updates -------------
    // Inserts plus deletions flow through `build_turnstile`; the shards
    // share one seed because the turnstile merge law needs identical
    // pre-drawn subsets (the routing, staging and runtime underneath are
    // the same kind-generic machinery the L2 front-end just used).
    let signed: Vec<SignedUpdate> = stream
        .iter()
        .enumerate()
        .flat_map(|(i, &item)| {
            if i % 3 == 0 {
                // A transient occurrence: inserted, later deleted.
                vec![SignedUpdate::insert(item), SignedUpdate::delete(item)]
            } else {
                vec![SignedUpdate::insert(item)]
            }
        })
        .collect();
    let mut turnstile = ShardedSamplerBuilder::new(4)
        .seed(seed)
        .build_turnstile(|_shard| StrictTurnstileF0Sampler::new(universe, seed));
    turnstile.ingest_batch(&signed);
    println!(
        "turnstile updates        : {} (with deletions)",
        signed.len()
    );
    match TurnstileSampler::sample(&mut turnstile) {
        SampleOutcome::Index(item) => println!("merged turnstile sample  : item {item}"),
        outcome => println!("merged turnstile sample  : {outcome:?}"),
    }
    println!();

    // --- Truly perfect means: noise-only deviation from the target -----
    let draws = 2_000u64;
    let truth = FrequencyVector::from_stream(&stream);
    let target = truth.lp_distribution(p);
    let mut histogram = SampleHistogram::new();
    let mut space = 0usize;
    for draw_seed in 0..draws {
        let mut sampler = TrulyPerfectLpSampler::new(p, universe, 0.05, draw_seed);
        sampler.update_all(&stream);
        space = space.max(sampler.space_bytes());
        histogram.record(sampler.sample());
    }

    let tv = histogram.tv_distance(&target);
    let noise = expected_sampling_tv(&target, histogram.successes());
    println!("draws                    : {draws}");
    println!(
        "failures                 : {} ({:.2}%)",
        histogram.fails(),
        100.0 * histogram.fail_rate()
    );
    println!(
        "sampler space            : {:.1} KiB",
        space as f64 / 1024.0
    );
    println!("TV(empirical, exact)     : {tv:.4}");
    println!("expected multinomial TV  : {noise:.4}");
    println!();
    println!(
        "A truly perfect sampler's TV distance is explained by sampling noise alone \
         (compare the last two numbers above)."
    );
}
