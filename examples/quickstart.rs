//! Quickstart: truly perfect `L_p` sampling from an insertion-only stream.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tps-core --example quickstart
//! ```
//!
//! The example builds a skewed synthetic stream, draws many samples with a
//! truly perfect `L_2` sampler (one fresh sampler per draw, as you would in
//! a real deployment that resets its sampler per reporting period), and
//! compares the empirical sample distribution against the exact
//! `f_i² / F_2` target.

use tps_core::lp::TrulyPerfectLpSampler;
use tps_random::default_rng;
use tps_streams::frequency::FrequencyVector;
use tps_streams::generators::zipfian_stream;
use tps_streams::stats::{expected_sampling_tv, SampleHistogram};
use tps_streams::{SpaceUsage, StreamSampler};

fn main() {
    let universe = 1_024u64;
    let stream_length = 20_000usize;
    let draws = 2_000u64;
    let p = 2.0;

    // A Zipf(1.1) stream: a few heavy items and a long tail, the regime in
    // which L2 sampling differs most from plain frequency sampling.
    let mut rng = default_rng(7);
    let stream = zipfian_stream(&mut rng, universe, stream_length, 1.1);
    let truth = FrequencyVector::from_stream(&stream);
    let target = truth.lp_distribution(p);

    println!("stream length            : {stream_length}");
    println!("distinct items           : {}", truth.f0());
    println!("largest frequency        : {}", truth.l_inf());

    let mut histogram = SampleHistogram::new();
    let mut space = 0usize;
    for seed in 0..draws {
        let mut sampler = TrulyPerfectLpSampler::new(p, universe, 0.05, seed);
        sampler.update_all(&stream);
        space = space.max(sampler.space_bytes());
        histogram.record(sampler.sample());
    }

    let tv = histogram.tv_distance(&target);
    let noise = expected_sampling_tv(&target, histogram.successes());
    println!("draws                    : {draws}");
    println!(
        "failures                 : {} ({:.2}%)",
        histogram.fails(),
        100.0 * histogram.fail_rate()
    );
    println!(
        "sampler space            : {:.1} KiB",
        space as f64 / 1024.0
    );
    println!("TV(empirical, exact)     : {tv:.4}");
    println!("expected multinomial TV  : {noise:.4}");
    println!();
    println!("top-5 items by exact L2 mass vs. empirical sampling rate:");
    let mut ranked: Vec<_> = target.iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    for (item, mass) in ranked.into_iter().take(5) {
        let empirical = histogram.count(*item) as f64 / histogram.successes().max(1) as f64;
        println!(
            "  item {item:>5}: exact {:.4}  sampled {:.4}",
            mass, empirical
        );
    }
    println!();
    println!(
        "A truly perfect sampler's TV distance is explained by sampling noise alone \
         (compare the last two numbers above)."
    );
}
