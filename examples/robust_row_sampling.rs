//! Matrix row sampling and M-estimator sampling on a transaction log.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tps-core --example robust_row_sampling
//! ```
//!
//! The scenario: a stream of (customer, product-category) purchase events
//! defines an implicit customer×category matrix. Downstream jobs want
//!
//! * customers sampled proportionally to the `L_2` norm of their activity
//!   row (the `L_{1,2}` sampling primitive used by adaptive sampling /
//!   volume sampling pipelines, Theorem 3.7), and
//! * items sampled under a robust M-estimator weighting (`L_1–L_2`), which
//!   behaves like `L_2` for small counts but only linearly for outliers
//!   (Corollary 3.6).

use tps_core::matrix::{MatrixRowSampler, RowL2};
use tps_core::mestimators::L1L2Sampler;
use tps_random::default_rng;
use tps_streams::frequency::{FrequencyVector, MatrixAccumulator};
use tps_streams::generators::matrix_stream;
use tps_streams::stats::SampleHistogram;
use tps_streams::{MatrixSampler, SampleOutcome, StreamSampler, L1L2};

fn main() {
    let customers = 256u64;
    let categories = 16u64;
    let events = 50_000usize;

    let mut rng = default_rng(2024);
    let updates = matrix_stream(&mut rng, customers, categories, events);
    let mut truth = MatrixAccumulator::new();
    for u in &updates {
        truth.insert(u.row, u.col);
    }
    let row_target = truth.row_distribution(2);

    println!("customers                : {customers}");
    println!("categories               : {categories}");
    println!("events                   : {events}");

    // --- L_{1,2} row sampling ------------------------------------------------
    let mut histogram = SampleHistogram::new();
    for seed in 0..800u64 {
        let mut sampler = MatrixRowSampler::<RowL2>::l12(categories as usize, 0.05, seed);
        for &u in &updates {
            sampler.update(u);
        }
        histogram.record(sampler.sample());
    }
    let tv = tps_streams::stats::tv_distance(&histogram.empirical_distribution(), &row_target);
    println!();
    println!(
        "L_(1,2) row sampling over {} draws:",
        histogram.total_draws()
    );
    println!(
        "  failure rate           : {:.2}%",
        100.0 * histogram.fail_rate()
    );
    println!("  TV(empirical, exact)   : {tv:.4}");

    // --- Robust item sampling (L1-L2 estimator) ------------------------------
    // Flatten the events to item = category and add one outlier category that
    // a plain L2 sampler would be dominated by.
    let mut item_stream: Vec<u64> = updates.iter().map(|u| u.col).collect();
    item_stream.extend(std::iter::repeat_n(99u64, 5_000));
    let item_truth = FrequencyVector::from_stream(&item_stream);
    let g_target = item_truth.g_distribution(&L1L2);
    let l2_target = item_truth.lp_distribution(2.0);

    let mut robust_hist = SampleHistogram::new();
    for seed in 0..800u64 {
        let mut sampler = L1L2Sampler::l1l2(item_stream.len() as u64, 0.05, 40_000 + seed);
        sampler.update_all(&item_stream);
        robust_hist.record(sampler.sample());
    }
    println!();
    println!("robust (L1-L2) item sampling with an outlier category present:");
    println!(
        "  outlier mass under L2     : {:.3}  (what a plain L2 sampler would give it)",
        l2_target.get(&99).copied().unwrap_or(0.0)
    );
    println!(
        "  outlier mass under L1-L2  : {:.3}  (robust target)",
        g_target.get(&99).copied().unwrap_or(0.0)
    );
    let sampled_rate = robust_hist.count(99) as f64 / robust_hist.successes().max(1) as f64;
    println!("  outlier empirical rate    : {sampled_rate:.3}");
    let tv_robust = robust_hist.tv_distance(&g_target);
    println!("  TV(empirical, robust tgt) : {tv_robust:.4}");

    // Show a couple of concrete draws for flavour.
    let mut sampler = MatrixRowSampler::<RowL2>::l12(categories as usize, 0.05, 77);
    for &u in &updates {
        sampler.update(u);
    }
    print!("example sampled customers: ");
    for _ in 0..5 {
        if let SampleOutcome::Index(row) = sampler.sample() {
            print!("{row} ");
        }
    }
    println!();
}
