//! Composition drift: why "perfect" is not "truly perfect".
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p tps-core --example composition_privacy
//! ```
//!
//! The paper motivates truly perfect sampling by what happens when samplers
//! are re-run many times — once per minute of a stream, or once per shard of
//! a distributed database. A `1/poly(n)`-additive-error sampler looks fine
//! on any single run, but the bias adds up across runs, and an onlooker who
//! sees many samples can detect it (the privacy / perfect-security
//! argument, and the core of the Theorem 1.2 lower bound).
//!
//! This example measures exactly that: it splits a stream into portions,
//! draws samples per portion with (a) a truly perfect L1 sampler and (b) the
//! same sampler wrapped with a small additive bias γ, and prints how the
//! cumulative drift compares to the unavoidable multinomial noise floor. It
//! then runs the equality-reduction attack of Theorem 1.2 to show the same
//! γ is enough to win a distinguishing game.

use tps_core::composition::run_composition;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::perfect_baselines::BiasedReferenceSampler;
use tps_core::turnstile::{lower_bound_bits, EqualityReduction};
use tps_random::default_rng;
use tps_streams::generators::{split_into_portions, zipfian_stream};

fn main() {
    let universe = 64u64;
    let portions = 20usize;
    let samples_per_portion = 500usize;
    let gamma = 0.05;

    let mut rng = default_rng(3);
    let stream = zipfian_stream(&mut rng, universe, 20_000, 1.0);
    let split = split_into_portions(&stream, portions);

    let perfect = run_composition(
        &split,
        samples_per_portion,
        |seed| TrulyPerfectLpSampler::new(1.0, universe, 0.05, seed),
        |truth| truth.lp_distribution(1.0),
    );
    let biased = run_composition(
        &split,
        samples_per_portion,
        |seed| {
            BiasedReferenceSampler::new(
                TrulyPerfectLpSampler::new(1.0, universe, 0.05, seed),
                gamma,
                universe - 1,
                seed ^ 0xBEEF,
            )
        },
        |truth| truth.lp_distribution(1.0),
    );

    println!("portions                       : {portions}");
    println!("samples per portion            : {samples_per_portion}");
    println!("injected additive error gamma  : {gamma}");
    println!();
    println!("                         truly perfect   gamma-additive");
    println!(
        "cumulative drift       : {:>13.3}   {:>13.3}",
        perfect.total_drift(),
        biased.total_drift()
    );
    println!(
        "noise floor            : {:>13.3}   {:>13.3}",
        perfect.total_noise_floor(),
        biased.total_noise_floor()
    );
    println!(
        "drift / noise ratio    : {:>13.2}   {:>13.2}",
        perfect.drift_ratio(),
        biased.drift_ratio()
    );
    println!();

    // The equality-reduction attack (Theorem 1.2): the same gamma becomes a
    // distinguishing advantage, which forces Omega(log 1/gamma) space.
    let mut attack_rng = default_rng(11);
    let truly_perfect_attack = EqualityReduction::new(0.0);
    let leaky_attack = EqualityReduction::new(gamma);
    println!(
        "equality-attack refutation error : truly perfect {:.4}, gamma-additive {:.4}",
        truly_perfect_attack.refutation_error(128, 5_000, &mut attack_rng),
        leaky_attack.refutation_error(128, 5_000, &mut attack_rng),
    );
    println!(
        "Theorem 1.2 space lower bound for a turnstile sampler with this gamma: {:.1} bits",
        8.0 * lower_bound_bits(128, gamma.min(0.24))
    );
    println!();
    println!(
        "The truly perfect sampler drifts only as fast as multinomial noise; the \
         gamma-additive sampler's drift grows linearly with the number of portions and \
         its bias is directly usable as a distinguishing advantage."
    );
}
