//! Sliding-window network monitoring.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example network_monitor
//! ```
//!
//! The scenario from the paper's introduction: a monitor watches a
//! high-throughput packet stream and, every reporting period, wants a
//! sample of flows drawn proportionally to their recent traffic — where
//! "recent" means the last `W` packets, not the whole history. The example
//! runs a drifting flow population through
//!
//! * a truly perfect sliding-window `L_1` sampler (per-flow packet counts),
//! * a truly perfect sliding-window Huber sampler (robust weighting that
//!   damps mega-flows), and
//! * the truly perfect sliding-window `F_0` sampler (active flow discovery),
//!
//! and shows that expired flows never leak into the reports. A final
//! section scales the monitor up: a 4-shard `ShardedSampler` on the
//! persistent worker-pool runtime ingests a much larger packet stream in
//! batches while the reporting thread pulls traffic-proportional samples
//! mid-stream from snapshot-isolated queries — the workers keep ingesting
//! while each report is answered from a consistent-cut snapshot, never
//! from a clone of the live shards.

use tps_core::f0::SlidingWindowF0Sampler;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sharded::{ShardedSamplerBuilder, ShardingStrategy};
use tps_core::sliding::SlidingWindowGSampler;
use tps_core::QueryOptions;
use tps_random::default_rng;
use tps_streams::frequency::FrequencyVector;
use tps_streams::generators::drifting_stream;
use tps_streams::stats::SampleHistogram;
use tps_streams::update::WindowSpec;
use tps_streams::{Huber, Lp, SampleOutcome, SlidingWindowSampler, StreamSampler};

fn main() {
    let universe = 4_096u64;
    let window = 2_000u64;
    let stream_length = 12_000usize;

    // Flow population drifts every 1500 packets: old flows go quiet, new
    // flows appear, so the active window keeps changing.
    let mut rng = default_rng(42);
    let stream = drifting_stream(&mut rng, universe, stream_length, 1_500, 64, 256);
    let window_truth = FrequencyVector::from_window(&stream, WindowSpec::new(window));

    println!("window size              : {window} packets");
    println!("active flows in window   : {}", window_truth.f0());
    println!(
        "busiest active flow      : {} packets",
        window_truth.l_inf()
    );

    // --- Traffic-proportional sampling (L1) ------------------------------
    let mut l1_hist = SampleHistogram::new();
    for seed in 0..400u64 {
        let mut sampler = SlidingWindowGSampler::new(Lp::new(1.0), window, 0.1, seed);
        for &packet in &stream {
            SlidingWindowSampler::update(&mut sampler, packet);
        }
        l1_hist.record(SlidingWindowSampler::sample(&mut sampler));
    }
    report("traffic-proportional (L1)", &l1_hist, &window_truth);

    // --- Robust sampling (Huber) ------------------------------------------
    let mut huber_hist = SampleHistogram::new();
    for seed in 0..400u64 {
        let mut sampler = SlidingWindowGSampler::new(Huber::new(8.0), window, 0.1, 10_000 + seed);
        for &packet in &stream {
            SlidingWindowSampler::update(&mut sampler, packet);
        }
        huber_hist.record(SlidingWindowSampler::sample(&mut sampler));
    }
    report("robust (Huber, tau = 8)", &huber_hist, &window_truth);

    // --- Active-flow discovery (F0) ----------------------------------------
    let mut f0_sampler = SlidingWindowF0Sampler::new(universe, window, 0.05, 7);
    for &packet in &stream {
        SlidingWindowSampler::update(&mut f0_sampler, packet);
    }
    let mut discovered = std::collections::HashSet::new();
    for _ in 0..200 {
        if let SampleOutcome::Index(flow) = SlidingWindowSampler::sample(&mut f0_sampler) {
            assert!(window_truth.get(flow) > 0, "expired flow {flow} reported");
            discovered.insert(flow);
        }
    }
    println!(
        "F0 sampler discovered {} distinct active flows in 200 draws (window has {}).",
        discovered.len(),
        window_truth.f0()
    );

    // --- Sharded ingest + periodic snapshot queries -------------------------
    //
    // The production shape: packets arrive far faster than one core can
    // absorb, so a hash-routed ShardedSampler spreads them over a pool of
    // persistent workers (one long-lived thread per shard, fed by SPSC
    // rings). The monitor keeps reporting while ingest runs: each periodic
    // query makes the workers emit codec snapshots at a consistent cut,
    // and the merged answer is built off the hot path — ingest never
    // stops, and the live shards are never cloned.
    let shards = 4;
    let batch_len = 64 * 1024;
    let batches = 24;
    let report_every = 8;
    let big_universe = 65_536u64;

    let mut sharded = ShardedSamplerBuilder::new(shards)
        .strategy(ShardingStrategy::Hash)
        .seed(7_777)
        .build(|idx| TrulyPerfectLpSampler::new(1.0, big_universe, 0.1, 1_000 + idx as u64));
    let mut gen_rng = default_rng(4_242);
    let mut truth = FrequencyVector::new();
    println!(
        "\nsharded monitor          : {shards} shards, {} packets in {batches} batches",
        batch_len * batches
    );
    for batch_no in 1..=batches {
        let batch = drifting_stream(&mut gen_rng, big_universe, batch_len, 16_384, 512, 2_048);
        for &packet in &batch {
            truth.insert(packet);
        }
        sharded.update_batch(&batch);
        // The monitor reports every fourth batch through the typed query
        // surface. Every `report_every`-th batch demands a fresh
        // consistent cut (one fold-merge across the shards, republished
        // into the snapshot cache); the reports in between accept the
        // cached merge while it is at most four ingest epochs stale —
        // answered without touching the workers or spending merge coins.
        if batch_no % 4 == 0 {
            let options = if batch_no % report_every == 0 {
                QueryOptions::consistent()
            } else {
                QueryOptions::cached(4)
            };
            let mut view = sharded.query(&options);
            let mode = if view.cached { "cached" } else { "fresh" };
            match view.value.sample() {
                SampleOutcome::Index(flow) => {
                    assert!(truth.get(flow) > 0, "sampled flow {flow} never seen");
                    println!(
                        "  after batch {batch_no:>2} ({mode:>6}): sampled flow {flow} \
                         (epoch {}, {} packets so far)",
                        view.epoch,
                        truth.get(flow)
                    );
                }
                outcome => println!("  after batch {batch_no:>2} ({mode:>6}): {outcome:?}"),
            }
            assert!(
                sharded.runtime_active(),
                "worker pool should stay live across queries"
            );
        }
    }
    sharded.flush();
    let cache = sharded.query_cache_stats();
    assert!(
        cache.hits > 0,
        "the cached reports should have hit the published merge"
    );
    println!(
        "sharded monitor ingested {} packets across {} shards (runtime {}); \
         query cache: {} hits, {} misses.",
        sharded.processed(),
        sharded.shard_count(),
        if sharded.runtime_active() {
            "live"
        } else {
            "idle"
        },
        cache.hits,
        cache.misses
    );
}

fn report(label: &str, histogram: &SampleHistogram, truth: &FrequencyVector) {
    let expired_hits: u64 = histogram
        .empirical_distribution()
        .keys()
        .filter(|&&flow| truth.get(flow) == 0)
        .map(|&flow| histogram.count(flow))
        .sum();
    println!(
        "{label:<28}: {} draws, {:.1}% failed, {} samples of expired flows",
        histogram.total_draws(),
        100.0 * histogram.fail_rate(),
        expired_hits
    );
}
