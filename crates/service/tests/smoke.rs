//! End-to-end smoke test of the networked ingest service, driven through
//! the real binary (`CARGO_BIN_EXE_tps-service`): coordinator + worker
//! processes over pipes *and* TCP loopback, on-disk checkpoint chains,
//! a durable coordinator manifest chain, deterministic fault injection,
//! and a live query plane — all asserted against the single-process
//! reference.
//!
//! The headline contracts:
//!
//! * **Distributed = single-process**: the coordinator's merged query
//!   report equals the in-process sharded sampler's, byte for byte
//!   (snapshot checksum *and* sample outcome), for every sampler kind.
//! * **Recovery = uninterrupted**: SIGKILLing a *worker* (either
//!   transport) or the *coordinator* (pipe off-barrier, TCP mid-barrier —
//!   the widest crash window) mid-stream and recovering from the on-disk
//!   chains produces the identical final report.
//! * **Queries don't perturb**: a client query served mid-ingest over TCP
//!   returns the consistent cut at its chunk boundary, ingest continues
//!   past the query barrier, and the final report still matches the
//!   reference.
//!
//! On assertion failure, if `TPS_SMOKE_ARTIFACT_DIR` is set the job's
//! checkpoint directory (coordinator manifest chain + shard chains) is
//! preserved there for post-mortem — CI uploads it as an artifact.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use tps_service::config::{SamplerKind, ServiceBuilder, TransportKind};
use tps_service::coordinator::{run_reference, QueryReport};
use tps_service::store::CheckpointStore;
use tps_service::JobSpec;
use tps_streams::codec::delta::{peek_frame, FrameKind};
use tps_streams::wire::transport::{tcp_framed, Connection};
use tps_streams::wire::WireMessage;
use tps_streams::QueryOptions;

fn service_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_tps-service"))
}

/// A scratch checkpoint directory that cleans itself up on success and —
/// when `TPS_SMOKE_ARTIFACT_DIR` is set — preserves itself on panic.
struct JobDir {
    dir: PathBuf,
    tag: String,
}

impl JobDir {
    fn fresh(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tps-smoke-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self {
            dir,
            tag: tag.to_string(),
        }
    }

    fn path(&self) -> &Path {
        &self.dir
    }
}

impl Drop for JobDir {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Ok(root) = std::env::var("TPS_SMOKE_ARTIFACT_DIR") {
                let dest = Path::new(&root).join(&self.tag);
                match copy_tree(&self.dir, &dest) {
                    Ok(()) => eprintln!("smoke: preserved {} at {}", self.tag, dest.display()),
                    Err(e) => eprintln!("smoke: could not preserve {}: {e}", self.tag),
                }
            }
        } else {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

fn copy_tree(src: &Path, dest: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dest)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to = dest.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_tree(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

fn base_spec(kind: SamplerKind, dir: &Path, tcp: bool) -> JobSpec {
    let mut builder = ServiceBuilder::new(kind, 2)
        .universe(1 << 12)
        .seed(424_242)
        .count(30_000)
        .chunk(1_000)
        .checkpoint_every(3)
        .checkpoint_dir(dir)
        .worker_exe(service_exe());
    if tcp {
        builder = builder.transport(TransportKind::Tcp {
            endpoints: Vec::new(),
        });
    }
    builder.build().unwrap()
}

fn coordinator_cmd(spec: &JobSpec, extra: &[&str]) -> Command {
    let mut cmd = Command::new(service_exe());
    cmd.arg("coordinator")
        .arg("--workers")
        .arg(spec.workers.to_string())
        .arg("--sampler")
        .arg(spec.sampler.as_str())
        .arg("--universe")
        .arg(spec.universe.to_string())
        .arg("--seed")
        .arg(spec.seed.to_string())
        .arg("--count")
        .arg(spec.count.to_string())
        .arg("--chunk")
        .arg(spec.chunk.to_string())
        .arg("--checkpoint-every")
        .arg(spec.checkpoint_every.to_string())
        .arg("--checkpoint-dir")
        .arg(&spec.checkpoint_dir)
        .arg("--worker-exe")
        .arg(service_exe());
    if matches!(spec.transport, TransportKind::Tcp { .. }) {
        cmd.arg("--transport").arg("tcp");
    }
    cmd.args(extra);
    cmd
}

fn parse_report(stdout: &[u8]) -> QueryReport {
    let text = String::from_utf8(stdout.to_vec()).expect("utf8 report");
    let line = text.lines().rev().find(|l| !l.trim().is_empty()).unwrap();
    QueryReport::parse(line.trim()).unwrap_or_else(|| panic!("unparseable report: {line:?}"))
}

/// Runs the coordinator subcommand of the real binary and parses its
/// report line.
fn run_service(spec: &JobSpec, extra: &[&str]) -> QueryReport {
    let output = coordinator_cmd(spec, extra)
        .output()
        .expect("coordinator runs");
    assert!(
        output.status.success(),
        "coordinator failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    parse_report(&output.stdout)
}

/// Runs a coordinator that is expected to die mid-job (simulated SIGKILL
/// via abort). Waits on the exit *status* only — capturing its pipes
/// would deadlock on TCP jobs, whose surviving listen workers inherit
/// the coordinator's stderr and outlive it by design.
fn run_service_until_death(spec: &JobSpec, extra: &[&str]) {
    let status = coordinator_cmd(spec, extra)
        .stdout(Stdio::null())
        .status()
        .expect("coordinator spawns");
    assert!(
        !status.success(),
        "coordinator with a die fault exited cleanly"
    );
}

/// Resumes a job from its coordinator manifest chain and parses the
/// report of the completed run.
fn resume_service(dir: &Path) -> QueryReport {
    let output = Command::new(service_exe())
        .arg("resume")
        .arg("--checkpoint-dir")
        .arg(dir)
        .arg("--worker-exe")
        .arg(service_exe())
        .output()
        .expect("resume runs");
    assert!(
        output.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    parse_report(&output.stdout)
}

fn assert_manifest_chain_healthy(dir: &Path) {
    let frames = CheckpointStore::for_coordinator(dir)
        .load_frames()
        .expect("coordinator chain loads");
    assert!(!frames.is_empty(), "coordinator chain is empty");
    let (kind, _) = peek_frame(&frames[0]).expect("chain frame peeks");
    assert!(
        matches!(kind, FrameKind::Full),
        "coordinator chain does not start with a full frame: {kind:?}"
    );
}

#[test]
fn service_matches_single_process_reference_for_every_kind() {
    for kind in [
        SamplerKind::L2,
        SamplerKind::F0,
        SamplerKind::G,
        SamplerKind::Turnstile,
    ] {
        let dir = JobDir::fresh(&format!("ref-{}", kind.as_str()));
        let spec = base_spec(kind, dir.path(), false);
        let service = run_service(&spec, &[]);
        let reference = run_reference(&spec);
        assert_eq!(
            service,
            reference,
            "{}: distributed merged query drifted from the single-process reference",
            kind.as_str()
        );
        assert_eq!(service.processed, spec.count as u64);
    }
}

/// SIGKILL a worker mid-stream over both transports; the recovered run
/// must be byte-identical to the uninterrupted one and to the reference.
#[test]
fn killed_worker_recovers_byte_identically_over_both_transports() {
    for tcp in [false, true] {
        let label = if tcp { "tcp" } else { "pipe" };

        // Uninterrupted run.
        let calm_dir = JobDir::fresh(&format!("calm-{label}"));
        let calm_spec = base_spec(SamplerKind::L2, calm_dir.path(), tcp);
        let calm = run_service(&calm_spec, &[]);

        // Same job, but shard 1's worker is SIGKILLed after chunk 11 — two
        // chunks past the epoch-3 checkpoint (chunk 9), so recovery must
        // restore the checkpoint AND replay the two uncovered chunks.
        let chaos_dir = JobDir::fresh(&format!("chaos-{label}"));
        let chaos_spec = base_spec(SamplerKind::L2, chaos_dir.path(), tcp);
        let chaos = run_service(
            &chaos_spec,
            &["--kill-shard", "1", "--kill-after-chunks", "11"],
        );

        assert_eq!(
            calm, chaos,
            "{label}: recovery-from-checkpoint run drifted from the uninterrupted run"
        );
        assert_eq!(
            calm,
            run_reference(&calm_spec),
            "{label}: both drifted from reference"
        );

        // The killed shard's chain holds the pre-kill checkpoints and the
        // post-recovery ones, and actually contains delta frames (the
        // incremental path is exercised, not just full rebases).
        let chain = CheckpointStore::for_shard(chaos_dir.path(), 1)
            .load_frames()
            .unwrap();
        assert!(chain.len() >= 2, "{label}: killed shard's chain too short");
        let kinds: Vec<FrameKind> = chain
            .iter()
            .map(|frame| peek_frame(frame).expect("chain frame peeks").0)
            .collect();
        assert!(
            kinds
                .iter()
                .any(|kind| matches!(kind, FrameKind::Delta { .. })),
            "{label}: no delta frames in the killed shard's chain: {kinds:?}"
        );
    }
}

/// The turnstile kind survives a SIGKILL the same way: delta-chain
/// recovery plus replay reproduces the uninterrupted signed-stream run
/// byte for byte, and both match the in-process reference.
#[test]
fn killed_turnstile_worker_recovers_byte_identically() {
    let calm_dir = JobDir::fresh("turnstile-calm");
    let calm_spec = base_spec(SamplerKind::Turnstile, calm_dir.path(), false);
    let calm = run_service(&calm_spec, &[]);

    let chaos_dir = JobDir::fresh("turnstile-chaos");
    let chaos_spec = base_spec(SamplerKind::Turnstile, chaos_dir.path(), false);
    let chaos = run_service(
        &chaos_spec,
        &["--kill-shard", "1", "--kill-after-chunks", "11"],
    );

    assert_eq!(
        calm, chaos,
        "turnstile recovery run drifted from the uninterrupted run"
    );
    assert_eq!(
        calm,
        run_reference(&calm_spec),
        "turnstile service drifted from reference"
    );
}

/// SIGKILL the *coordinator* mid-job over pipes (off a barrier — pipe
/// workers die with it, so the crash point must not race a worker's disk
/// append); the resumed run finishes byte-identical to the uninterrupted
/// run, reconstructed from the manifest chain alone.
#[test]
fn killed_coordinator_resumes_byte_identically_over_pipes() {
    let calm_dir = JobDir::fresh("coord-calm-pipe");
    let calm_spec = base_spec(SamplerKind::L2, calm_dir.path(), false);
    let calm = run_service(&calm_spec, &[]);

    let chaos_dir = JobDir::fresh("coord-chaos-pipe");
    let chaos_spec = base_spec(SamplerKind::L2, chaos_dir.path(), false);
    // Chunk 11 is two past the epoch-3 checkpoint (chunk 9) and not a
    // barrier itself: everything after the manifest cut dies cleanly.
    run_service_until_death(&chaos_spec, &["--die-after-chunks", "11"]);
    assert_manifest_chain_healthy(chaos_dir.path());
    let resumed = resume_service(chaos_dir.path());

    assert_eq!(
        calm, resumed,
        "resumed coordinator drifted from the uninterrupted run"
    );
    assert_eq!(
        calm,
        run_reference(&calm_spec),
        "both drifted from reference"
    );
}

/// SIGKILL the coordinator over TCP *mid-barrier* — manifest written,
/// checkpoint barriers sent, zero acks collected. The listen workers
/// survive the coordinator, finish the checkpoint into their chains, and
/// the resumed coordinator re-dials them at the endpoints recorded in the
/// manifest. Still byte-identical.
#[test]
fn killed_coordinator_resumes_byte_identically_over_tcp_mid_barrier() {
    let calm_dir = JobDir::fresh("coord-calm-tcp");
    let calm_spec = base_spec(SamplerKind::L2, calm_dir.path(), true);
    let calm = run_service(&calm_spec, &[]);

    let chaos_dir = JobDir::fresh("coord-chaos-tcp");
    let chaos_spec = base_spec(SamplerKind::L2, chaos_dir.path(), true);
    // Dies inside the first checkpoint barrier at/after chunk 11 — the
    // epoch-4 barrier at chunk 12.
    run_service_until_death(
        &chaos_spec,
        &["--die-after-chunks", "11", "--die-mid-barrier", "true"],
    );
    assert_manifest_chain_healthy(chaos_dir.path());
    let resumed = resume_service(chaos_dir.path());

    assert_eq!(
        calm, resumed,
        "mid-barrier coordinator death: resumed run drifted from the uninterrupted run"
    );
    assert_eq!(
        calm,
        run_reference(&calm_spec),
        "both drifted from reference"
    );
}

/// A client query served over TCP while ingest runs returns the
/// consistent cut at its chunk boundary, and the job keeps ingesting past
/// the query barrier to a final report that still matches the reference —
/// queries never perturb sampler state.
#[test]
fn mid_ingest_query_returns_consistent_cut_without_stopping_ingest() {
    let dir = JobDir::fresh("query-plane");
    let spec = base_spec(SamplerKind::L2, dir.path(), true);

    let mut coordinator = coordinator_cmd(
        &spec,
        &[
            "--query-listen",
            "127.0.0.1:0",
            "--await-query-after-chunks",
            "15",
        ],
    )
    .stdout(Stdio::piped())
    .stderr(Stdio::inherit())
    .spawn()
    .expect("coordinator spawns");

    // First stdout line announces the query endpoint; the coordinator
    // blocks at the chunk-15 boundary until a client shows up.
    let mut stdout = BufReader::new(coordinator.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("endpoint line");
    let addr = line
        .trim()
        .strip_prefix("query-listening ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();

    let query = Command::new(service_exe())
        .arg("query")
        .arg("--connect")
        .arg(&addr)
        .output()
        .expect("query client runs");
    assert!(
        query.status.success(),
        "query client failed: {}",
        String::from_utf8_lossy(&query.stderr)
    );
    let mid = parse_report(&query.stdout);

    let mut rest = Vec::new();
    std::io::Read::read_to_end(&mut stdout, &mut rest).expect("final report");
    let status = coordinator.wait().expect("coordinator exits");
    assert!(status.success(), "coordinator failed after serving a query");
    let fin = parse_report(&rest);

    // The query saw exactly the 15-chunk cut…
    assert_eq!(mid.processed, 15_000, "query cut at the wrong boundary");
    // …ingest continued past the query barrier to the full stream…
    assert_eq!(fin.processed, spec.count as u64);
    assert!(mid.processed < fin.processed, "ingest stopped at the query");
    // …and neither the barrier nor the off-path merge perturbed state.
    assert_eq!(
        fin,
        run_reference(&spec),
        "final report after a mid-ingest query drifted from the reference"
    );
}

/// Spawns a coordinator with the query plane bound on an ephemeral port,
/// returning the child, its buffered stdout (positioned after the
/// announcement line) and the announced query endpoint.
fn spawn_query_coordinator(
    spec: &JobSpec,
    extra: &[&str],
) -> (Child, BufReader<std::process::ChildStdout>, String) {
    let mut args = vec!["--query-listen", "127.0.0.1:0"];
    args.extend_from_slice(extra);
    let mut coordinator = coordinator_cmd(spec, &args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("coordinator spawns");
    let mut stdout = BufReader::new(coordinator.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("endpoint line");
    let addr = line
        .trim()
        .strip_prefix("query-listening ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();
    (coordinator, stdout, addr)
}

/// Reads the coordinator's final report and asserts a clean exit.
fn finish_coordinator(
    mut coordinator: Child,
    mut stdout: BufReader<std::process::ChildStdout>,
) -> QueryReport {
    let mut rest = Vec::new();
    std::io::Read::read_to_end(&mut stdout, &mut rest).expect("final report");
    let status = coordinator.wait().expect("coordinator exits");
    assert!(status.success(), "coordinator failed");
    parse_report(&rest)
}

/// A client that wedges is a client's problem, not the job's: with one
/// connection that never even sends a query and another that sends a
/// consistent query but never reads its reply, ingest must run to
/// completion and the final report must stay byte-identical to the
/// undisturbed run — over both worker transports. This is the tentpole
/// contract of the dedicated-thread query plane: before it, a stalled
/// client inside the barrier loop would have hung the coordinator.
#[test]
fn stalled_query_clients_do_not_stall_ingest_on_either_transport() {
    for tcp in [false, true] {
        let label = if tcp { "tcp" } else { "pipe" };

        let calm_dir = JobDir::fresh(&format!("stall-calm-{label}"));
        let calm_spec = base_spec(SamplerKind::L2, calm_dir.path(), tcp);
        let calm = run_service(&calm_spec, &[]);

        let dir = JobDir::fresh(&format!("stall-{label}"));
        let spec = base_spec(SamplerKind::L2, dir.path(), tcp);
        // Block at the chunk-15 cut so both stalls are provably
        // mid-ingest, then let the never-reading client's consistent
        // query release the barrier.
        let (coordinator, stdout, addr) =
            spawn_query_coordinator(&spec, &["--await-query-after-chunks", "15"]);

        // Stall #1: dials the plane and never sends a byte. Its handler
        // thread parks in recv() forever.
        let silent = TcpStream::connect(&addr).expect("silent client connects");

        // Stall #2: completes the handshake, asks for a consistent cut,
        // and never reads the reply — the worst-behaved real client.
        let mut deaf = tcp_framed(TcpStream::connect(&addr).expect("deaf client connects"))
            .expect("deaf client frames");
        match deaf.recv() {
            Ok(Some(WireMessage::Hello { .. })) => {}
            other => panic!("{label}: expected the plane's hello, got {other:?}"),
        }
        deaf.send(&WireMessage::Query {
            options: QueryOptions::consistent(),
        })
        .expect("deaf client queries");

        // The job must finish with both clients still wedged.
        let fin = finish_coordinator(coordinator, stdout);
        assert_eq!(
            fin, calm,
            "{label}: stalled query clients perturbed the final report"
        );
        assert_eq!(
            fin,
            run_reference(&spec),
            "{label}: final report drifted from the reference"
        );
        drop(silent);
        drop(deaf);
    }
}

/// N clients query the plane concurrently mid-ingest — consistent and
/// cached modes mixed, plus one deliberately stalled connection — and
/// every well-behaved client gets a valid cut while the job runs to a
/// reference-identical report. Latencies land in a small JSON artifact
/// when `TPS_SMOKE_ARTIFACT_DIR` is set (CI uploads it).
#[test]
fn concurrent_queries_mid_ingest_all_get_valid_cuts() {
    let dir = JobDir::fresh("concurrent-queries");
    // Double-length job: plenty of ingest left after the awaited cut for
    // every concurrent client to land mid-stream.
    let spec = JobSpec {
        count: 60_000,
        ..base_spec(SamplerKind::L2, dir.path(), true)
    };
    let (coordinator, stdout, addr) =
        spawn_query_coordinator(&spec, &["--await-query-after-chunks", "15"]);

    // One wedged connection up front: it must inconvenience nobody.
    let stalled = TcpStream::connect(&addr).expect("stalled client connects");

    // Four well-behaved clients in parallel: two consistent (the first
    // of them releases the awaited cut), two served from the snapshot
    // cache with a generous staleness bound.
    let modes: &[&[&str]] = &[&[], &[], &["--cached", "1000"], &["--cached", "1000"]];
    let started = Instant::now();
    let clients: Vec<(usize, Child, Instant)> = modes
        .iter()
        .enumerate()
        .map(|(i, mode)| {
            let mut cmd = Command::new(service_exe());
            cmd.arg("query")
                .arg("--connect")
                .arg(&addr)
                .arg("--dial-attempts")
                .arg("10")
                .args(*mode);
            (
                i,
                cmd.stdout(Stdio::piped())
                    .stderr(Stdio::piped())
                    .spawn()
                    .expect("client spawns"),
                Instant::now(),
            )
        })
        .collect();

    let mut latencies = Vec::new();
    for (i, client, spawned) in clients {
        let output = client.wait_with_output().expect("client finishes");
        let millis = spawned.elapsed().as_millis() as u64;
        assert!(
            output.status.success(),
            "client {i} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let text = String::from_utf8(output.stdout.clone()).expect("utf8 client output");
        // First line: `query-cut epoch=E cut=C cached=B`; last line: the
        // report. The cut metadata must agree with the report's cut.
        let meta = text.lines().next().expect("metadata line").to_string();
        assert!(
            meta.starts_with("query-cut "),
            "client {i}: no metadata: {meta:?}"
        );
        let field = |key: &str| -> String {
            meta.split_whitespace()
                .find_map(|f| f.strip_prefix(&format!("{key}=")).map(str::to_string))
                .unwrap_or_else(|| panic!("client {i}: no {key} in {meta:?}"))
        };
        let cut: u64 = field("cut").parse().expect("cut parses");
        let cached: bool = field("cached").parse().expect("cached parses");
        let report = parse_report(&output.stdout);
        // The reply is pinned to a real chunk cut, and its processed
        // count is exactly that cut's routed prefix.
        assert_eq!(
            report.processed,
            (cut * spec.chunk as u64).min(spec.count as u64),
            "client {i}: processed does not match the cut metadata"
        );
        assert!(
            cut <= (spec.count / spec.chunk) as u64,
            "client {i}: cut beyond the stream"
        );
        latencies.push((i, cached, report.processed, millis));
    }

    let fin = finish_coordinator(coordinator, stdout);
    drop(stalled);
    assert_eq!(fin.processed, spec.count as u64);
    assert_eq!(
        fin,
        run_reference(&spec),
        "final report after concurrent queries drifted from the reference"
    );

    if let Ok(root) = std::env::var("TPS_SMOKE_ARTIFACT_DIR") {
        let entries: Vec<String> = latencies
            .iter()
            .map(|(i, cached, processed, millis)| {
                format!(
                    "{{\"client\":{i},\"cached\":{cached},\"processed\":{processed},\
                     \"latency_ms\":{millis}}}"
                )
            })
            .collect();
        let json = format!(
            "{{\"job_ms\":{},\"queries\":[{}]}}\n",
            started.elapsed().as_millis(),
            entries.join(",")
        );
        let _ = std::fs::create_dir_all(&root);
        std::fs::write(Path::new(&root).join("query_latency.json"), json)
            .expect("latency artifact writes");
        eprintln!("smoke: wrote query_latency.json");
    }
}
