//! End-to-end smoke test of the cross-process ingest service, driven
//! through the real binary (`CARGO_BIN_EXE_tps-service`): coordinator +
//! worker processes over pipes, on-disk checkpoint chains, deterministic
//! fault injection — asserted against the single-process reference.
//!
//! The headline contracts:
//!
//! * **Distributed = single-process**: the coordinator's merged query
//!   report equals the in-process sharded sampler's, byte for byte
//!   (snapshot checksum *and* sample outcome), for every sampler kind.
//! * **Recovery = uninterrupted**: killing a worker mid-stream (SIGKILL,
//!   no drain) and restarting it from its last checkpoint produces the
//!   identical final report — the replay-buffer protocol loses nothing
//!   and double-counts nothing.

use std::path::PathBuf;
use std::process::Command;

use tps_service::config::{JobConfig, KillSpec, SamplerKind};
use tps_service::coordinator::{run_reference, QueryReport};
use tps_service::store::CheckpointStore;
use tps_streams::codec::delta::{peek_frame, FrameKind};

fn service_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_tps-service"))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tps-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_job(kind: SamplerKind, dir: PathBuf) -> JobConfig {
    JobConfig {
        workers: 2,
        sampler: kind,
        universe: 1 << 12,
        seed: 424_242,
        count: 30_000,
        chunk: 1_000,
        checkpoint_every: 3,
        checkpoint_dir: dir,
        kill: None,
        worker_exe: None,
    }
}

/// Runs the coordinator subcommand of the real binary and parses its
/// report line.
fn run_service(cfg: &JobConfig) -> QueryReport {
    let mut cmd = Command::new(service_exe());
    cmd.arg("coordinator")
        .arg("--workers")
        .arg(cfg.workers.to_string())
        .arg("--sampler")
        .arg(cfg.sampler.as_str())
        .arg("--universe")
        .arg(cfg.universe.to_string())
        .arg("--seed")
        .arg(cfg.seed.to_string())
        .arg("--count")
        .arg(cfg.count.to_string())
        .arg("--chunk")
        .arg(cfg.chunk.to_string())
        .arg("--checkpoint-every")
        .arg(cfg.checkpoint_every.to_string())
        .arg("--checkpoint-dir")
        .arg(&cfg.checkpoint_dir)
        .arg("--worker-exe")
        .arg(service_exe());
    if let Some(kill) = cfg.kill {
        cmd.arg("--kill-shard")
            .arg(kill.shard.to_string())
            .arg("--kill-after-chunks")
            .arg(kill.after_chunks.to_string());
    }
    let output = cmd.output().expect("coordinator runs");
    assert!(
        output.status.success(),
        "coordinator failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let line = String::from_utf8(output.stdout).expect("utf8 report");
    QueryReport::parse(line.trim()).unwrap_or_else(|| panic!("unparseable report: {line:?}"))
}

#[test]
fn service_matches_single_process_reference_for_every_kind() {
    for kind in [
        SamplerKind::L2,
        SamplerKind::F0,
        SamplerKind::G,
        SamplerKind::Turnstile,
    ] {
        let dir = fresh_dir(&format!("ref-{}", kind.as_str()));
        let cfg = base_job(kind, dir.clone());
        let service = run_service(&cfg);
        let reference = run_reference(&cfg);
        assert_eq!(
            service,
            reference,
            "{}: distributed merged query drifted from the single-process reference",
            kind.as_str()
        );
        assert_eq!(service.processed, cfg.count as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn killed_worker_recovers_byte_identically() {
    // Uninterrupted run.
    let calm_dir = fresh_dir("calm");
    let calm_cfg = base_job(SamplerKind::L2, calm_dir.clone());
    let calm = run_service(&calm_cfg);

    // Same job, but shard 1's worker is SIGKILLed after chunk 11 — two
    // chunks past the epoch-3 checkpoint (chunk 9), so recovery must
    // restore the checkpoint AND replay the two uncovered chunks.
    let chaos_dir = fresh_dir("chaos");
    let chaos_cfg = JobConfig {
        checkpoint_dir: chaos_dir.clone(),
        kill: Some(KillSpec {
            shard: 1,
            after_chunks: 11,
        }),
        ..base_job(SamplerKind::L2, chaos_dir.clone())
    };
    let chaos = run_service(&chaos_cfg);

    assert_eq!(
        calm, chaos,
        "recovery-from-checkpoint run drifted from the uninterrupted run"
    );
    assert_eq!(
        calm,
        run_reference(&calm_cfg),
        "both drifted from reference"
    );

    // The killed shard's chain holds the pre-kill checkpoints and the
    // post-recovery ones, and actually contains delta frames (the
    // incremental path is exercised, not just full rebases).
    let chain = CheckpointStore::for_shard(&chaos_dir, 1)
        .load_frames()
        .unwrap();
    assert!(chain.len() >= 2, "killed shard's chain too short");
    let kinds: Vec<FrameKind> = chain
        .iter()
        .map(|frame| peek_frame(frame).expect("chain frame peeks").0)
        .collect();
    assert!(
        kinds
            .iter()
            .any(|kind| matches!(kind, FrameKind::Delta { .. })),
        "no delta frames in the killed shard's chain: {kinds:?}"
    );

    std::fs::remove_dir_all(&calm_dir).unwrap();
    std::fs::remove_dir_all(&chaos_dir).unwrap();
}

/// The turnstile kind survives a SIGKILL the same way: delta-chain
/// recovery plus replay reproduces the uninterrupted signed-stream run
/// byte for byte, and both match the in-process reference.
#[test]
fn killed_turnstile_worker_recovers_byte_identically() {
    let calm_dir = fresh_dir("turnstile-calm");
    let calm_cfg = base_job(SamplerKind::Turnstile, calm_dir.clone());
    let calm = run_service(&calm_cfg);

    let chaos_dir = fresh_dir("turnstile-chaos");
    let chaos_cfg = JobConfig {
        checkpoint_dir: chaos_dir.clone(),
        kill: Some(KillSpec {
            shard: 1,
            after_chunks: 11,
        }),
        ..base_job(SamplerKind::Turnstile, chaos_dir.clone())
    };
    let chaos = run_service(&chaos_cfg);

    assert_eq!(
        calm, chaos,
        "turnstile recovery run drifted from the uninterrupted run"
    );
    assert_eq!(
        calm,
        run_reference(&calm_cfg),
        "turnstile service drifted from reference"
    );

    std::fs::remove_dir_all(&calm_dir).unwrap();
    std::fs::remove_dir_all(&chaos_dir).unwrap();
}
