//! The coordinator: attaches one worker per shard over the job's
//! transport (spawned pipe children, self-spawned loopback listeners, or
//! externally-managed TCP endpoints), routes the stream with the exact
//! in-process routing function, drives checkpoint and query barriers,
//! recovers killed workers from their chains, persists its *own* state to
//! a manifest chain so a killed coordinator resumes, serves consistent-cut
//! queries to clients while ingest runs, and answers the final query by
//! restore-and-merge — byte-identical to a single-process
//! [`ShardedSampler`](tps_core::sharded::ShardedSampler) over the same
//! stream.
//!
//! ## Replay buffers
//!
//! Every chunk sent to a worker is retained, tagged with the epoch of the
//! last barrier *sent* before it. A chunk tagged `t` is covered by any
//! checkpoint with epoch `> t`:
//!
//! * on a checkpoint **ack** at epoch `E` (the frame is on disk), chunks
//!   tagged `< E` are dropped;
//! * on a worker **restart** announcing recovered epoch `e`, chunks
//!   tagged `≥ e` are re-sent in order (tagged `< e` are inside the
//!   recovered state and are dropped).
//!
//! The restored state is exactly the checkpoint-`e` cut, so re-ingesting
//! exactly the uncovered chunks reproduces the uninterrupted shard state
//! byte for byte — regardless of how much post-checkpoint work the dead
//! process had already absorbed (that work died with it).
//!
//! ## Coordinator durability
//!
//! The same argument is applied to the coordinator itself: before every
//! checkpoint barrier it appends a [`Manifest`] — spec, barrier epoch,
//! chunks routed, per-shard endpoints and (untrimmed) replay buffers — to
//! its own chain, fsynced *before* any worker is told to checkpoint (see
//! `manifest.rs` for the case analysis). `resume_job` reconstructs the
//! job from that chain alone: re-handshake the workers, re-send the
//! buffered chunks their recovered epochs don't cover, and re-route the
//! deterministic stream from the recorded chunk cut.

use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tps_core::sharded::{
    hash_route, ShardedSampler, ShardedSamplerBuilder, ShardingStrategy, MERGE_SEED_SALT,
};
use tps_random::Xoshiro256;
use tps_streams::codec::delta::IncrementalCheckpointer;
use tps_streams::codec::{checksum, Restore, Snapshot};
use tps_streams::wire::transport::{tcp_connect, Connection, FramedConnection, TcpConnection};
use tps_streams::wire::{check_hello, BarrierKind, IngestPayload, WireError, WireMessage};
use tps_streams::{MergeableSampler, SampleOutcome, StreamUpdate, UpdateSampler};

use crate::config::{
    job_signed_stream, job_stream, make_f0, make_g, make_l2, make_turnstile, FaultPlan, JobSpec,
    QueryPlan, SamplerKind, TransportKind,
};
use crate::manifest::{peek_spec, Manifest, ShardState};
use crate::query::{PublishedCut, QueryPlane};
use crate::store::CheckpointStore;

fn wire_to_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The answer of a job's final consistent-cut query, printed as one line
/// (`processed=… merged_fnv=… sample=…`). Two runs whose lines are equal
/// produced byte-identical merged snapshots — this is the currency of the
/// smoke test's recovery and reference comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// Stream items routed (the logical stream length, not counting
    /// recovery re-sends; for a mid-ingest query, the length of the
    /// routed prefix at the query's consistent cut).
    pub processed: u64,
    /// FNV-1a 64 over the merged sampler's sealed snapshot bytes.
    pub merged_fnv: u64,
    /// The merged sampler's sample outcome, drawn after the snapshot.
    pub sample: String,
}

impl std::fmt::Display for QueryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "processed={} merged_fnv={:016x} sample={}",
            self.processed, self.merged_fnv, self.sample
        )
    }
}

impl QueryReport {
    /// Parses a line printed by [`QueryReport`]'s `Display` impl.
    pub fn parse(line: &str) -> Option<Self> {
        let mut processed = None;
        let mut merged_fnv = None;
        let mut sample = None;
        for field in line.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "processed" => processed = value.parse().ok(),
                "merged_fnv" => merged_fnv = u64::from_str_radix(value, 16).ok(),
                "sample" => sample = Some(value.to_string()),
                _ => return None,
            }
        }
        Some(Self {
            processed: processed?,
            merged_fnv: merged_fnv?,
            sample: sample?,
        })
    }
}

fn describe(outcome: SampleOutcome) -> String {
    match outcome {
        SampleOutcome::Index(i) => format!("index:{i}"),
        SampleOutcome::Empty => "empty".to_string(),
        SampleOutcome::Fail => "fail".to_string(),
    }
}

/// One attached worker plus its replay buffer.
struct WorkerHandle<U> {
    shard: usize,
    conn: Box<dyn Connection>,
    /// The worker process, when this coordinator spawned it (pipe workers
    /// and self-spawned loopback listeners). Externally-managed TCP
    /// workers — including listeners inherited from a dead coordinator —
    /// have no child handle.
    child: Option<Child>,
    /// The worker's TCP endpoint, recorded in the manifest so a resumed
    /// coordinator can find the still-running listener.
    endpoint: Option<String>,
    /// Chunks sent since the last acked checkpoint, each tagged with the
    /// epoch of the last barrier sent before it.
    replay: Vec<(u64, Vec<U>)>,
    /// The last checkpoint epoch this worker acked.
    acked_epoch: u64,
}

impl<U: IngestPayload> WorkerHandle<U> {
    fn send(&mut self, msg: &WireMessage) -> io::Result<()> {
        self.conn.send(msg)
    }

    fn recv(&mut self) -> io::Result<WireMessage> {
        self.conn.recv().map_err(wire_to_io)?.ok_or_else(|| {
            invalid(format!(
                "worker {} closed its connection mid-conversation",
                self.shard
            ))
        })
    }

    /// Reads and verifies the worker's `Hello` (protocol version and
    /// capabilities included — see [`check_hello`]), returning the epoch
    /// it recovered to (`0` = fresh).
    fn handshake(&mut self) -> io::Result<u64> {
        let hello = self.recv()?;
        let (said, resume_epoch) = check_hello(&hello, U::REQUIRED_CAPS)
            .map_err(|e| invalid(format!("worker {}: {e}", self.shard)))?;
        if said != self.shard as u64 {
            return Err(invalid(format!(
                "worker {} announced shard {said}",
                self.shard
            )));
        }
        Ok(resume_epoch)
    }

    /// Reads the barrier ack for `epoch`, returning its snapshot field.
    fn expect_ack(&mut self, epoch: u64) -> io::Result<Option<Vec<u8>>> {
        match self.recv()? {
            WireMessage::BarrierAck {
                shard,
                epoch: acked,
                snapshot,
            } if shard == self.shard as u64 && acked == epoch => Ok(snapshot),
            other => Err(invalid(format!(
                "worker {}: expected ack for epoch {epoch}, got {other:?}",
                self.shard
            ))),
        }
    }
}

fn worker_command(spec: &JobSpec, exe: &Path, shard: usize) -> Command {
    let mut cmd = Command::new(exe);
    cmd.arg("worker")
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--sampler")
        .arg(spec.sampler.as_str())
        .arg("--universe")
        .arg(spec.universe.to_string())
        .arg("--seed")
        .arg(spec.seed.to_string())
        .arg("--checkpoint-dir")
        .arg(&spec.checkpoint_dir);
    cmd
}

/// Spawns a pipe-transport worker and completes its handshake.
fn spawn_pipe_worker<U: IngestPayload>(
    spec: &JobSpec,
    exe: &Path,
    shard: usize,
) -> io::Result<(WorkerHandle<U>, u64)> {
    let mut child = worker_command(spec, exe, shard)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let input = child.stdin.take().expect("piped stdin");
    let output = child.stdout.take().expect("piped stdout");
    let mut handle = WorkerHandle {
        shard,
        conn: Box::new(FramedConnection::new(output, input)),
        child: Some(child),
        endpoint: None,
        replay: Vec::new(),
        acked_epoch: 0,
    };
    let resume_epoch = handle.handshake()?;
    Ok((handle, resume_epoch))
}

/// Spawns a `--listen` worker on a loopback ephemeral port, reads the
/// `listening <addr>` announcement from its stdout, dials it, and
/// completes the handshake.
fn spawn_listen_worker<U: IngestPayload>(
    spec: &JobSpec,
    exe: &Path,
    shard: usize,
) -> io::Result<(WorkerHandle<U>, u64)> {
    let mut child = worker_command(spec, exe, shard)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let endpoint = line
        .trim()
        .strip_prefix("listening ")
        .ok_or_else(|| invalid(format!("worker {shard} announced {line:?}")))?
        .to_string();
    let conn = connect_retry(&endpoint, 250)?;
    let mut handle = WorkerHandle {
        shard,
        conn: Box::new(conn),
        child: Some(child),
        endpoint: Some(endpoint),
        replay: Vec::new(),
        acked_epoch: 0,
    };
    let resume_epoch = handle.handshake()?;
    Ok((handle, resume_epoch))
}

/// Dials an externally-managed (or inherited) listen worker.
fn connect_worker<U: IngestPayload>(
    endpoint: &str,
    shard: usize,
    attempts: u32,
) -> io::Result<(WorkerHandle<U>, u64)> {
    let conn = connect_retry(endpoint, attempts)?;
    let mut handle = WorkerHandle {
        shard,
        conn: Box::new(conn),
        child: None,
        endpoint: Some(endpoint.to_string()),
        replay: Vec::new(),
        acked_epoch: 0,
    };
    let resume_epoch = handle.handshake()?;
    Ok((handle, resume_epoch))
}

fn connect_retry(endpoint: &str, attempts: u32) -> io::Result<TcpConnection> {
    let mut last = None;
    for _ in 0..attempts {
        match tcp_connect(endpoint) {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    Err(last.unwrap_or_else(|| invalid(format!("cannot reach worker at {endpoint}"))))
}

/// Attaches the worker for `shard` on a *fresh* job.
fn attach_worker<U: IngestPayload>(
    spec: &JobSpec,
    exe: &Path,
    shard: usize,
) -> io::Result<(WorkerHandle<U>, u64)> {
    match &spec.transport {
        TransportKind::Pipe => spawn_pipe_worker(spec, exe, shard),
        TransportKind::Tcp { endpoints } if endpoints.is_empty() => {
            spawn_listen_worker(spec, exe, shard)
        }
        TransportKind::Tcp { endpoints } => connect_worker(&endpoints[shard], shard, 250),
    }
}

/// Re-attaches the worker for `shard` on a *resumed* job: pipe workers
/// died with the old coordinator and are respawned; listen workers are
/// still running and are re-dialed at their recorded endpoint (with a
/// respawn fallback for self-spawned loopback workers that died too).
fn reattach_worker<U: IngestPayload>(
    spec: &JobSpec,
    exe: &Path,
    shard: usize,
    recorded: Option<&String>,
) -> io::Result<(WorkerHandle<U>, u64)> {
    match &spec.transport {
        TransportKind::Pipe => spawn_pipe_worker(spec, exe, shard),
        TransportKind::Tcp { endpoints } => {
            let self_spawned = endpoints.is_empty();
            if let Some(endpoint) = recorded {
                match connect_worker(endpoint, shard, 25) {
                    Ok(attached) => Ok(attached),
                    Err(e) if self_spawned => {
                        eprintln!(
                            "coordinator: worker {shard} gone from {endpoint} ({e}); respawning"
                        );
                        spawn_listen_worker(spec, exe, shard)
                    }
                    Err(e) => Err(e),
                }
            } else if self_spawned {
                spawn_listen_worker(spec, exe, shard)
            } else {
                connect_worker(&endpoints[shard], shard, 250)
            }
        }
    }
}

/// Kills the worker outright (SIGKILL — no drain, simulating a crash) and
/// brings up a replacement: the fresh process recovers from its on-disk
/// chain, and the coordinator re-sends the buffered chunks the recovered
/// checkpoint does not cover.
fn restart_worker<U: IngestPayload>(
    spec: &JobSpec,
    exe: &Path,
    handle: &mut WorkerHandle<U>,
) -> io::Result<()> {
    let Some(child) = handle.child.as_mut() else {
        return Err(invalid(format!(
            "cannot kill worker {}: externally managed (no child process)",
            handle.shard
        )));
    };
    child.kill()?;
    child.wait()?;
    let (mut fresh, resume_epoch) = match &spec.transport {
        TransportKind::Pipe => spawn_pipe_worker(spec, exe, handle.shard)?,
        TransportKind::Tcp { .. } => spawn_listen_worker(spec, exe, handle.shard)?,
    };
    fresh.acked_epoch = resume_epoch;
    let replay = std::mem::take(&mut handle.replay);
    for (tag, items) in replay {
        if tag >= resume_epoch {
            fresh.send(&U::into_ingest(items.clone()))?;
            fresh.replay.push((tag, items));
        }
    }
    // Swap the replacement into the slot; the dead process's handles drop.
    std::mem::swap(handle, &mut fresh);
    Ok(())
}

/// Runs the query barrier at `epoch`, returning the consistent-cut
/// snapshots in shard order.
fn query_barrier<U: IngestPayload>(
    workers: &mut [WorkerHandle<U>],
    epoch: u64,
) -> io::Result<Vec<Vec<u8>>> {
    for worker in workers.iter_mut() {
        worker.send(&WireMessage::Barrier {
            epoch,
            kind: BarrierKind::Query,
        })?;
    }
    let mut snapshots = Vec::with_capacity(workers.len());
    for worker in workers.iter_mut() {
        let snapshot = worker.expect_ack(epoch)?.ok_or_else(|| {
            invalid(format!(
                "worker {}: query ack missing snapshot",
                worker.shard
            ))
        })?;
        snapshots.push(snapshot);
    }
    Ok(snapshots)
}

/// Restores the per-shard snapshots and fold-merges them in shard order,
/// with merge coins from `seed ^ MERGE_SEED_SALT` — the exact recipe of an
/// in-process sharded sampler's first merged query.
fn merge_snapshots<S, U>(
    snapshots: &[Vec<u8>],
    seed: u64,
    processed: u64,
) -> io::Result<QueryReport>
where
    S: MergeableSampler + UpdateSampler<U> + Snapshot + Restore,
    U: StreamUpdate,
{
    let mut rng = Xoshiro256::seed_from_u64(seed ^ MERGE_SEED_SALT);
    let mut shards = snapshots.iter().enumerate().map(|(index, bytes)| {
        S::restore(bytes)
            .map_err(|e| invalid(format!("shard {index} snapshot does not restore: {e}")))
    });
    let mut merged = shards.next().expect("at least one shard")?;
    for shard in shards {
        let shard = shard?;
        if !merged.merge_compatible(&shard) {
            return Err(invalid("shard snapshots are not merge-compatible".into()));
        }
        merged = merged.merge(shard, &mut rng);
    }
    let merged_bytes = merged.snapshot();
    Ok(QueryReport {
        processed,
        merged_fnv: checksum(&merged_bytes),
        sample: describe(merged.draw()),
    })
}

pub(crate) fn merge_report(
    kind: SamplerKind,
    snapshots: &[Vec<u8>],
    seed: u64,
    processed: u64,
) -> io::Result<QueryReport> {
    use crate::config::HuberSampler;
    use tps_core::f0::TrulyPerfectF0Sampler;
    use tps_core::lp::TrulyPerfectLpSampler;
    use tps_core::turnstile::StrictTurnstileF0Sampler;
    use tps_streams::{Item, SignedUpdate};
    match kind {
        SamplerKind::L2 => {
            merge_snapshots::<TrulyPerfectLpSampler, Item>(snapshots, seed, processed)
        }
        SamplerKind::F0 => {
            merge_snapshots::<TrulyPerfectF0Sampler, Item>(snapshots, seed, processed)
        }
        SamplerKind::G => merge_snapshots::<HuberSampler, Item>(snapshots, seed, processed),
        SamplerKind::Turnstile => {
            merge_snapshots::<StrictTurnstileF0Sampler, SignedUpdate>(snapshots, seed, processed)
        }
    }
}

/// The coordinator's own durable chain: manifest snapshots checkpointed
/// through the same delta machinery the workers use, with the manifest
/// sequence number as the chain's epoch counter (distinct from job
/// epochs — the chain cares about "which manifest is newest", not about
/// barrier numbering).
struct Durability {
    store: CheckpointStore,
    writer: IncrementalCheckpointer,
    seq: u64,
}

impl Durability {
    fn persist<U: IngestPayload>(&mut self, manifest: &Manifest<U>) -> io::Result<()> {
        self.seq += 1;
        let frame = self.writer.checkpoint_bytes(manifest.encode(), self.seq);
        self.store.append_frame(frame.bytes())?;
        if !frame.is_delta() {
            self.store.compact()?;
        }
        Ok(())
    }
}

fn persist_manifest<U: IngestPayload>(
    durability: &mut Durability,
    spec: &JobSpec,
    epoch: u64,
    chunks_routed: u64,
    workers: &[WorkerHandle<U>],
) -> io::Result<()> {
    let manifest = Manifest {
        spec: spec.clone(),
        epoch,
        chunks_routed,
        shards: workers
            .iter()
            .map(|worker| ShardState {
                acked_epoch: worker.acked_epoch,
                endpoint: worker.endpoint.clone(),
                replay: worker.replay.clone(),
            })
            .collect(),
    };
    durability.persist(&manifest)
}

/// The routed stream-prefix length at a chunk cut (the final chunk may
/// be short, so the product is clamped to the actual stream length).
fn routed_prefix(stream_len: usize, chunks_routed: u64, chunk: usize) -> u64 {
    (chunks_routed * chunk as u64).min(stream_len as u64)
}

/// The kind-generic job body: attach workers, route the stream,
/// checkpoint (manifest-before-barrier), inject faults, serve mid-ingest
/// queries, run the final query barrier, shut down. Returns the final
/// consistent-cut snapshots in shard order.
fn drive_job<U: IngestPayload>(
    spec: &JobSpec,
    stream: &[U],
    fault: &FaultPlan,
    query: &QueryPlan,
    resume: Option<Manifest<U>>,
) -> io::Result<Vec<Vec<u8>>> {
    let exe = match &spec.worker_exe {
        Some(path) => path.clone(),
        None => std::env::current_exe()?,
    };
    std::fs::create_dir_all(&spec.checkpoint_dir)?;

    let store = CheckpointStore::for_coordinator(&spec.checkpoint_dir);
    let (mut durability, shard_states, start_epoch, start_chunks) = match &resume {
        None => {
            if store.recover()?.is_some() {
                return Err(invalid(format!(
                    "coordinator chain {} already exists — resume the job or clear the directory",
                    store.path().display()
                )));
            }
            (
                Durability {
                    store,
                    writer: IncrementalCheckpointer::new(),
                    seq: 0,
                },
                None,
                0,
                0,
            )
        }
        Some(manifest) => {
            let chain = store
                .recover()?
                .ok_or_else(|| invalid("no coordinator chain to resume from".into()))?;
            let seq = chain.epoch;
            (
                Durability {
                    store,
                    writer: IncrementalCheckpointer::resume(
                        chain.epoch,
                        chain.snapshot,
                        chain.deltas_since_base,
                    ),
                    seq,
                },
                Some(manifest.shards.clone()),
                manifest.epoch,
                manifest.chunks_routed,
            )
        }
    };

    let mut workers: Vec<WorkerHandle<U>> = Vec::with_capacity(spec.workers);
    match shard_states {
        None => {
            for shard in 0..spec.workers {
                let (handle, resume_epoch) = attach_worker(spec, &exe, shard)?;
                if resume_epoch != 0 {
                    return Err(invalid(format!(
                        "worker {shard} recovered epoch {resume_epoch} on a fresh job — \
                         stale checkpoint directory?"
                    )));
                }
                workers.push(handle);
            }
        }
        Some(states) => {
            if states.len() != spec.workers {
                return Err(invalid(format!(
                    "manifest records {} shards for a {}-worker job",
                    states.len(),
                    spec.workers
                )));
            }
            for (shard, state) in states.into_iter().enumerate() {
                let (mut handle, resume_epoch) =
                    reattach_worker(spec, &exe, shard, state.endpoint.as_ref())?;
                handle.acked_epoch = resume_epoch;
                // Re-send every buffered chunk the recovered checkpoint
                // does not cover, exactly like a worker restart.
                for (tag, items) in state.replay {
                    if tag >= resume_epoch {
                        handle.send(&U::into_ingest(items.clone()))?;
                        handle.replay.push((tag, items));
                    }
                }
                workers.push(handle);
            }
        }
    }

    // The job is durable from the first moment it could need resuming: a
    // manifest at the zero cut covers death before the first checkpoint.
    if resume.is_none() {
        persist_manifest(&mut durability, spec, 0, 0, &workers)?;
    }

    // The non-stalling query plane: a dedicated accept thread plus
    // detached handler threads serve clients from the published-cut
    // slot, so a wedged client can never hold up a barrier (`query.rs`).
    let plane = match &query.listen {
        Some(addr) => Some(QueryPlane::start(addr, spec.sampler, spec.seed)?),
        None => None,
    };

    let mut epoch = start_epoch; // last barrier epoch sent
    let mut chunks_routed = start_chunks;
    let mut kill_pending = fault.kill;
    for (index, chunk) in stream.chunks(spec.chunk).enumerate() {
        if (index as u64) < start_chunks {
            continue; // routed (and manifest-covered) before the resume cut
        }
        let mut routed: Vec<Vec<U>> = vec![Vec::new(); spec.workers];
        for &update in chunk {
            routed[hash_route(update.route_key(), spec.workers)].push(update);
        }
        for (worker, updates) in workers.iter_mut().zip(routed) {
            if updates.is_empty() {
                continue;
            }
            worker.send(&U::into_ingest(updates.clone()))?;
            worker.replay.push((epoch, updates));
        }
        chunks_routed += 1;

        if let Some(kill) = kill_pending {
            if chunks_routed >= kill.after_chunks {
                if kill.shard >= spec.workers {
                    return Err(invalid(format!("no shard {} to kill", kill.shard)));
                }
                restart_worker(spec, &exe, &mut workers[kill.shard])?;
                kill_pending = None;
            }
        }
        if let Some(die) = fault.die {
            if !die.mid_barrier && chunks_routed >= die.after_chunks {
                // Simulated coordinator SIGKILL: no drain, no cleanup, no
                // manifest write — whatever is durable is all that's left.
                std::process::abort();
            }
        }

        if chunks_routed.is_multiple_of(spec.checkpoint_every) {
            epoch += 1;
            // Durability order: the manifest recording this barrier's cut
            // is on disk before any worker is told to checkpoint.
            persist_manifest(&mut durability, spec, epoch, chunks_routed, &workers)?;
            // With a live query plane, checkpoint barriers *publish*: the
            // same barrier round that makes the cut durable also hands
            // its snapshots to the snapshot cache.
            let kind = if plane.is_some() {
                BarrierKind::CheckpointPublish
            } else {
                BarrierKind::Checkpoint
            };
            for worker in workers.iter_mut() {
                worker.send(&WireMessage::Barrier { epoch, kind })?;
            }
            if let Some(die) = fault.die {
                if die.mid_barrier && chunks_routed >= die.after_chunks {
                    // The widest crash window: barriers in flight, zero
                    // acks collected.
                    std::process::abort();
                }
            }
            let mut snapshots = Vec::with_capacity(workers.len());
            for worker in workers.iter_mut() {
                match (kind, worker.expect_ack(epoch)?) {
                    (BarrierKind::CheckpointPublish, Some(bytes)) => snapshots.push(bytes),
                    (BarrierKind::Checkpoint, None) => {}
                    (_, got) => {
                        return Err(invalid(format!(
                            "worker {}: {kind:?} ack carried the wrong payload \
                             (snapshot present: {})",
                            worker.shard,
                            got.is_some()
                        )))
                    }
                }
                worker.replay.retain(|&(tag, _)| tag >= epoch);
                worker.acked_epoch = epoch;
            }
            if let Some(plane) = &plane {
                plane.publish(PublishedCut {
                    epoch,
                    chunks_routed,
                    processed: routed_prefix(stream.len(), chunks_routed, spec.chunk),
                    snapshots,
                });
            }
        }

        if let Some(plane) = &plane {
            // Consistent-cut demands wait in the plane's channel; one
            // query barrier per chunk boundary serves all of them with
            // the same published cut. The barrier never touches a client
            // socket — replies happen in the handlers' own threads.
            let pending = match query.await_after_chunks {
                // Deterministic test hook: block at exactly this cut
                // until a consistent query lands, however slow the client
                // is to dial in.
                Some(cut) if chunks_routed == cut => plane.wait_for_request()?,
                Some(cut) if chunks_routed < cut => Vec::new(),
                _ => plane.take_requests(),
            };
            if !pending.is_empty() {
                epoch += 1;
                let snapshots = query_barrier(&mut workers, epoch)?;
                let published = plane.publish(PublishedCut {
                    epoch,
                    chunks_routed,
                    processed: routed_prefix(stream.len(), chunks_routed, spec.chunk),
                    snapshots,
                });
                for request in pending {
                    request.fulfil(&published);
                }
            }
        }
    }

    epoch += 1;
    let snapshots = query_barrier(&mut workers, epoch)?;
    if let Some(plane) = plane {
        // Publish the final cut and answer any last consistent-cut
        // demands with it; then tear the plane down. Handler threads are
        // detached, so however wedged a client is, the job still ends —
        // the plane's drop rejects anything that arrives too late.
        let published = plane.publish(PublishedCut {
            epoch,
            chunks_routed,
            processed: stream.len() as u64,
            snapshots: snapshots.clone(),
        });
        for request in plane.take_requests() {
            request.fulfil(&published);
        }
        plane.finish();
    }
    for worker in workers.iter_mut() {
        worker.send(&WireMessage::Shutdown)?;
    }
    for worker in workers.iter_mut() {
        if let Some(child) = worker.child.as_mut() {
            child.wait()?;
        }
    }
    Ok(snapshots)
}

/// Runs a job from scratch: attach workers, stream, checkpoint (with the
/// coordinator's own manifest chain), inject the fault plan, serve the
/// query plan, merge, shut down.
pub fn run_job(spec: &JobSpec, fault: &FaultPlan, query: &QueryPlan) -> io::Result<QueryReport> {
    spec.validate().map_err(invalid)?;
    let (snapshots, processed) = if spec.sampler.is_turnstile() {
        let stream = job_signed_stream(spec.universe, spec.count, spec.seed);
        (
            drive_job(spec, &stream, fault, query, None)?,
            stream.len() as u64,
        )
    } else {
        let stream = job_stream(spec.universe, spec.count, spec.seed);
        (
            drive_job(spec, &stream, fault, query, None)?,
            stream.len() as u64,
        )
    };
    merge_report(spec.sampler, &snapshots, spec.seed, processed)
}

/// Resumes a job from the coordinator chain in `checkpoint_dir`: the
/// manifest *is* the config snapshot, so nothing else is needed. The
/// recorded spec's `worker_exe` can be overridden (tests relocate
/// binaries). The resumed run never re-injects faults — fault plans are
/// per-invocation, and the invocation that planned them is dead.
pub fn resume_job(
    checkpoint_dir: &Path,
    worker_exe: Option<PathBuf>,
    query: &QueryPlan,
) -> io::Result<QueryReport> {
    let store = CheckpointStore::for_coordinator(checkpoint_dir);
    let chain = store.recover()?.ok_or_else(|| {
        invalid(format!(
            "no coordinator chain at {} to resume from",
            store.path().display()
        ))
    })?;
    let mut spec = peek_spec(&chain.snapshot)
        .map_err(|e| invalid(format!("manifest does not decode: {e}")))?;
    if let Some(exe) = worker_exe {
        spec.worker_exe = Some(exe);
    }
    // Chains move with their directory; trust the caller's location over
    // the recorded absolute path.
    spec.checkpoint_dir = checkpoint_dir.to_path_buf();

    fn resumed<U: IngestPayload>(
        spec: &JobSpec,
        stream: &[U],
        chain_snapshot: &[u8],
        query: &QueryPlan,
    ) -> io::Result<Vec<Vec<u8>>> {
        let mut manifest = Manifest::<U>::decode(chain_snapshot)
            .map_err(|e| invalid(format!("manifest does not decode: {e}")))?;
        manifest.spec = spec.clone();
        drive_job(spec, stream, &FaultPlan::default(), query, Some(manifest))
    }

    let (snapshots, processed) = if spec.sampler.is_turnstile() {
        let stream = job_signed_stream(spec.universe, spec.count, spec.seed);
        (
            resumed(&spec, &stream, &chain.snapshot, query)?,
            stream.len() as u64,
        )
    } else {
        let stream = job_stream(spec.universe, spec.count, spec.seed);
        (
            resumed(&spec, &stream, &chain.snapshot, query)?,
            stream.len() as u64,
        )
    };
    merge_report(spec.sampler, &snapshots, spec.seed, processed)
}

/// The single-process reference: an in-process sharded sampler over the
/// identical stream, queried once. Its report must equal the service's —
/// that equality is the distributed correctness gate.
pub fn run_reference(spec: &JobSpec) -> QueryReport {
    fn typed<S, U>(
        spec: &JobSpec,
        stream: &[U],
        build: impl FnOnce(ShardedSamplerBuilder) -> ShardedSampler<S, U>,
    ) -> QueryReport
    where
        S: MergeableSampler + UpdateSampler<U> + Clone + Send + Snapshot + Restore + 'static,
        U: StreamUpdate,
    {
        let mut sampler = build(
            ShardedSamplerBuilder::new(spec.workers)
                .strategy(ShardingStrategy::Hash)
                .seed(spec.seed),
        );
        sampler.ingest_batch(stream);
        let mut merged = sampler.merged();
        let merged_bytes = merged.snapshot();
        QueryReport {
            processed: stream.len() as u64,
            merged_fnv: checksum(&merged_bytes),
            sample: describe(merged.draw()),
        }
    }
    match spec.sampler {
        SamplerKind::L2 => typed(
            spec,
            &job_stream(spec.universe, spec.count, spec.seed),
            |b| b.build(|shard| make_l2(spec.universe, spec.seed, shard)),
        ),
        SamplerKind::F0 => typed(
            spec,
            &job_stream(spec.universe, spec.count, spec.seed),
            |b| b.build(|shard| make_f0(spec.universe, spec.seed, shard)),
        ),
        SamplerKind::G => typed(
            spec,
            &job_stream(spec.universe, spec.count, spec.seed),
            |b| b.build(|shard| make_g(spec.universe, spec.seed, shard)),
        ),
        SamplerKind::Turnstile => typed(
            spec,
            &job_signed_stream(spec.universe, spec.count, spec.seed),
            |b| b.build_turnstile(|shard| make_turnstile(spec.universe, spec.seed, shard)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceBuilder;

    #[test]
    fn report_lines_round_trip() {
        let report = QueryReport {
            processed: 123_456,
            merged_fnv: 0xDEAD_BEEF_0BAD_F00D,
            sample: "index:42".to_string(),
        };
        assert_eq!(QueryReport::parse(&report.to_string()), Some(report));
        assert_eq!(QueryReport::parse("nonsense"), None);
    }

    #[test]
    fn reference_is_deterministic_per_seed() {
        let spec = ServiceBuilder::new(SamplerKind::L2, 3)
            .universe(1 << 12)
            .seed(5)
            .count(30_000)
            .chunk(1_000)
            .checkpoint_every(4)
            .checkpoint_dir(std::env::temp_dir())
            .build()
            .unwrap();
        let a = run_reference(&spec);
        let b = run_reference(&spec);
        assert_eq!(a, b);
        assert_eq!(a.processed, 30_000);
        let other = JobSpec { seed: 6, ..spec };
        assert_ne!(a.merged_fnv, run_reference(&other).merged_fnv);
    }
}
