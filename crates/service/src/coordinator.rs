//! The coordinator: spawns one worker process per shard, routes the
//! stream with the exact in-process routing function, drives checkpoint
//! and query barriers, recovers killed workers from their chains, and
//! answers the final query by restore-and-merge — byte-identical to a
//! single-process [`ShardedSampler`](tps_core::sharded::ShardedSampler)
//! over the same stream.
//!
//! ## Replay buffers
//!
//! Every chunk sent to a worker is retained, tagged with the epoch of the
//! last barrier *sent* before it. A chunk tagged `t` is covered by any
//! checkpoint with epoch `> t`:
//!
//! * on a checkpoint **ack** at epoch `E` (the frame is on disk), chunks
//!   tagged `< E` are dropped;
//! * on a worker **restart** announcing recovered epoch `e`, chunks
//!   tagged `≥ e` are re-sent in order (tagged `< e` are inside the
//!   recovered state and are dropped).
//!
//! The restored state is exactly the checkpoint-`e` cut, so re-ingesting
//! exactly the uncovered chunks reproduces the uninterrupted shard state
//! byte for byte — regardless of how much post-checkpoint work the dead
//! process had already absorbed (that work died with it).

use std::io::{self, BufReader, BufWriter};
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use tps_core::sharded::{
    hash_route, ShardedSampler, ShardedSamplerBuilder, ShardingStrategy, MERGE_SEED_SALT,
};
use tps_random::Xoshiro256;
use tps_streams::codec::{checksum, Restore, Snapshot};
use tps_streams::wire::{
    read_message, write_message, BarrierKind, IngestPayload, WireError, WireMessage,
};
use tps_streams::{MergeableSampler, SampleOutcome, StreamUpdate, UpdateSampler};

use crate::config::{
    job_signed_stream, job_stream, make_f0, make_g, make_l2, make_turnstile, JobConfig, SamplerKind,
};

fn wire_to_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(e) => e,
        WireError::Codec(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The answer of a job's final consistent-cut query, printed as one line
/// (`processed=… merged_fnv=… sample=…`). Two runs whose lines are equal
/// produced byte-identical merged snapshots — this is the currency of the
/// smoke test's recovery and reference comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// Stream items routed (the logical stream length, not counting
    /// recovery re-sends).
    pub processed: u64,
    /// FNV-1a 64 over the merged sampler's sealed snapshot bytes.
    pub merged_fnv: u64,
    /// The merged sampler's sample outcome, drawn after the snapshot.
    pub sample: String,
}

impl std::fmt::Display for QueryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "processed={} merged_fnv={:016x} sample={}",
            self.processed, self.merged_fnv, self.sample
        )
    }
}

impl QueryReport {
    /// Parses a line printed by [`QueryReport`]'s `Display` impl.
    pub fn parse(line: &str) -> Option<Self> {
        let mut processed = None;
        let mut merged_fnv = None;
        let mut sample = None;
        for field in line.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "processed" => processed = value.parse().ok(),
                "merged_fnv" => merged_fnv = u64::from_str_radix(value, 16).ok(),
                "sample" => sample = Some(value.to_string()),
                _ => return None,
            }
        }
        Some(Self {
            processed: processed?,
            merged_fnv: merged_fnv?,
            sample: sample?,
        })
    }
}

fn describe(outcome: SampleOutcome) -> String {
    match outcome {
        SampleOutcome::Index(i) => format!("index:{i}"),
        SampleOutcome::Empty => "empty".to_string(),
        SampleOutcome::Fail => "fail".to_string(),
    }
}

/// One live worker process plus its replay buffer.
struct WorkerHandle<U> {
    shard: usize,
    child: Child,
    input: BufWriter<ChildStdin>,
    output: BufReader<ChildStdout>,
    /// Chunks sent since the last acked checkpoint, each tagged with the
    /// epoch of the last barrier sent before it.
    replay: Vec<(u64, Vec<U>)>,
}

impl<U: IngestPayload> WorkerHandle<U> {
    fn send(&mut self, msg: &WireMessage) -> io::Result<()> {
        write_message(&mut self.input, msg)
    }

    fn recv(&mut self) -> io::Result<WireMessage> {
        read_message(&mut self.output)
            .map_err(wire_to_io)?
            .ok_or_else(|| {
                invalid(format!(
                    "worker {} closed its pipe mid-conversation",
                    self.shard
                ))
            })
    }

    /// Reads the barrier ack for `epoch`, returning its snapshot field.
    fn expect_ack(&mut self, epoch: u64) -> io::Result<Option<Vec<u8>>> {
        match self.recv()? {
            WireMessage::BarrierAck {
                shard,
                epoch: acked,
                snapshot,
            } if shard == self.shard as u64 && acked == epoch => Ok(snapshot),
            other => Err(invalid(format!(
                "worker {}: expected ack for epoch {epoch}, got {other:?}",
                self.shard
            ))),
        }
    }
}

/// Spawns the worker process for `shard` and completes its handshake,
/// returning the handle and the epoch it recovered to (`0` = fresh).
fn spawn_worker<U: IngestPayload>(
    cfg: &JobConfig,
    exe: &Path,
    shard: usize,
) -> io::Result<(WorkerHandle<U>, u64)> {
    let mut child = Command::new(exe)
        .arg("worker")
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--sampler")
        .arg(cfg.sampler.as_str())
        .arg("--universe")
        .arg(cfg.universe.to_string())
        .arg("--seed")
        .arg(cfg.seed.to_string())
        .arg("--checkpoint-dir")
        .arg(&cfg.checkpoint_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let input = BufWriter::new(child.stdin.take().expect("piped stdin"));
    let output = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut handle = WorkerHandle {
        shard,
        child,
        input,
        output,
        replay: Vec::new(),
    };
    match handle.recv()? {
        WireMessage::Hello {
            shard: said,
            resume_epoch,
        } if said == shard as u64 => Ok((handle, resume_epoch)),
        other => Err(invalid(format!(
            "worker {shard}: expected Hello, got {other:?}"
        ))),
    }
}

/// Kills the worker outright (SIGKILL — no drain, simulating a crash) and
/// brings up a replacement: the fresh process recovers from its on-disk
/// chain, and the coordinator re-sends the buffered chunks the recovered
/// checkpoint does not cover.
fn restart_worker<U: IngestPayload>(
    cfg: &JobConfig,
    exe: &Path,
    handle: &mut WorkerHandle<U>,
) -> io::Result<()> {
    handle.child.kill()?;
    handle.child.wait()?;
    let (mut fresh, resume_epoch) = spawn_worker(cfg, exe, handle.shard)?;
    let replay = std::mem::take(&mut handle.replay);
    for (tag, items) in replay {
        if tag >= resume_epoch {
            fresh.send(&U::into_ingest(items.clone()))?;
            fresh.replay.push((tag, items));
        }
    }
    // Swap the replacement into the slot; the dead process's handles drop.
    std::mem::swap(handle, &mut fresh);
    Ok(())
}

/// Runs the checkpoint barrier at `epoch`: every worker appends a frame
/// durably and acks; acked buffers shrink to the uncovered suffix.
fn checkpoint_barrier<U: IngestPayload>(
    workers: &mut [WorkerHandle<U>],
    epoch: u64,
) -> io::Result<()> {
    for worker in workers.iter_mut() {
        worker.send(&WireMessage::Barrier {
            epoch,
            kind: BarrierKind::Checkpoint,
        })?;
    }
    for worker in workers.iter_mut() {
        if worker.expect_ack(epoch)?.is_some() {
            return Err(invalid(format!(
                "worker {}: checkpoint ack carried a snapshot",
                worker.shard
            )));
        }
        worker.replay.retain(|&(tag, _)| tag >= epoch);
    }
    Ok(())
}

/// Runs the query barrier at `epoch`, returning the consistent-cut
/// snapshots in shard order.
fn query_barrier<U: IngestPayload>(
    workers: &mut [WorkerHandle<U>],
    epoch: u64,
) -> io::Result<Vec<Vec<u8>>> {
    for worker in workers.iter_mut() {
        worker.send(&WireMessage::Barrier {
            epoch,
            kind: BarrierKind::Query,
        })?;
    }
    let mut snapshots = Vec::with_capacity(workers.len());
    for worker in workers.iter_mut() {
        let snapshot = worker.expect_ack(epoch)?.ok_or_else(|| {
            invalid(format!(
                "worker {}: query ack missing snapshot",
                worker.shard
            ))
        })?;
        snapshots.push(snapshot);
    }
    Ok(snapshots)
}

/// Restores the per-shard snapshots and fold-merges them in shard order,
/// with merge coins from `seed ^ MERGE_SEED_SALT` — the exact recipe of an
/// in-process sharded sampler's first merged query.
fn merge_snapshots<S, U>(
    snapshots: &[Vec<u8>],
    seed: u64,
    processed: u64,
) -> io::Result<QueryReport>
where
    S: MergeableSampler + UpdateSampler<U> + Snapshot + Restore,
    U: StreamUpdate,
{
    let mut rng = Xoshiro256::seed_from_u64(seed ^ MERGE_SEED_SALT);
    let mut shards = snapshots.iter().enumerate().map(|(index, bytes)| {
        S::restore(bytes)
            .map_err(|e| invalid(format!("shard {index} snapshot does not restore: {e}")))
    });
    let mut merged = shards.next().expect("at least one shard")?;
    for shard in shards {
        let shard = shard?;
        if !merged.merge_compatible(&shard) {
            return Err(invalid("shard snapshots are not merge-compatible".into()));
        }
        merged = merged.merge(shard, &mut rng);
    }
    let merged_bytes = merged.snapshot();
    Ok(QueryReport {
        processed,
        merged_fnv: checksum(&merged_bytes),
        sample: describe(merged.draw()),
    })
}

fn merge_report(
    kind: SamplerKind,
    snapshots: &[Vec<u8>],
    seed: u64,
    processed: u64,
) -> io::Result<QueryReport> {
    use crate::config::HuberSampler;
    use tps_core::f0::TrulyPerfectF0Sampler;
    use tps_core::lp::TrulyPerfectLpSampler;
    use tps_core::turnstile::StrictTurnstileF0Sampler;
    use tps_streams::{Item, SignedUpdate};
    match kind {
        SamplerKind::L2 => {
            merge_snapshots::<TrulyPerfectLpSampler, Item>(snapshots, seed, processed)
        }
        SamplerKind::F0 => {
            merge_snapshots::<TrulyPerfectF0Sampler, Item>(snapshots, seed, processed)
        }
        SamplerKind::G => merge_snapshots::<HuberSampler, Item>(snapshots, seed, processed),
        SamplerKind::Turnstile => {
            merge_snapshots::<StrictTurnstileF0Sampler, SignedUpdate>(snapshots, seed, processed)
        }
    }
}

/// The kind-generic job body: spawn workers, route the stream, checkpoint,
/// (optionally) kill and recover one worker, query, shut down. Returns the
/// consistent-cut snapshots of the final query barrier.
fn drive_job<U: IngestPayload>(cfg: &JobConfig, stream: &[U]) -> io::Result<Vec<Vec<u8>>> {
    let exe = match &cfg.worker_exe {
        Some(path) => path.clone(),
        None => std::env::current_exe()?,
    };
    std::fs::create_dir_all(&cfg.checkpoint_dir)?;

    let mut workers: Vec<WorkerHandle<U>> = Vec::with_capacity(cfg.workers);
    for shard in 0..cfg.workers {
        let (handle, resume_epoch) = spawn_worker(cfg, &exe, shard)?;
        if resume_epoch != 0 {
            return Err(invalid(format!(
                "worker {shard} recovered epoch {resume_epoch} on a fresh job — \
                 stale checkpoint directory?"
            )));
        }
        workers.push(handle);
    }

    let mut epoch = 0u64; // last barrier epoch sent
    let mut chunks_routed = 0u64;
    let mut kill_pending = cfg.kill;
    for chunk in stream.chunks(cfg.chunk) {
        let mut routed: Vec<Vec<U>> = vec![Vec::new(); cfg.workers];
        for &update in chunk {
            routed[hash_route(update.route_key(), cfg.workers)].push(update);
        }
        for (worker, updates) in workers.iter_mut().zip(routed) {
            if updates.is_empty() {
                continue;
            }
            worker.send(&U::into_ingest(updates.clone()))?;
            worker.replay.push((epoch, updates));
        }
        chunks_routed += 1;
        if let Some(kill) = kill_pending {
            if chunks_routed >= kill.after_chunks {
                if kill.shard >= cfg.workers {
                    return Err(invalid(format!("no shard {} to kill", kill.shard)));
                }
                restart_worker(cfg, &exe, &mut workers[kill.shard])?;
                kill_pending = None;
            }
        }
        if chunks_routed.is_multiple_of(cfg.checkpoint_every) {
            epoch += 1;
            checkpoint_barrier(&mut workers, epoch)?;
        }
    }

    epoch += 1;
    let snapshots = query_barrier(&mut workers, epoch)?;
    for worker in workers.iter_mut() {
        worker.send(&WireMessage::Shutdown)?;
    }
    for worker in workers.iter_mut() {
        worker.child.wait()?;
    }
    Ok(snapshots)
}

/// Runs the whole job: spawn workers, stream, checkpoint, (optionally)
/// kill and recover one worker, query, merge, shut down.
pub fn run_coordinator(cfg: &JobConfig) -> io::Result<QueryReport> {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.chunk > 0, "chunk size must be positive");
    assert!(
        cfg.checkpoint_every > 0,
        "checkpoint cadence must be positive"
    );
    let (snapshots, processed) = if cfg.sampler.is_turnstile() {
        let stream = job_signed_stream(cfg.universe, cfg.count, cfg.seed);
        (drive_job(cfg, &stream)?, stream.len() as u64)
    } else {
        let stream = job_stream(cfg.universe, cfg.count, cfg.seed);
        (drive_job(cfg, &stream)?, stream.len() as u64)
    };
    merge_report(cfg.sampler, &snapshots, cfg.seed, processed)
}

/// The single-process reference: an in-process sharded sampler over the
/// identical stream, queried once. Its report must equal the service's —
/// that equality is the distributed correctness gate.
pub fn run_reference(cfg: &JobConfig) -> QueryReport {
    fn typed<S, U>(
        cfg: &JobConfig,
        stream: &[U],
        build: impl FnOnce(ShardedSamplerBuilder) -> ShardedSampler<S, U>,
    ) -> QueryReport
    where
        S: MergeableSampler + UpdateSampler<U> + Clone + Send + Snapshot + Restore + 'static,
        U: StreamUpdate,
    {
        let mut sampler = build(
            ShardedSamplerBuilder::new(cfg.workers)
                .strategy(ShardingStrategy::Hash)
                .seed(cfg.seed),
        );
        sampler.ingest_batch(stream);
        let mut merged = sampler.merged();
        let merged_bytes = merged.snapshot();
        QueryReport {
            processed: stream.len() as u64,
            merged_fnv: checksum(&merged_bytes),
            sample: describe(merged.draw()),
        }
    }
    match cfg.sampler {
        SamplerKind::L2 => typed(cfg, &job_stream(cfg.universe, cfg.count, cfg.seed), |b| {
            b.build(|shard| make_l2(cfg.universe, cfg.seed, shard))
        }),
        SamplerKind::F0 => typed(cfg, &job_stream(cfg.universe, cfg.count, cfg.seed), |b| {
            b.build(|shard| make_f0(cfg.universe, cfg.seed, shard))
        }),
        SamplerKind::G => typed(cfg, &job_stream(cfg.universe, cfg.count, cfg.seed), |b| {
            b.build(|shard| make_g(cfg.universe, cfg.seed, shard))
        }),
        SamplerKind::Turnstile => typed(
            cfg,
            &job_signed_stream(cfg.universe, cfg.count, cfg.seed),
            |b| b.build_turnstile(|shard| make_turnstile(cfg.universe, cfg.seed, shard)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lines_round_trip() {
        let report = QueryReport {
            processed: 123_456,
            merged_fnv: 0xDEAD_BEEF_0BAD_F00D,
            sample: "index:42".to_string(),
        };
        assert_eq!(QueryReport::parse(&report.to_string()), Some(report));
        assert_eq!(QueryReport::parse("nonsense"), None);
    }

    #[test]
    fn reference_is_deterministic_per_seed() {
        let cfg = JobConfig {
            workers: 3,
            sampler: SamplerKind::L2,
            universe: 1 << 12,
            seed: 5,
            count: 30_000,
            chunk: 1_000,
            checkpoint_every: 4,
            checkpoint_dir: std::env::temp_dir(),
            kill: None,
            worker_exe: None,
        };
        let a = run_reference(&cfg);
        let b = run_reference(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.processed, 30_000);
        let other = JobConfig { seed: 6, ..cfg };
        assert_ne!(a.merged_fnv, run_reference(&other).merged_fnv);
    }
}
