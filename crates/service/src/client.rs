//! The query-plane client: dial a coordinator's query listener, ask for
//! a merged sample at a chosen consistency level, get a typed answer
//! back. [`QueryClient`] is the builder-first surface (connect timeout,
//! dial retry with backoff, read timeout, typed [`QueryError`]); the old
//! bare [`query`] function survives as a deprecated thin wrapper, the
//! same migration path `ShardedSampler::new` → builder took in
//! `tps_core`.
//!
//! The conversation is server-first: the plane leads with its `Hello`,
//! so the client verifies the protocol version and — for cached queries —
//! the [`caps::CACHED_QUERY`] capability bit *before* sending its
//! [`WireMessage::Query`]. The reply is either a `QueryReply` (mapped to
//! [`QuerySnapshot<QueryReport>`], pinning the epoch/cut that produced
//! it) or a typed `QueryRejected` (mapped to [`QueryError::Stale`] /
//! [`QueryError::Closed`]).

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tps_streams::wire::transport::{tcp_framed, Connection};
use tps_streams::wire::{caps, check_hello, reject, WireError, WireMessage};
use tps_streams::{QueryConsistency, QueryOptions, QuerySnapshot};

use crate::coordinator::QueryReport;

/// What can go wrong between a query client and the plane, spelled out —
/// no more fishing connection failures out of a bare `io::Error`.
#[derive(Debug)]
pub enum QueryError {
    /// Every dial attempt failed; `last` is the final attempt's error.
    Dial {
        /// How many times the client tried to connect.
        attempts: u32,
        /// The last connection error observed.
        last: io::Error,
    },
    /// The read timeout expired while waiting for the reply.
    Timeout {
        /// The configured read timeout that expired.
        after: Duration,
    },
    /// The plane rejected a cached query: no published cut satisfied the
    /// staleness bound and no consistent cut could be taken.
    Stale {
        /// The plane's human-readable explanation.
        detail: String,
    },
    /// The plane rejected the query because the job is no longer running.
    Closed {
        /// The plane's human-readable explanation.
        detail: String,
    },
    /// The peer spoke the wire protocol wrong (version/capability
    /// mismatch, unexpected message, truncated reply).
    Protocol(String),
    /// Any other transport-level failure.
    Io(io::Error),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Dial { attempts, last } => {
                write!(
                    f,
                    "cannot reach the query plane after {attempts} attempts: {last}"
                )
            }
            QueryError::Timeout { after } => {
                write!(f, "no reply within {}ms", after.as_millis())
            }
            QueryError::Stale { detail } => write!(f, "query rejected as stale: {detail}"),
            QueryError::Closed { detail } => write!(f, "query plane closed: {detail}"),
            QueryError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            QueryError::Io(e) => write!(f, "query transport failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<QueryError> for io::Error {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Io(inner) => inner,
            QueryError::Dial { last, .. } => last,
            QueryError::Timeout { .. } => io::Error::new(io::ErrorKind::TimedOut, e.to_string()),
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Builder-first client for the coordinator's query plane.
///
/// ```no_run
/// use std::time::Duration;
/// use tps_service::client::QueryClient;
/// use tps_service::QueryOptions;
///
/// let client = QueryClient::new("127.0.0.1:7070")
///     .connect_timeout(Duration::from_millis(500))
///     .dial_attempts(5)
///     .read_timeout(Duration::from_secs(2));
/// let snapshot = client.query(&QueryOptions::cached(2))?;
/// println!("epoch {} (cached: {}): {}", snapshot.epoch, snapshot.cached, snapshot.value);
/// # Ok::<(), tps_service::client::QueryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueryClient {
    addr: String,
    connect_timeout: Duration,
    dial_attempts: u32,
    read_timeout: Option<Duration>,
}

/// First retry backoff after a failed dial; doubles per attempt.
const DIAL_BACKOFF_FLOOR: Duration = Duration::from_millis(10);
/// Retry backoff ceiling.
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(500);

impl QueryClient {
    /// A client for the plane at `addr` with the default knobs: 1 s
    /// connect timeout, 5 dial attempts (backoff doubling from 10 ms),
    /// no read timeout (consistent queries legitimately wait for the
    /// next chunk boundary).
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(1),
            dial_attempts: 5,
            read_timeout: None,
        }
    }

    /// Per-attempt TCP connect timeout.
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// How many times to dial before giving up (minimum 1). Attempts are
    /// separated by an exponential backoff (10 ms doubling, capped at
    /// 500 ms) — a client started alongside the service wins the race
    /// without spinning.
    pub fn dial_attempts(mut self, attempts: u32) -> Self {
        self.dial_attempts = attempts.max(1);
        self
    }

    /// Maximum time to wait for the reply once connected; expiry maps to
    /// [`QueryError::Timeout`].
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Dials the plane (with retry/backoff), verifies its `Hello`, sends
    /// one typed query and returns the reply pinned to the cut that
    /// produced it.
    pub fn query(&self, options: &QueryOptions) -> Result<QuerySnapshot<QueryReport>, QueryError> {
        let stream = self.dial()?;
        stream
            .set_read_timeout(self.read_timeout)
            .map_err(QueryError::Io)?;
        let mut conn = tcp_framed(stream).map_err(QueryError::Io)?;

        // Server-first Hello: check the version and — only when we are
        // about to ask for a cached answer — the CACHED_QUERY bit.
        let required = match options.consistency {
            QueryConsistency::Consistent => caps::QUERY,
            QueryConsistency::Cached { .. } => caps::QUERY | caps::CACHED_QUERY,
        };
        let hello = self.recv(&mut conn)?;
        check_hello(&hello, required).map_err(|e| QueryError::Protocol(e.to_string()))?;

        conn.send(&WireMessage::Query { options: *options })
            .map_err(|e| self.classify_io(e))?;
        match self.recv(&mut conn)? {
            WireMessage::QueryReply {
                processed,
                merged_fnv,
                epoch,
                cut,
                cached,
                sample,
            } => Ok(QuerySnapshot {
                value: QueryReport {
                    processed,
                    merged_fnv,
                    sample,
                },
                epoch,
                cut,
                cached,
            }),
            WireMessage::QueryRejected { code, detail } => Err(match code {
                reject::STALE => QueryError::Stale { detail },
                reject::CLOSED => QueryError::Closed { detail },
                other => QueryError::Protocol(format!("unknown rejection code {other}: {detail}")),
            }),
            other => Err(QueryError::Protocol(format!(
                "query plane answered with {other:?}"
            ))),
        }
    }

    /// Connects with retry: each attempt uses `connect_timeout`, failures
    /// back off exponentially between attempts.
    fn dial(&self) -> Result<TcpStream, QueryError> {
        let mut backoff = DIAL_BACKOFF_FLOOR;
        let mut last: Option<io::Error> = None;
        for attempt in 0..self.dial_attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(DIAL_BACKOFF_CAP);
            }
            match self.connect_once() {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(QueryError::Dial {
            attempts: self.dial_attempts,
            last: last.unwrap_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("cannot resolve {}", self.addr),
                )
            }),
        })
    }

    fn connect_once(&self) -> io::Result<TcpStream> {
        let mut resolve_error = None;
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => return Ok(stream),
                Err(e) => resolve_error = Some(e),
            }
        }
        Err(resolve_error.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} resolves to no address", self.addr),
            )
        }))
    }

    fn recv<C: Connection>(&self, conn: &mut C) -> Result<WireMessage, QueryError> {
        match conn.recv() {
            Ok(Some(msg)) => Ok(msg),
            Ok(None) => Err(QueryError::Protocol(
                "query plane closed the connection without replying".into(),
            )),
            Err(WireError::Io(e)) => Err(self.classify_io(e)),
            Err(other) => Err(QueryError::Protocol(other.to_string())),
        }
    }

    /// Read-timeout expiry surfaces as `WouldBlock` or `TimedOut`
    /// depending on the platform; both mean "the reply didn't come".
    fn classify_io(&self, e: io::Error) -> QueryError {
        match (self.read_timeout, e.kind()) {
            (Some(after), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                QueryError::Timeout { after }
            }
            _ => QueryError::Io(e),
        }
    }
}

/// Sends one consistent-cut query to the coordinator listening at `addr`
/// and returns the bare report.
#[deprecated(
    since = "0.2.0",
    note = "use QueryClient::new(addr).query(&QueryOptions::consistent()) — typed errors, \
            timeouts, retry, and cached-mode queries"
)]
pub fn query(addr: &str) -> io::Result<QueryReport> {
    QueryClient::new(addr)
        .query(&QueryOptions::consistent())
        .map(|snapshot| snapshot.value)
        .map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dial_gives_up_with_a_typed_error() {
        // A port nothing listens on: every attempt fails fast, and the
        // error records how hard we tried.
        let client = QueryClient::new("127.0.0.1:1")
            .connect_timeout(Duration::from_millis(50))
            .dial_attempts(2);
        match client.query(&QueryOptions::consistent()) {
            Err(QueryError::Dial { attempts: 2, .. }) => {}
            other => panic!("expected a dial error, got {other:?}"),
        }
    }

    #[test]
    fn deprecated_wrapper_maps_to_io_error() {
        #[allow(deprecated)]
        let result = query("127.0.0.1:1");
        assert!(result.is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = QueryError::Stale {
            detail: "cut 3 epochs behind".into(),
        };
        assert!(e.to_string().contains("stale"));
        let t = QueryError::Timeout {
            after: Duration::from_millis(250),
        };
        assert!(t.to_string().contains("250"));
    }
}
