//! Library-level query client: dial a coordinator's query listener, ask
//! for a consistent-cut sample, get a [`QueryReport`] back. This is the
//! whole client side of the query plane — one request, one reply, over
//! the same sealed-envelope wire protocol the ingest path uses.

use std::io;

use tps_streams::wire::transport::{tcp_connect, Connection};
use tps_streams::wire::{WireError, WireMessage};

use crate::coordinator::QueryReport;

fn wire_to_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// Sends one [`WireMessage::Query`] to the coordinator listening at
/// `addr` and returns its consistent-cut reply. The coordinator runs a
/// query barrier at the next chunk boundary; ingest continues after the
/// snapshot cut, so this never stops the job.
pub fn query(addr: &str) -> io::Result<QueryReport> {
    let mut conn = tcp_connect(addr)?;
    conn.send(&WireMessage::Query)?;
    match conn.recv().map_err(wire_to_io)? {
        Some(WireMessage::QueryReply {
            processed,
            merged_fnv,
            sample,
        }) => Ok(QueryReport {
            processed,
            merged_fnv,
            sample,
        }),
        Some(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("coordinator answered a query with {other:?}"),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "coordinator closed the query connection without replying",
        )),
    }
}
