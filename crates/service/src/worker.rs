//! The worker process: owns exactly one shard of the job's sampler, talks
//! the [`tps_streams::wire`] protocol over whichever transport the job
//! uses (stdin/stdout pipes or a TCP listener), and keeps an incremental
//! checkpoint chain on disk.
//!
//! Lifecycle per connection: recover from the on-disk chain (if any),
//! announce the recovered epoch in `Hello`, then loop — apply `Ingest`
//! chunks in arrival order; on a `Checkpoint` barrier append a delta
//! frame durably *before* acking (and GC the chain when the checkpointer
//! rebased); on a `Query` barrier ack with the full sealed snapshot; on a
//! `CheckpointPublish` barrier do both — the checkpoint frame goes to
//! disk *and* the ack carries the snapshot, feeding the coordinator's
//! query-plane snapshot cache in the same round. The
//! worker never sees the stream outside its shard and never touches the
//! golden-corpus registry: its entire interface is the connection and the
//! chain file.
//!
//! In `--listen` mode the worker outlives its coordinator: when the
//! connection drops without a clean `Shutdown`, it loops back to accept.
//! Crucially, each new connection starts from the **on-disk chain**, not
//! from whatever in-memory state the previous connection accumulated —
//! un-checkpointed work is deliberately discarded, because the replacement
//! coordinator's replay buffers only cover chunks past the last durable
//! checkpoint. Keeping the in-memory tail would double-count them.

use std::io::{self, Write};

use tps_streams::codec::delta::IncrementalCheckpointer;
use tps_streams::codec::{Restore, Snapshot};
use tps_streams::wire::transport::{Connection, Listener, StdioListener, TcpServerListener};
use tps_streams::wire::{BarrierKind, IngestPayload, WireError, WireMessage};
use tps_streams::UpdateSampler;

use crate::config::{make_f0, make_g, make_l2, make_turnstile, SamplerKind, WorkerConfig};
use crate::store::CheckpointStore;

fn wire_to_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// Runs the worker over its configured transport: `listen = Some(addr)`
/// binds a TCP listener there (announcing `listening <bound-addr>` on
/// stdout, which resolves ephemeral `:0` ports for a spawning
/// coordinator); `None` serves this process's stdin/stdout once.
pub fn run(cfg: &WorkerConfig) -> io::Result<()> {
    match &cfg.listen {
        Some(addr) => {
            let mut listener = TcpServerListener::bind(addr.as_str())?;
            println!("listening {}", listener.local_addr()?);
            io::stdout().flush()?;
            accept_loop(cfg, &mut listener)
        }
        None => accept_loop(cfg, &mut StdioListener::new()),
    }
}

/// Serves connections until the transport is exhausted or a coordinator
/// sends a clean `Shutdown`. A connection that drops mid-job (dead
/// coordinator) or errors is *not* fatal in listen mode — the worker logs
/// and goes back to accepting; its durable chain carries the state. In
/// pipe mode the transport is one-shot, so a failed conversation
/// propagates as this process's exit status.
fn accept_loop<L: Listener>(cfg: &WorkerConfig, listener: &mut L) -> io::Result<()> {
    let mut last: io::Result<()> = Ok(());
    loop {
        let Some(mut conn) = listener.accept()? else {
            return last; // transport out of connections (stdio one-shot)
        };
        let served = match cfg.sampler {
            SamplerKind::L2 => serve(
                cfg,
                || make_l2(cfg.universe, cfg.seed, cfg.shard),
                &mut conn,
            ),
            SamplerKind::F0 => serve(
                cfg,
                || make_f0(cfg.universe, cfg.seed, cfg.shard),
                &mut conn,
            ),
            SamplerKind::G => serve(cfg, || make_g(cfg.universe, cfg.seed, cfg.shard), &mut conn),
            SamplerKind::Turnstile => serve(
                cfg,
                || make_turnstile(cfg.universe, cfg.seed, cfg.shard),
                &mut conn,
            ),
        };
        match served {
            Ok(true) => return Ok(()),  // clean shutdown: the job is done
            Ok(false) => last = Ok(()), // peer vanished; state is on disk
            Err(e) => {
                eprintln!("worker {}: connection failed: {e}", cfg.shard);
                last = Err(e);
            }
        }
    }
}

/// One coordinator conversation over an explicit [`Connection`]
/// (unit-testable without a process boundary). `fresh` builds the shard's
/// state if no checkpoint chain exists — evaluated per call, so every
/// conversation starts from durable state only. Returns `true` if the
/// coordinator ended the job with `Shutdown`, `false` on bare EOF.
///
/// Generic over the update type `U` the shard consumes: insertion-only
/// shards receive [`WireMessage::Ingest`] frames, turnstile shards
/// [`WireMessage::IngestSigned`] — [`IngestPayload`] picks the right
/// variant per `U`, and everything else (checkpoint chains, barriers,
/// recovery) is identical.
pub fn serve<S, U, C>(
    cfg: &WorkerConfig,
    fresh: impl FnOnce() -> S,
    conn: &mut C,
) -> io::Result<bool>
where
    S: UpdateSampler<U> + Snapshot + Restore,
    U: IngestPayload,
    C: Connection + ?Sized,
{
    let store = CheckpointStore::for_shard(&cfg.checkpoint_dir, cfg.shard);
    let (mut sampler, mut checkpointer, resume_epoch) = match store.recover()? {
        Some(chain) => {
            let restored = S::restore(&chain.snapshot).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("recovered checkpoint does not restore: {e}"),
                )
            })?;
            let epoch = chain.epoch;
            (
                restored,
                IncrementalCheckpointer::resume(epoch, chain.snapshot, chain.deltas_since_base),
                epoch,
            )
        }
        None => (fresh(), IncrementalCheckpointer::new(), 0),
    };

    conn.send(&WireMessage::hello(cfg.shard as u64, resume_epoch))?;

    while let Some(msg) = conn.recv().map_err(wire_to_io)? {
        match msg {
            WireMessage::Barrier { epoch, kind } => {
                let snapshot = match kind {
                    BarrierKind::Checkpoint | BarrierKind::CheckpointPublish => {
                        let frame = checkpointer.checkpoint(&sampler, epoch);
                        store.append_frame(frame.bytes())?;
                        if !frame.is_delta() {
                            // The checkpointer rebased: everything before
                            // this full frame is unreachable — collect it.
                            store.compact()?;
                        }
                        // A *publishing* checkpoint also acks the full
                        // snapshot: one barrier round feeds both the
                        // durable chain and the coordinator's snapshot
                        // cache.
                        (kind == BarrierKind::CheckpointPublish).then(|| sampler.snapshot())
                    }
                    BarrierKind::Query => Some(sampler.snapshot()),
                };
                conn.send(&WireMessage::BarrierAck {
                    shard: cfg.shard as u64,
                    epoch,
                    snapshot,
                })?;
            }
            WireMessage::Shutdown => return Ok(true),
            other => match U::from_ingest(other) {
                Ok(updates) => sampler.ingest_batch(&updates),
                Err(unexpected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected coordinator message: {unexpected:?}"),
                    ))
                }
            },
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::make_l2;
    use std::path::PathBuf;
    use tps_core::lp::TrulyPerfectLpSampler;
    use tps_streams::codec::delta::{peek_frame, FrameKind};
    use tps_streams::wire::transport::FramedConnection;
    use tps_streams::wire::{encode_message, read_message};
    use tps_streams::StreamSampler;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tps-worker-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn script(messages: &[WireMessage]) -> Vec<u8> {
        let mut pipe = Vec::new();
        for msg in messages {
            let frame = encode_message(msg);
            pipe.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            pipe.extend_from_slice(&frame);
        }
        pipe
    }

    fn replies(output: &[u8]) -> Vec<WireMessage> {
        let mut cursor = std::io::Cursor::new(output.to_vec());
        let mut out = Vec::new();
        while let Some(msg) = read_message(&mut cursor).unwrap() {
            out.push(msg);
        }
        out
    }

    /// Runs one scripted conversation against the serve loop, returning
    /// (clean_shutdown, replies).
    fn converse<S, U>(
        cfg: &WorkerConfig,
        fresh: impl FnOnce() -> S,
        messages: &[WireMessage],
    ) -> (bool, Vec<WireMessage>)
    where
        S: UpdateSampler<U> + Snapshot + Restore,
        U: IngestPayload,
    {
        let input = script(messages);
        let mut output = Vec::new();
        let mut conn = FramedConnection::new(input.as_slice(), &mut output);
        let done = serve(cfg, fresh, &mut conn).unwrap();
        drop(conn);
        (done, replies(&output))
    }

    #[test]
    fn worker_checkpoints_recovers_and_matches_uninterrupted_state() {
        let dir = temp_dir("recover");
        let cfg = WorkerConfig {
            shard: 0,
            sampler: SamplerKind::L2,
            universe: 1 << 12,
            seed: 21,
            checkpoint_dir: dir.clone(),
            listen: None,
        };
        let store = CheckpointStore::for_shard(&dir, 0);
        let _ = std::fs::remove_file(store.path());

        let chunk_a: Vec<u64> = (0..4_000u64).map(|i| i % 97).collect();
        let chunk_b: Vec<u64> = (0..4_000u64).map(|i| i % 131).collect();

        // Session 1: ingest chunk A, checkpoint at epoch 1, then ingest
        // chunk B and "crash" (no checkpoint, no shutdown — EOF).
        let (done, first) = converse(
            &cfg,
            || make_l2(cfg.universe, cfg.seed, cfg.shard),
            &[
                WireMessage::Ingest {
                    items: chunk_a.clone(),
                },
                WireMessage::Barrier {
                    epoch: 1,
                    kind: BarrierKind::Checkpoint,
                },
                WireMessage::Ingest {
                    items: chunk_b.clone(),
                },
            ],
        );
        assert!(!done, "EOF is not a clean shutdown");
        assert_eq!(first[0], WireMessage::hello(0, 0));
        assert!(matches!(
            first[1],
            WireMessage::BarrierAck {
                epoch: 1,
                snapshot: None,
                ..
            }
        ));

        // Session 2: the restarted worker resumes from epoch 1; the
        // coordinator re-sends chunk B; a query must match a never-crashed
        // sampler that saw A then B.
        let (done, second) = converse(
            &cfg,
            || make_l2(cfg.universe, cfg.seed, cfg.shard),
            &[
                WireMessage::Ingest {
                    items: chunk_b.clone(),
                },
                WireMessage::Barrier {
                    epoch: 2,
                    kind: BarrierKind::Query,
                },
                WireMessage::Shutdown,
            ],
        );
        assert!(done, "Shutdown is a clean end");
        assert_eq!(second[0], WireMessage::hello(0, 1));
        let recovered_snapshot = match &second[1] {
            WireMessage::BarrierAck {
                epoch: 2,
                snapshot: Some(bytes),
                ..
            } => bytes.clone(),
            other => panic!("expected query ack, got {other:?}"),
        };

        let mut uninterrupted = make_l2(cfg.universe, cfg.seed, cfg.shard);
        uninterrupted.update_batch(&chunk_a);
        uninterrupted.update_batch(&chunk_b);
        assert_eq!(
            recovered_snapshot,
            uninterrupted.snapshot(),
            "recovery + replay drifted from the uninterrupted run"
        );
        // And the recovered snapshot is a live sampler.
        let _ = TrulyPerfectLpSampler::restore(&recovered_snapshot).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The same crash/recover/replay contract for a turnstile shard: the
    /// generic serve loop consumes `IngestSigned` frames, checkpoints the
    /// strict-turnstile sampler's delta chain, and after recovery + replay
    /// the queried snapshot is byte-identical to a never-crashed sampler
    /// over the same signed stream.
    #[test]
    fn turnstile_worker_recovers_and_matches_uninterrupted_state() {
        use tps_core::turnstile::StrictTurnstileF0Sampler;
        use tps_streams::{SignedUpdate, TurnstileSampler};

        let dir = temp_dir("turnstile-recover");
        let cfg = WorkerConfig {
            shard: 0,
            sampler: SamplerKind::Turnstile,
            universe: 1 << 12,
            seed: 23,
            checkpoint_dir: dir.clone(),
            listen: None,
        };
        let store = CheckpointStore::for_shard(&dir, 0);
        let _ = std::fs::remove_file(store.path());

        // Inserts with a deterministic sprinkling of deletes; every prefix
        // keeps counts non-negative.
        let signed = |offset: u64, len: u64| -> Vec<SignedUpdate> {
            (0..len)
                .flat_map(|i| {
                    let item = (offset + i) % 97;
                    let mut updates = vec![SignedUpdate { item, delta: 1 }];
                    if i % 3 == 0 {
                        updates.push(SignedUpdate { item, delta: 1 });
                        updates.push(SignedUpdate { item, delta: -1 });
                    }
                    updates
                })
                .collect()
        };
        let chunk_a = signed(0, 3_000);
        let chunk_b = signed(11, 3_000);

        let (done, _) = converse(
            &cfg,
            || make_turnstile(cfg.universe, cfg.seed, cfg.shard),
            &[
                WireMessage::IngestSigned {
                    updates: chunk_a.clone(),
                },
                WireMessage::Barrier {
                    epoch: 1,
                    kind: BarrierKind::Checkpoint,
                },
                WireMessage::IngestSigned {
                    updates: chunk_b.clone(),
                },
            ],
        );
        assert!(!done);

        let (done, second) = converse(
            &cfg,
            || make_turnstile(cfg.universe, cfg.seed, cfg.shard),
            &[
                WireMessage::IngestSigned {
                    updates: chunk_b.clone(),
                },
                WireMessage::Barrier {
                    epoch: 2,
                    kind: BarrierKind::Query,
                },
                WireMessage::Shutdown,
            ],
        );
        assert!(done);
        assert_eq!(second[0], WireMessage::hello(0, 1));
        let recovered_snapshot = match &second[1] {
            WireMessage::BarrierAck {
                epoch: 2,
                snapshot: Some(bytes),
                ..
            } => bytes.clone(),
            other => panic!("expected query ack, got {other:?}"),
        };

        let mut uninterrupted = make_turnstile(cfg.universe, cfg.seed, cfg.shard);
        uninterrupted.update_batch(&chunk_a);
        uninterrupted.update_batch(&chunk_b);
        assert_eq!(
            recovered_snapshot,
            uninterrupted.snapshot(),
            "turnstile recovery + replay drifted from the uninterrupted run"
        );
        let _ = StrictTurnstileF0Sampler::restore(&recovered_snapshot).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A `CheckpointPublish` barrier is a checkpoint *and* a query in one
    /// round: the frame lands on the durable chain (the next session
    /// resumes from it) and the ack carries the full snapshot, identical
    /// to what a `Query` barrier at the same point would return.
    #[test]
    fn checkpoint_publish_acks_the_snapshot_and_stays_durable() {
        let dir = temp_dir("publish");
        let cfg = WorkerConfig {
            shard: 0,
            sampler: SamplerKind::L2,
            universe: 1 << 12,
            seed: 31,
            checkpoint_dir: dir.clone(),
            listen: None,
        };
        let store = CheckpointStore::for_shard(&dir, 0);
        let _ = std::fs::remove_file(store.path());

        let chunk: Vec<u64> = (0..4_000u64).map(|i| i % 113).collect();
        let (done, out) = converse(
            &cfg,
            || make_l2(cfg.universe, cfg.seed, cfg.shard),
            &[
                WireMessage::Ingest {
                    items: chunk.clone(),
                },
                WireMessage::Barrier {
                    epoch: 1,
                    kind: BarrierKind::CheckpointPublish,
                },
                WireMessage::Shutdown,
            ],
        );
        assert!(done);
        let published = match &out[1] {
            WireMessage::BarrierAck {
                epoch: 1,
                snapshot: Some(bytes),
                ..
            } => bytes.clone(),
            other => panic!("expected publishing ack, got {other:?}"),
        };
        let mut reference = make_l2(cfg.universe, cfg.seed, cfg.shard);
        reference.update_batch(&chunk);
        assert_eq!(
            published,
            reference.snapshot(),
            "published snapshot drifted from the uninterrupted sampler"
        );
        // And the same barrier made the cut durable.
        assert_eq!(store.recover().unwrap().unwrap().epoch, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Serving many checkpoint barriers keeps the on-disk chain
    /// compacted: after the checkpointer rebases, the chain starts at the
    /// newest full frame instead of growing without bound.
    #[test]
    fn checkpoint_chain_is_garbage_collected_across_rebases() {
        let dir = temp_dir("gc");
        let cfg = WorkerConfig {
            shard: 0,
            sampler: SamplerKind::L2,
            universe: 1 << 12,
            seed: 29,
            checkpoint_dir: dir.clone(),
            listen: None,
        };
        let store = CheckpointStore::for_shard(&dir, 0);
        let _ = std::fs::remove_file(store.path());

        // Alternate big ingests and checkpoints: large state churn makes
        // deltas expensive, so the checkpointer rebases regularly.
        let mut messages = Vec::new();
        for round in 0..12u64 {
            messages.push(WireMessage::Ingest {
                items: (0..2_000u64).map(|i| (i * (round + 3)) % 4096).collect(),
            });
            messages.push(WireMessage::Barrier {
                epoch: round + 1,
                kind: BarrierKind::Checkpoint,
            });
        }
        messages.push(WireMessage::Shutdown);
        let (done, _) = converse(
            &cfg,
            || make_l2(cfg.universe, cfg.seed, cfg.shard),
            &messages,
        );
        assert!(done);

        let frames = store.load_frames().unwrap();
        assert!(!frames.is_empty());
        assert_eq!(
            peek_frame(&frames[0]).unwrap().0,
            FrameKind::Full,
            "chain must start at its base after GC"
        );
        let fulls = frames
            .iter()
            .filter(|f| matches!(peek_frame(f), Ok((FrameKind::Full, _))))
            .count();
        assert_eq!(
            fulls,
            1,
            "exactly one full frame survives GC, got {fulls} in {} frames",
            frames.len()
        );
        // And the compacted chain still recovers to the final epoch.
        assert_eq!(store.recover().unwrap().unwrap().epoch, 12);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
