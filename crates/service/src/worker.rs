//! The worker process: owns exactly one shard of the job's sampler, talks
//! the [`tps_streams::wire`] protocol over its stdin/stdout, and keeps an
//! incremental checkpoint chain on disk.
//!
//! Lifecycle: recover from the on-disk chain (if any), announce the
//! recovered epoch in `Hello`, then loop — apply `Ingest` chunks in
//! arrival order; on a `Checkpoint` barrier append a delta frame durably
//! *before* acking; on a `Query` barrier ack with the full sealed
//! snapshot. The worker never sees the stream outside its shard and never
//! touches the golden-corpus registry: its entire interface is the pipe
//! and the chain file.

use std::io::{self, BufReader, BufWriter, Read, Write};

use tps_streams::codec::delta::IncrementalCheckpointer;
use tps_streams::codec::{Restore, Snapshot};
use tps_streams::wire::{
    read_message, write_message, BarrierKind, IngestPayload, WireError, WireMessage,
};
use tps_streams::UpdateSampler;

use crate::config::{make_f0, make_g, make_l2, make_turnstile, SamplerKind, WorkerConfig};
use crate::store::CheckpointStore;

fn wire_to_io(e: WireError) -> io::Error {
    match e {
        WireError::Io(e) => e,
        WireError::Codec(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
    }
}

/// Runs the worker protocol over the process's stdin/stdout.
pub fn run(cfg: &WorkerConfig) -> io::Result<()> {
    let stdin = io::stdin().lock();
    let stdout = io::stdout().lock();
    match cfg.sampler {
        SamplerKind::L2 => serve(
            cfg,
            make_l2(cfg.universe, cfg.seed, cfg.shard),
            stdin,
            stdout,
        ),
        SamplerKind::F0 => serve(
            cfg,
            make_f0(cfg.universe, cfg.seed, cfg.shard),
            stdin,
            stdout,
        ),
        SamplerKind::G => serve(
            cfg,
            make_g(cfg.universe, cfg.seed, cfg.shard),
            stdin,
            stdout,
        ),
        SamplerKind::Turnstile => serve(
            cfg,
            make_turnstile(cfg.universe, cfg.seed, cfg.shard),
            stdin,
            stdout,
        ),
    }
}

/// The worker loop over explicit streams (unit-testable without a process
/// boundary). `fresh` is the shard's state if no checkpoint chain exists.
///
/// Generic over the update type `U` the shard consumes: insertion-only
/// shards receive [`WireMessage::Ingest`] frames, turnstile shards
/// [`WireMessage::IngestSigned`] — [`IngestPayload`] picks the right
/// variant per `U`, and everything else (checkpoint chains, barriers,
/// recovery) is identical.
pub fn serve<S, U, R, W>(cfg: &WorkerConfig, fresh: S, input: R, output: W) -> io::Result<()>
where
    S: UpdateSampler<U> + Snapshot + Restore,
    U: IngestPayload,
    R: Read,
    W: Write,
{
    let store = CheckpointStore::for_shard(&cfg.checkpoint_dir, cfg.shard);
    let (mut sampler, mut checkpointer, resume_epoch) = match store.recover()? {
        Some(chain) => {
            let restored = S::restore(&chain.snapshot).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("recovered checkpoint does not restore: {e}"),
                )
            })?;
            let epoch = chain.epoch;
            (
                restored,
                IncrementalCheckpointer::resume(epoch, chain.snapshot, chain.deltas_since_base),
                epoch,
            )
        }
        None => (fresh, IncrementalCheckpointer::new(), 0),
    };

    let mut input = BufReader::new(input);
    let mut output = BufWriter::new(output);
    write_message(
        &mut output,
        &WireMessage::Hello {
            shard: cfg.shard as u64,
            resume_epoch,
        },
    )?;

    while let Some(msg) = read_message(&mut input).map_err(wire_to_io)? {
        match msg {
            WireMessage::Barrier { epoch, kind } => {
                let snapshot = match kind {
                    BarrierKind::Checkpoint => {
                        let frame = checkpointer.checkpoint(&sampler, epoch);
                        store.append_frame(frame.bytes())?;
                        None
                    }
                    BarrierKind::Query => Some(sampler.snapshot()),
                };
                write_message(
                    &mut output,
                    &WireMessage::BarrierAck {
                        shard: cfg.shard as u64,
                        epoch,
                        snapshot,
                    },
                )?;
            }
            WireMessage::Shutdown => break,
            other => match U::from_ingest(other) {
                Ok(updates) => sampler.ingest_batch(&updates),
                Err(unexpected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected coordinator message: {unexpected:?}"),
                    ))
                }
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::make_l2;
    use std::path::PathBuf;
    use tps_core::lp::TrulyPerfectLpSampler;
    use tps_streams::wire::encode_message;
    use tps_streams::StreamSampler;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tps-worker-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn script(messages: &[WireMessage]) -> Vec<u8> {
        let mut pipe = Vec::new();
        for msg in messages {
            let frame = encode_message(msg);
            pipe.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            pipe.extend_from_slice(&frame);
        }
        pipe
    }

    fn replies(output: &[u8]) -> Vec<WireMessage> {
        let mut cursor = std::io::Cursor::new(output.to_vec());
        let mut out = Vec::new();
        while let Some(msg) = read_message(&mut cursor).unwrap() {
            out.push(msg);
        }
        out
    }

    #[test]
    fn worker_checkpoints_recovers_and_matches_uninterrupted_state() {
        let dir = temp_dir("recover");
        let cfg = WorkerConfig {
            shard: 0,
            sampler: SamplerKind::L2,
            universe: 1 << 12,
            seed: 21,
            checkpoint_dir: dir.clone(),
        };
        let store = CheckpointStore::for_shard(&dir, 0);
        let _ = std::fs::remove_file(store.path());

        let chunk_a: Vec<u64> = (0..4_000u64).map(|i| i % 97).collect();
        let chunk_b: Vec<u64> = (0..4_000u64).map(|i| i % 131).collect();

        // Session 1: ingest chunk A, checkpoint at epoch 1, then ingest
        // chunk B and "crash" (no checkpoint, no shutdown — EOF).
        let input = script(&[
            WireMessage::Ingest {
                items: chunk_a.clone(),
            },
            WireMessage::Barrier {
                epoch: 1,
                kind: BarrierKind::Checkpoint,
            },
            WireMessage::Ingest {
                items: chunk_b.clone(),
            },
        ]);
        let mut output = Vec::new();
        serve(
            &cfg,
            make_l2(cfg.universe, cfg.seed, cfg.shard),
            input.as_slice(),
            &mut output,
        )
        .unwrap();
        let first = replies(&output);
        assert_eq!(
            first[0],
            WireMessage::Hello {
                shard: 0,
                resume_epoch: 0
            }
        );
        assert!(matches!(
            first[1],
            WireMessage::BarrierAck {
                epoch: 1,
                snapshot: None,
                ..
            }
        ));

        // Session 2: the restarted worker resumes from epoch 1; the
        // coordinator re-sends chunk B; a query must match a never-crashed
        // sampler that saw A then B.
        let input = script(&[
            WireMessage::Ingest {
                items: chunk_b.clone(),
            },
            WireMessage::Barrier {
                epoch: 2,
                kind: BarrierKind::Query,
            },
            WireMessage::Shutdown,
        ]);
        let mut output = Vec::new();
        serve(
            &cfg,
            make_l2(cfg.universe, cfg.seed, cfg.shard),
            input.as_slice(),
            &mut output,
        )
        .unwrap();
        let second = replies(&output);
        assert_eq!(
            second[0],
            WireMessage::Hello {
                shard: 0,
                resume_epoch: 1
            }
        );
        let recovered_snapshot = match &second[1] {
            WireMessage::BarrierAck {
                epoch: 2,
                snapshot: Some(bytes),
                ..
            } => bytes.clone(),
            other => panic!("expected query ack, got {other:?}"),
        };

        let mut uninterrupted = make_l2(cfg.universe, cfg.seed, cfg.shard);
        uninterrupted.update_batch(&chunk_a);
        uninterrupted.update_batch(&chunk_b);
        assert_eq!(
            recovered_snapshot,
            uninterrupted.snapshot(),
            "recovery + replay drifted from the uninterrupted run"
        );
        // And the recovered snapshot is a live sampler.
        let _ = TrulyPerfectLpSampler::restore(&recovered_snapshot).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The same crash/recover/replay contract for a turnstile shard: the
    /// generic serve loop consumes `IngestSigned` frames, checkpoints the
    /// strict-turnstile sampler's delta chain, and after recovery + replay
    /// the queried snapshot is byte-identical to a never-crashed sampler
    /// over the same signed stream.
    #[test]
    fn turnstile_worker_recovers_and_matches_uninterrupted_state() {
        use tps_core::turnstile::StrictTurnstileF0Sampler;
        use tps_streams::{SignedUpdate, TurnstileSampler};

        let dir = temp_dir("turnstile-recover");
        let cfg = WorkerConfig {
            shard: 0,
            sampler: SamplerKind::Turnstile,
            universe: 1 << 12,
            seed: 23,
            checkpoint_dir: dir.clone(),
        };
        let store = CheckpointStore::for_shard(&dir, 0);
        let _ = std::fs::remove_file(store.path());

        // Inserts with a deterministic sprinkling of deletes; every prefix
        // keeps counts non-negative.
        let signed = |offset: u64, len: u64| -> Vec<SignedUpdate> {
            (0..len)
                .flat_map(|i| {
                    let item = (offset + i) % 97;
                    let mut updates = vec![SignedUpdate { item, delta: 1 }];
                    if i % 3 == 0 {
                        updates.push(SignedUpdate { item, delta: 1 });
                        updates.push(SignedUpdate { item, delta: -1 });
                    }
                    updates
                })
                .collect()
        };
        let chunk_a = signed(0, 3_000);
        let chunk_b = signed(11, 3_000);

        let input = script(&[
            WireMessage::IngestSigned {
                updates: chunk_a.clone(),
            },
            WireMessage::Barrier {
                epoch: 1,
                kind: BarrierKind::Checkpoint,
            },
            WireMessage::IngestSigned {
                updates: chunk_b.clone(),
            },
        ]);
        let mut output = Vec::new();
        serve(
            &cfg,
            make_turnstile(cfg.universe, cfg.seed, cfg.shard),
            input.as_slice(),
            &mut output,
        )
        .unwrap();

        let input = script(&[
            WireMessage::IngestSigned {
                updates: chunk_b.clone(),
            },
            WireMessage::Barrier {
                epoch: 2,
                kind: BarrierKind::Query,
            },
            WireMessage::Shutdown,
        ]);
        let mut output = Vec::new();
        serve(
            &cfg,
            make_turnstile(cfg.universe, cfg.seed, cfg.shard),
            input.as_slice(),
            &mut output,
        )
        .unwrap();
        let second = replies(&output);
        assert_eq!(
            second[0],
            WireMessage::Hello {
                shard: 0,
                resume_epoch: 1
            }
        );
        let recovered_snapshot = match &second[1] {
            WireMessage::BarrierAck {
                epoch: 2,
                snapshot: Some(bytes),
                ..
            } => bytes.clone(),
            other => panic!("expected query ack, got {other:?}"),
        };

        let mut uninterrupted = make_turnstile(cfg.universe, cfg.seed, cfg.shard);
        uninterrupted.update_batch(&chunk_a);
        uninterrupted.update_batch(&chunk_b);
        assert_eq!(
            recovered_snapshot,
            uninterrupted.snapshot(),
            "turnstile recovery + replay drifted from the uninterrupted run"
        );
        let _ = StrictTurnstileF0Sampler::restore(&recovered_snapshot).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
