//! The coordinator's durable job manifest: the [`JobSpec`] plus the
//! coordinator's routing position and per-shard replay buffers, sealed as
//! one codec snapshot (`tag::JOB_MANIFEST`) and checkpointed through the
//! same delta chain machinery workers use.
//!
//! ## Write-before-barrier
//!
//! The manifest for checkpoint barrier `E` is appended (and fsynced)
//! to the coordinator's chain **before** the barrier is sent. That
//! ordering is the whole crash-consistency argument: a worker can only
//! have durable state at epoch `E` if barrier `E` was sent, and barrier
//! `E` is only sent after a manifest recording the exact stream cut of
//! `E` (`chunks_routed`) plus every chunk not yet covered by an acked
//! checkpoint (`replay`) is on disk. So on resume, whatever epoch `e ≤ E`
//! each worker recovered to, re-sending the buffered chunks tagged `≥ e`
//! and then re-routing the deterministic stream from chunk
//! `chunks_routed` reproduces every shard byte for byte. Chunks the dead
//! coordinator routed *after* writing the manifest died with it (pipe
//! workers die on EOF; socket workers discard in-memory state and
//! re-recover from disk on every new connection), so nothing is double
//! counted.
//!
//! The manifest is generic over the shard update type `U` (unit items or
//! signed turnstile updates) because the replay buffers embed raw
//! updates; [`peek_spec`] reads just the spec prefix so a resuming
//! coordinator can learn the sampler kind before it knows `U`.

use tps_streams::codec::{seal, tag, unseal, CodecError, SnapshotReader, SnapshotWriter};
use tps_streams::wire::IngestPayload;

use crate::config::{get_str, put_str, JobSpec};

/// One shard's durable coordinator-side state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState<U> {
    /// The last checkpoint epoch this shard acked (its chain is durable
    /// at least to here).
    pub acked_epoch: u64,
    /// The worker's endpoint (`host:port`) for socket transports — how a
    /// resumed coordinator finds the still-running listener. `None` for
    /// pipe workers (they die with the coordinator and are respawned).
    pub endpoint: Option<String>,
    /// Chunks sent since the last acked checkpoint, each tagged with the
    /// epoch of the last barrier sent before it — the replay buffer,
    /// exactly as the in-memory protocol keeps it.
    pub replay: Vec<(u64, Vec<U>)>,
}

/// The coordinator's durable state: config plus routing position plus
/// replay buffers. One manifest is appended per checkpoint barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest<U> {
    /// The full job description (the manifest *is* the config snapshot).
    pub spec: JobSpec,
    /// The checkpoint epoch this manifest precedes (see module docs).
    pub epoch: u64,
    /// Stream chunks routed so far — the cut of barrier `epoch`; a
    /// resumed coordinator regenerates the deterministic stream and
    /// continues from exactly this chunk.
    pub chunks_routed: u64,
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardState<U>>,
}

impl<U: IngestPayload> Manifest<U> {
    /// Seals the manifest as one snapshot (`tag::JOB_MANIFEST`).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_tag(tag::JOB_MANIFEST);
        self.spec.encode_into(&mut w);
        w.put_u64(self.epoch);
        w.put_u64(self.chunks_routed);
        w.put_len(self.shards.len());
        for shard in &self.shards {
            w.put_u64(shard.acked_epoch);
            match &shard.endpoint {
                None => w.put_u8(0),
                Some(endpoint) => {
                    w.put_u8(1);
                    put_str(&mut w, endpoint);
                }
            }
            w.put_len(shard.replay.len());
            for (epoch_tag, items) in &shard.replay {
                w.put_u64(*epoch_tag);
                w.put_len(items.len());
                for item in items {
                    U::put(&mut w, item);
                }
            }
        }
        seal(tag::JOB_MANIFEST, &w.into_bytes())
    }

    /// Decodes a sealed manifest.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let payload = unseal(tag::JOB_MANIFEST, bytes)?;
        let mut r = SnapshotReader::new(payload);
        r.expect_tag(tag::JOB_MANIFEST)?;
        let spec = JobSpec::decode_from(&mut r)?;
        let epoch = r.get_u64()?;
        let chunks_routed = r.get_u64()?;
        let shard_count = r.get_len(9)?;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let acked_epoch = r.get_u64()?;
            let endpoint = match r.get_u8()? {
                0 => None,
                1 => Some(get_str(&mut r)?),
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "shard endpoint option flag",
                    })
                }
            };
            let buffered = r.get_len(9)?;
            let mut replay = Vec::with_capacity(buffered);
            for _ in 0..buffered {
                let epoch_tag = r.get_u64()?;
                let len = r.get_len(U::WIRE_BYTES)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(U::get(&mut r)?);
                }
                replay.push((epoch_tag, items));
            }
            shards.push(ShardState {
                acked_epoch,
                endpoint,
                replay,
            });
        }
        r.finish()?;
        Ok(Self {
            spec,
            epoch,
            chunks_routed,
            shards,
        })
    }
}

/// Reads just the [`JobSpec`] prefix of a sealed manifest — enough for a
/// resuming coordinator to learn the sampler kind (and hence the update
/// type `U`) before fully decoding with [`Manifest::decode`].
pub fn peek_spec(bytes: &[u8]) -> Result<JobSpec, CodecError> {
    let payload = unseal(tag::JOB_MANIFEST, bytes)?;
    let mut r = SnapshotReader::new(payload);
    r.expect_tag(tag::JOB_MANIFEST)?;
    JobSpec::decode_from(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SamplerKind, ServiceBuilder, TransportKind};
    use tps_streams::{Item, SignedUpdate};

    fn spec(kind: SamplerKind) -> JobSpec {
        ServiceBuilder::new(kind, 2)
            .seed(99)
            .count(5_000)
            .chunk(250)
            .checkpoint_dir("/tmp/tps-manifest-test")
            .transport(TransportKind::Tcp {
                endpoints: Vec::new(),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn manifest_round_trips_with_unit_items() {
        let manifest = Manifest::<Item> {
            spec: spec(SamplerKind::L2),
            epoch: 7,
            chunks_routed: 21,
            shards: vec![
                ShardState {
                    acked_epoch: 6,
                    endpoint: Some("127.0.0.1:40123".into()),
                    replay: vec![(6, vec![1, 2, 3]), (6, vec![9])],
                },
                ShardState {
                    acked_epoch: 6,
                    endpoint: None,
                    replay: Vec::new(),
                },
            ],
        };
        let bytes = manifest.encode();
        assert_eq!(Manifest::<Item>::decode(&bytes).unwrap(), manifest);
        assert_eq!(peek_spec(&bytes).unwrap(), manifest.spec);
    }

    #[test]
    fn manifest_round_trips_with_signed_updates() {
        let manifest = Manifest::<SignedUpdate> {
            spec: spec(SamplerKind::Turnstile),
            epoch: 3,
            chunks_routed: 9,
            shards: vec![ShardState {
                acked_epoch: 2,
                endpoint: None,
                replay: vec![(
                    2,
                    vec![
                        SignedUpdate { item: 4, delta: 1 },
                        SignedUpdate { item: 4, delta: -1 },
                    ],
                )],
            }],
        };
        let bytes = manifest.encode();
        assert_eq!(Manifest::<SignedUpdate>::decode(&bytes).unwrap(), manifest);
    }

    /// A coordinator killed mid-append leaves a torn frame at the tail of
    /// its manifest chain; recovery must truncate it and resume from the
    /// last *complete* manifest, which still decodes.
    #[test]
    fn torn_manifest_tail_recovers_to_last_complete_manifest() {
        use crate::store::CheckpointStore;
        use tps_streams::codec::delta::IncrementalCheckpointer;

        let dir = std::env::temp_dir().join(format!("tps-manifest-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::for_coordinator(&dir);

        let mut writer = IncrementalCheckpointer::new();
        let mut manifest = Manifest::<Item> {
            spec: spec(SamplerKind::L2),
            epoch: 0,
            chunks_routed: 0,
            shards: vec![ShardState {
                acked_epoch: 0,
                endpoint: Some("127.0.0.1:40123".into()),
                replay: Vec::new(),
            }],
        };
        for seq in 1..=3 {
            manifest.epoch = seq;
            manifest.chunks_routed = seq * 4;
            manifest.shards[0].replay = vec![(seq, vec![seq, seq + 1])];
            let frame = writer.checkpoint_bytes(manifest.encode(), seq);
            store.append_frame(frame.bytes()).unwrap();
        }

        // Tear the tail: a length prefix promising more bytes than exist,
        // as a crash between the two writes of an append would leave.
        {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(store.path())
                .unwrap();
            file.write_all(&512u64.to_le_bytes()).unwrap();
            file.write_all(&[0xAB; 17]).unwrap();
        }

        let chain = store.recover().unwrap().expect("chain survives the tear");
        assert_eq!(chain.epoch, 3);
        let recovered = Manifest::<Item>::decode(&chain.snapshot).unwrap();
        assert_eq!(recovered, manifest);
        // The torn tail is gone for good: appends continue cleanly.
        manifest.epoch = 4;
        let frame = writer.checkpoint_bytes(manifest.encode(), 4);
        store.append_frame(frame.bytes()).unwrap();
        assert_eq!(store.recover().unwrap().unwrap().epoch, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifests_fail_typed() {
        let manifest = Manifest::<Item> {
            spec: spec(SamplerKind::F0),
            epoch: 1,
            chunks_routed: 3,
            shards: vec![ShardState {
                acked_epoch: 0,
                endpoint: None,
                replay: vec![(0, vec![1, 2, 3])],
            }],
        };
        let mut bytes = manifest.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(Manifest::<Item>::decode(&bytes).is_err());
        // Wrong payload type: decoding unit items as signed updates trips
        // the codec (length arithmetic no longer closes), never panics.
        let signed = Manifest::<SignedUpdate>::decode(&manifest.encode());
        assert!(signed.is_err());
    }
}
