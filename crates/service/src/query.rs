//! The non-stalling query plane: a dedicated accept thread plus one
//! detached handler thread per client, serving merged samples from a
//! shared **snapshot cache** so that no client — however slow to read its
//! reply — can ever hold up an ingest barrier.
//!
//! ## The published-cut slot
//!
//! The coordinator publishes every consistent cut it collects (checkpoint
//! barriers upgraded to [`BarrierKind::CheckpointPublish`], plus every
//! explicit query barrier) into a versioned slot: an ArcSwap-style cell
//! hand-rolled as `Mutex<Option<Arc<PublishedCut>>>` — the lock is held
//! only for the pointer swap/clone, never across a merge or a socket
//! write, so it is uncontended in practice. `live_epoch` tracks the
//! newest barrier epoch the ingest loop has completed; a cached query is
//! served from the slot iff `live_epoch - cut.epoch ≤ max_epochs_stale`.
//!
//! ## Consistent queries without stalling ingest
//!
//! A [`QueryConsistency::Consistent`] query (or a cached one whose bound
//! the slot cannot meet) posts a [`CutRequest`] to the coordinator over
//! an mpsc channel and blocks **in its own handler thread** on the
//! private reply channel. The ingest loop drains pending requests at
//! chunk boundaries: one query barrier serves *all* of them with the same
//! `Arc<PublishedCut>`. The barrier itself never touches a client socket
//! — a wedged client blocks only its own detached thread.
//!
//! ## Merging off the barrier path
//!
//! Merge coins are deterministic (`seed ^ MERGE_SEED_SALT`, fresh per
//! merge), so *any* thread reproduces the canonical merged answer from a
//! cut's snapshots. Handler threads do their own merging, memoized per
//! epoch, keeping the coordinator's barrier loop free of restore/merge
//! work entirely.

use std::io::{self, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tps_streams::wire::transport::{Connection, TcpConnection, TcpServerListener};
use tps_streams::wire::{reject, WireMessage};
use tps_streams::QueryConsistency;

use crate::config::SamplerKind;
use crate::coordinator::{merge_report, QueryReport};

/// One consistent cut, as collected by an ingest barrier: the per-shard
/// sealed snapshots plus the coordinates that pin where in the stream the
/// cut was taken. Shared between the ingest loop and every query handler
/// via `Arc` — snapshots are never copied per client.
#[derive(Debug)]
pub struct PublishedCut {
    /// The barrier epoch that produced the cut.
    pub epoch: u64,
    /// Chunks routed when the cut was taken.
    pub chunks_routed: u64,
    /// Stream items routed when the cut was taken (the prefix length).
    pub processed: u64,
    /// Per-shard sealed snapshots, in shard order.
    pub snapshots: Vec<Vec<u8>>,
}

/// A handler thread's demand for a fresh consistent cut, drained by the
/// ingest loop at the next chunk boundary. The reply channel is private
/// to the requesting handler; the coordinator answers every pending
/// request with the same `Arc`.
pub struct CutRequest {
    reply: Sender<Arc<PublishedCut>>,
}

impl CutRequest {
    /// Answers the request. A dead handler (client hung up) just drops
    /// the receiver; that is not the coordinator's problem.
    pub fn fulfil(self, cut: &Arc<PublishedCut>) {
        let _ = self.reply.send(Arc::clone(cut));
    }
}

/// Query-plane counters, all updated with relaxed atomics from handler
/// threads and snapshotted by [`QueryPlane::stats`]. The spirit of
/// `tps_core::RuntimeStats`, one layer up.
#[derive(Debug, Default)]
struct PlaneCounters {
    served: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    latency_total_micros: AtomicU64,
    latency_max_micros: AtomicU64,
}

/// A point-in-time copy of the plane's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryPlaneStats {
    /// Queries answered with a `QueryReply`.
    pub served: u64,
    /// Cached queries answered straight from the published slot.
    pub cache_hits: u64,
    /// Cached queries whose staleness bound forced a consistent cut
    /// (plus every explicitly consistent query).
    pub cache_misses: u64,
    /// Queries answered with a typed `QueryRejected`.
    pub rejected: u64,
    /// Sum of per-query latencies, in microseconds.
    pub latency_total_micros: u64,
    /// Worst single-query latency, in microseconds.
    pub latency_max_micros: u64,
}

impl QueryPlaneStats {
    /// Mean per-query latency in microseconds (0 when nothing served).
    pub fn latency_mean_micros(&self) -> u64 {
        self.latency_total_micros
            .checked_div(self.served)
            .unwrap_or(0)
    }
}

/// State shared by the ingest loop, the accept thread and every handler.
struct Shared {
    kind: SamplerKind,
    seed: u64,
    /// The hand-rolled ArcSwap slot holding the newest published cut.
    slot: Mutex<Option<Arc<PublishedCut>>>,
    /// Merged report for the cut at a given epoch, computed at most once
    /// however many clients ask (merging is deterministic).
    memo: Mutex<Option<(u64, QueryReport)>>,
    /// Newest barrier epoch the ingest loop has completed.
    live_epoch: AtomicU64,
    /// Set by [`QueryPlane::finish`]; the accept thread exits and late
    /// escalations are rejected instead of queued.
    shutdown: AtomicBool,
    counters: PlaneCounters,
    /// Handler → coordinator demands for a fresh consistent cut.
    requests: Sender<CutRequest>,
}

impl Shared {
    fn load_slot(&self) -> Option<Arc<PublishedCut>> {
        self.slot.lock().expect("slot lock").clone()
    }

    /// The memoized canonical merged report for `cut`.
    fn merged(&self, cut: &PublishedCut) -> io::Result<QueryReport> {
        let mut memo = self.memo.lock().expect("memo lock");
        if let Some((epoch, report)) = memo.as_ref() {
            if *epoch == cut.epoch {
                return Ok(report.clone());
            }
        }
        let report = merge_report(self.kind, &cut.snapshots, self.seed, cut.processed)?;
        *memo = Some((cut.epoch, report.clone()));
        Ok(report)
    }
}

/// How long the accept thread sleeps (at most) between shutdown checks;
/// `accept_within` backs off internally, so an idle plane costs a handful
/// of polls per second.
const ACCEPT_SLICE: Duration = Duration::from_millis(50);

/// The coordinator's handle on the query plane. Constructed with
/// [`QueryPlane::start`]; fed via [`QueryPlane::publish`] and the
/// [`CutRequest`] channel; torn down with [`QueryPlane::finish`].
pub struct QueryPlane {
    shared: Arc<Shared>,
    requests: Receiver<CutRequest>,
    accept_thread: Option<JoinHandle<()>>,
}

impl QueryPlane {
    /// Binds `addr`, announces `query-listening <bound-addr>` on stdout
    /// (flushed, so spawning tests can read it), and spawns the dedicated
    /// accept thread. Handler threads are detached: a client that wedges
    /// mid-reply leaks one parked thread, never a barrier.
    pub fn start(addr: &str, kind: SamplerKind, seed: u64) -> io::Result<Self> {
        let listener = TcpServerListener::bind(addr)
            .map_err(|e| io::Error::new(e.kind(), format!("query listener {addr}: {e}")))?;
        println!("query-listening {}", listener.local_addr()?);
        io::stdout().flush()?;
        let (requests_tx, requests_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            kind,
            seed,
            slot: Mutex::new(None),
            memo: Mutex::new(None),
            live_epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            counters: PlaneCounters::default(),
            requests: requests_tx,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("tps-query-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Self {
            shared,
            requests: requests_rx,
            accept_thread: Some(accept_thread),
        })
    }

    /// Publishes a consistent cut into the slot and advances the live
    /// epoch. Called by the ingest loop right after collecting barrier
    /// acks — the only synchronisation is the pointer swap.
    pub fn publish(&self, cut: PublishedCut) -> Arc<PublishedCut> {
        let cut = Arc::new(cut);
        *self.shared.slot.lock().expect("slot lock") = Some(Arc::clone(&cut));
        self.shared.live_epoch.store(cut.epoch, Ordering::Release);
        cut
    }

    /// Records that the ingest loop completed a barrier at `epoch`
    /// *without* publishing its cut (a plain checkpoint on a plane-less
    /// path never calls this; a publishing path always prefers
    /// [`Self::publish`]). Advancing the live epoch is what ages the
    /// published slot for staleness bounds.
    pub fn advance_epoch(&self, epoch: u64) {
        self.shared.live_epoch.store(epoch, Ordering::Release);
    }

    /// Drains every consistent-cut demand that is waiting right now,
    /// without blocking. The ingest loop calls this at chunk boundaries:
    /// a non-empty answer is worth exactly one query barrier.
    pub fn take_requests(&self) -> Vec<CutRequest> {
        let mut pending = Vec::new();
        while let Ok(request) = self.requests.try_recv() {
            pending.push(request);
        }
        pending
    }

    /// Blocks until at least one consistent-cut demand arrives, then
    /// drains the rest. Deterministic-test hook (`--await-query-after-chunks`):
    /// "a query landed at exactly this cut" becomes a fact, not a race.
    pub fn wait_for_request(&self) -> io::Result<Vec<CutRequest>> {
        let first = self.requests.recv().map_err(|_| {
            io::Error::new(
                io::ErrorKind::BrokenPipe,
                "query plane hung up while the coordinator awaited a query",
            )
        })?;
        let mut pending = vec![first];
        pending.extend(self.take_requests());
        Ok(pending)
    }

    /// A point-in-time copy of the plane's counters.
    pub fn stats(&self) -> QueryPlaneStats {
        let c = &self.shared.counters;
        QueryPlaneStats {
            served: c.served.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            latency_total_micros: c.latency_total_micros.load(Ordering::Relaxed),
            latency_max_micros: c.latency_max_micros.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, joins the accept thread, and logs the counter
    /// summary to stderr. Handler threads are *not* joined — they hold
    /// only an `Arc` of shared state and their own socket, so a stalled
    /// client cannot delay job completion; late escalations get a typed
    /// `QueryRejected` because the request channel keeps working until
    /// the plane is dropped.
    pub fn finish(mut self) -> QueryPlaneStats {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let stats = self.stats();
        eprintln!(
            "query-plane: served={} cache_hits={} cache_misses={} rejected={} \
             latency_mean_us={} latency_max_us={}",
            stats.served,
            stats.cache_hits,
            stats.cache_misses,
            stats.rejected,
            stats.latency_mean_micros(),
            stats.latency_max_micros,
        );
        stats
    }
}

impl Drop for QueryPlane {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// The dedicated accept loop: short bounded waits (so shutdown is
/// noticed promptly) with `accept_within`'s internal backoff keeping an
/// idle plane cheap; each accepted client gets a detached handler thread.
fn accept_loop(listener: TcpServerListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept_within(ACCEPT_SLICE) {
            Ok(Some(conn)) => {
                let handler_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("tps-query-handler".into())
                    .spawn(move || handle_client(conn, handler_shared));
                if let Err(e) = spawned {
                    eprintln!("query-plane: cannot spawn handler: {e}");
                }
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("query-plane: accept failed: {e}");
                break;
            }
        }
    }
}

/// Serves one client conversation end to end in its own thread. Errors
/// are logged, never propagated — a broken client is its own problem.
fn handle_client(mut conn: TcpConnection, shared: Arc<Shared>) {
    if let Err(e) = serve_one(&mut conn, &shared) {
        eprintln!("query-plane: client failed: {e}");
    }
}

fn serve_one(conn: &mut TcpConnection, shared: &Shared) -> io::Result<()> {
    // Server-first Hello: the client learns the protocol version and the
    // CACHED_QUERY capability bit before committing to its options.
    let live = shared.live_epoch.load(Ordering::Acquire);
    conn.send(&WireMessage::hello(0, live))?;
    let options = match conn.recv() {
        Ok(Some(WireMessage::Query { options })) => options,
        Ok(Some(other)) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("query client sent {other:?}"),
            ))
        }
        Ok(None) => return Ok(()), // dialed and hung up; nothing to serve
        Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    };

    let start = Instant::now();
    let (cut, cached) = match options.consistency {
        QueryConsistency::Cached { max_epochs_stale } => {
            let live = shared.live_epoch.load(Ordering::Acquire);
            match shared.load_slot() {
                Some(cut) if live.saturating_sub(cut.epoch) <= max_epochs_stale => (cut, true),
                // Slot empty or too stale: escalate to a consistent cut.
                _ => match request_cut(shared) {
                    Some(cut) => (cut, false),
                    None => {
                        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        return conn.send(&WireMessage::QueryRejected {
                            code: reject::STALE,
                            detail: format!(
                                "no published cut within {max_epochs_stale} epochs of \
                                 live epoch {live}, and the job is no longer running"
                            ),
                        });
                    }
                },
            }
        }
        QueryConsistency::Consistent => match request_cut(shared) {
            Some(cut) => (cut, false),
            None => {
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return conn.send(&WireMessage::QueryRejected {
                    code: reject::CLOSED,
                    detail: "the job is no longer running; no consistent cut available".into(),
                });
            }
        },
    };

    if cached {
        shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    // Merge in *this* thread (memoized per epoch): the barrier loop never
    // restores or merges for the query plane.
    let report = shared.merged(&cut)?;
    conn.send(&WireMessage::QueryReply {
        processed: report.processed,
        merged_fnv: report.merged_fnv,
        epoch: cut.epoch,
        cut: cut.chunks_routed,
        cached,
        sample: report.sample,
    })?;

    let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let c = &shared.counters;
    c.served.fetch_add(1, Ordering::Relaxed);
    c.latency_total_micros.fetch_add(micros, Ordering::Relaxed);
    c.latency_max_micros.fetch_max(micros, Ordering::Relaxed);
    eprintln!(
        "query-plane: served epoch={} cut={} cached={} latency_us={}",
        cut.epoch, cut.chunks_routed, cached, micros
    );
    Ok(())
}

/// Posts a consistent-cut demand to the ingest loop and blocks (in the
/// handler's thread only) until it is fulfilled at the next chunk
/// boundary. `None` when the coordinator is gone or shutting down.
fn request_cut(shared: &Shared) -> Option<Arc<PublishedCut>> {
    if shared.shutdown.load(Ordering::Acquire) {
        // The final cut is always published before shutdown; a cached
        // query already found the slot unsatisfiable, and no new barrier
        // will ever run.
        return None;
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    shared.requests.send(CutRequest { reply: reply_tx }).ok()?;
    reply_rx.recv().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An ephemeral-port plane; the full socket conversation is covered
    /// by the smoke suite, so these unit tests exercise the slot,
    /// staleness and request-channel logic directly.
    fn plane_for_test() -> QueryPlane {
        QueryPlane::start("127.0.0.1:0", SamplerKind::L2, 7).unwrap()
    }

    fn cut(epoch: u64) -> PublishedCut {
        PublishedCut {
            epoch,
            chunks_routed: epoch * 3,
            processed: epoch * 3_000,
            snapshots: vec![Vec::new()],
        }
    }

    #[test]
    fn publish_advances_the_live_epoch_and_the_slot() {
        let plane = plane_for_test();
        assert!(plane.shared.load_slot().is_none());
        plane.publish(cut(4));
        let held = plane.shared.load_slot().unwrap();
        assert_eq!(held.epoch, 4);
        assert_eq!(plane.shared.live_epoch.load(Ordering::Acquire), 4);
        // Advancing the epoch without publishing ages the slot.
        plane.advance_epoch(9);
        assert_eq!(plane.shared.live_epoch.load(Ordering::Acquire), 9);
        assert_eq!(plane.shared.load_slot().unwrap().epoch, 4);
        plane.finish();
    }

    #[test]
    fn staleness_decision_matches_the_bound() {
        let plane = plane_for_test();
        plane.publish(cut(5));
        plane.advance_epoch(8);
        let live = plane.shared.live_epoch.load(Ordering::Acquire);
        let slot = plane.shared.load_slot().unwrap();
        // live - cut = 3: a bound of 3 serves the slot, a bound of 2
        // escalates.
        assert!(live.saturating_sub(slot.epoch) <= 3);
        assert!(live.saturating_sub(slot.epoch) > 2);
        plane.finish();
    }

    #[test]
    fn cut_requests_round_trip_through_the_channel() {
        let plane = plane_for_test();
        let shared = Arc::clone(&plane.shared);
        let asker = std::thread::spawn(move || request_cut(&shared).map(|c| c.epoch));
        // The ingest loop's side: block for the demand, serve it with a
        // published cut.
        let pending = plane.wait_for_request().unwrap();
        assert_eq!(pending.len(), 1);
        let published = plane.publish(cut(2));
        for request in pending {
            request.fulfil(&published);
        }
        assert_eq!(asker.join().unwrap(), Some(2));
        // After shutdown, demands are refused instead of queued forever.
        let stats = plane.finish();
        assert_eq!(stats.served, 0, "no socket clients in this test");
    }

    #[test]
    fn shutdown_refuses_new_cut_requests() {
        let plane = plane_for_test();
        let shared = Arc::clone(&plane.shared);
        plane.finish();
        assert!(request_cut(&shared).is_none());
    }
}
