//! The `tps-service` binary: `worker`, `coordinator` and `reference`
//! subcommands (see the crate docs for the architecture).

use std::path::PathBuf;
use std::process::ExitCode;

use tps_service::config::{JobConfig, KillSpec, SamplerKind, WorkerConfig};
use tps_service::{coordinator, worker};

fn usage() -> String {
    "usage:\n  \
     tps-service worker --shard N --sampler l2|f0|g|turnstile --universe U --seed S \
     --checkpoint-dir DIR\n  \
     tps-service coordinator --workers K --sampler l2|f0|g|turnstile --universe U --seed S \
     --count N --chunk C --checkpoint-every E --checkpoint-dir DIR \
     [--kill-shard J --kill-after-chunks M] [--worker-exe PATH]\n  \
     tps-service reference --workers K --sampler l2|f0|g|turnstile --universe U --seed S --count N"
        .to_string()
}

/// Tiny `--key value` parser: every flag takes exactly one value.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {key:?}"))?;
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
        }
        Ok(Self(pairs))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.get(key)
            .ok_or_else(|| format!("missing --{key}"))?
            .parse()
            .map_err(|_| format!("--{key}: cannot parse value"))
    }

    fn optional<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{key}: cannot parse value"))
            })
            .transpose()
    }

    fn sampler(&self) -> Result<SamplerKind, String> {
        let spelled = self.get("sampler").ok_or("missing --sampler")?;
        SamplerKind::parse(spelled).ok_or_else(|| format!("unknown sampler kind {spelled:?}"))
    }
}

fn job_config(flags: &Flags, for_reference: bool) -> Result<JobConfig, String> {
    let kill_shard: Option<usize> = flags.optional("kill-shard")?;
    let kill_after: Option<u64> = flags.optional("kill-after-chunks")?;
    let kill = match (kill_shard, kill_after) {
        (Some(shard), Some(after_chunks)) => Some(KillSpec {
            shard,
            after_chunks,
        }),
        (None, None) => None,
        _ => return Err("--kill-shard and --kill-after-chunks go together".into()),
    };
    Ok(JobConfig {
        workers: flags.required("workers")?,
        sampler: flags.sampler()?,
        universe: flags.required("universe")?,
        seed: flags.required("seed")?,
        count: flags.required("count")?,
        chunk: if for_reference {
            flags.optional("chunk")?.unwrap_or(1)
        } else {
            flags.required("chunk")?
        },
        checkpoint_every: if for_reference {
            flags.optional("checkpoint-every")?.unwrap_or(1)
        } else {
            flags.required("checkpoint-every")?
        },
        checkpoint_dir: if for_reference {
            flags
                .optional::<PathBuf>("checkpoint-dir")?
                .unwrap_or_else(std::env::temp_dir)
        } else {
            flags.required("checkpoint-dir")?
        },
        kill,
        worker_exe: flags.optional("worker-exe")?,
    })
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => {
            let flags = Flags::parse(&args[1..])?;
            let cfg = WorkerConfig {
                shard: flags.required("shard")?,
                sampler: flags.sampler()?,
                universe: flags.required("universe")?,
                seed: flags.required("seed")?,
                checkpoint_dir: flags.required("checkpoint-dir")?,
            };
            worker::run(&cfg).map_err(|e| format!("worker {}: {e}", cfg.shard))
        }
        Some("coordinator") => {
            let flags = Flags::parse(&args[1..])?;
            let cfg = job_config(&flags, false)?;
            let report = coordinator::run_coordinator(&cfg).map_err(|e| e.to_string())?;
            println!("{report}");
            Ok(())
        }
        Some("reference") => {
            let flags = Flags::parse(&args[1..])?;
            let cfg = job_config(&flags, true)?;
            println!("{}", coordinator::run_reference(&cfg));
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
