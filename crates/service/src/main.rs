//! The `tps-service` binary: `worker`, `coordinator`, `resume`,
//! `reference` and `query` subcommands (see the crate docs for the
//! architecture). This is a thin parser: flags feed a [`ServiceBuilder`],
//! and everything downstream works on the typed [`JobSpec`].

use std::path::PathBuf;
use std::process::ExitCode;

use tps_service::config::{
    DieSpec, FaultPlan, KillSpec, QueryPlan, SamplerKind, ServiceBuilder, TransportKind,
    WorkerConfig,
};
use tps_service::{client, coordinator, worker, QueryOptions};

fn usage() -> String {
    "usage:\n  \
     tps-service worker --shard N --sampler l2|f0|g|turnstile --universe U --seed S \
     --checkpoint-dir DIR [--listen ADDR]\n  \
     tps-service coordinator --workers K --sampler l2|f0|g|turnstile --universe U --seed S \
     --count N --chunk C --checkpoint-every E --checkpoint-dir DIR \
     [--transport pipe|tcp] [--endpoints A,B,..] [--worker-exe PATH] \
     [--kill-shard J --kill-after-chunks M] [--die-after-chunks M [--die-mid-barrier true]] \
     [--query-listen ADDR [--await-query-after-chunks M]]\n  \
     tps-service resume --checkpoint-dir DIR [--worker-exe PATH] [--query-listen ADDR]\n  \
     tps-service reference --workers K --sampler l2|f0|g|turnstile --universe U --seed S --count N\n  \
     tps-service query --connect ADDR [--cached MAX_EPOCHS_STALE] [--timeout-ms T] \
     [--dial-attempts N]"
        .to_string()
}

/// Tiny `--key value` parser: every flag takes exactly one value.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got {key:?}"))?;
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
        }
        Ok(Self(pairs))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.get(key)
            .ok_or_else(|| format!("missing --{key}"))?
            .parse()
            .map_err(|_| format!("--{key}: cannot parse value"))
    }

    fn optional<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{key}: cannot parse value"))
            })
            .transpose()
    }

    fn sampler(&self) -> Result<SamplerKind, String> {
        let spelled = self.get("sampler").ok_or("missing --sampler")?;
        SamplerKind::parse(spelled).ok_or_else(|| format!("unknown sampler kind {spelled:?}"))
    }

    fn transport(&self) -> Result<TransportKind, String> {
        let endpoints: Vec<String> = self
            .get("endpoints")
            .map(|list| list.split(',').map(str::to_string).collect())
            .unwrap_or_default();
        match self.get("transport") {
            None if endpoints.is_empty() => Ok(TransportKind::Pipe),
            None | Some("tcp") => Ok(TransportKind::Tcp { endpoints }),
            Some("pipe") if endpoints.is_empty() => Ok(TransportKind::Pipe),
            Some("pipe") => Err("--endpoints makes no sense with --transport pipe".into()),
            Some(other) => Err(format!("unknown transport {other:?}")),
        }
    }

    fn fault_plan(&self) -> Result<FaultPlan, String> {
        let kill = match (
            self.optional("kill-shard")?,
            self.optional("kill-after-chunks")?,
        ) {
            (Some(shard), Some(after_chunks)) => Some(KillSpec {
                shard,
                after_chunks,
            }),
            (None, None) => None,
            _ => return Err("--kill-shard and --kill-after-chunks go together".into()),
        };
        let die = self
            .optional("die-after-chunks")?
            .map(|after_chunks| -> Result<DieSpec, String> {
                Ok(DieSpec {
                    after_chunks,
                    mid_barrier: self.optional("die-mid-barrier")?.unwrap_or(false),
                })
            })
            .transpose()?;
        Ok(FaultPlan { kill, die })
    }

    fn query_plan(&self) -> Result<QueryPlan, String> {
        Ok(QueryPlan {
            listen: self.optional("query-listen")?,
            await_after_chunks: self.optional("await-query-after-chunks")?,
        })
    }
}

fn build_spec(flags: &Flags, for_reference: bool) -> Result<tps_service::JobSpec, String> {
    let mut builder = ServiceBuilder::new(flags.sampler()?, flags.required("workers")?)
        .universe(flags.required("universe")?)
        .seed(flags.required("seed")?)
        .count(flags.required("count")?)
        .transport(flags.transport()?);
    if for_reference {
        // The reference never checkpoints or spawns; defaults suffice.
        if let Some(dir) = flags.optional::<PathBuf>("checkpoint-dir")? {
            builder = builder.checkpoint_dir(dir);
        }
    } else {
        builder = builder
            .chunk(flags.required("chunk")?)
            .checkpoint_every(flags.required("checkpoint-every")?)
            .checkpoint_dir(flags.required::<PathBuf>("checkpoint-dir")?);
    }
    if let Some(exe) = flags.optional::<PathBuf>("worker-exe")? {
        builder = builder.worker_exe(exe);
    }
    builder.build()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => {
            let flags = Flags::parse(&args[1..])?;
            let cfg = WorkerConfig {
                shard: flags.required("shard")?,
                sampler: flags.sampler()?,
                universe: flags.required("universe")?,
                seed: flags.required("seed")?,
                checkpoint_dir: flags.required("checkpoint-dir")?,
                listen: flags.optional("listen")?,
            };
            worker::run(&cfg).map_err(|e| format!("worker {}: {e}", cfg.shard))
        }
        Some("coordinator") => {
            let flags = Flags::parse(&args[1..])?;
            let spec = build_spec(&flags, false)?;
            let report = coordinator::run_job(&spec, &flags.fault_plan()?, &flags.query_plan()?)
                .map_err(|e| e.to_string())?;
            println!("{report}");
            Ok(())
        }
        Some("resume") => {
            let flags = Flags::parse(&args[1..])?;
            let dir: PathBuf = flags.required("checkpoint-dir")?;
            let exe = flags.optional::<PathBuf>("worker-exe")?;
            let report = coordinator::resume_job(&dir, exe, &flags.query_plan()?)
                .map_err(|e| e.to_string())?;
            println!("{report}");
            Ok(())
        }
        Some("reference") => {
            let flags = Flags::parse(&args[1..])?;
            let spec = build_spec(&flags, true)?;
            println!("{}", coordinator::run_reference(&spec));
            Ok(())
        }
        Some("query") => {
            let flags = Flags::parse(&args[1..])?;
            let addr: String = flags.required("connect")?;
            let options = match flags.optional("cached")? {
                Some(max_epochs_stale) => QueryOptions::cached(max_epochs_stale),
                None => QueryOptions::consistent(),
            };
            let mut client = client::QueryClient::new(addr);
            if let Some(ms) = flags.optional::<u64>("timeout-ms")? {
                client = client.read_timeout(std::time::Duration::from_millis(ms));
            }
            if let Some(attempts) = flags.optional("dial-attempts")? {
                client = client.dial_attempts(attempts);
            }
            let snapshot = client.query(&options).map_err(|e| e.to_string())?;
            // Metadata first, report line *last*: everything that parses
            // coordinator output takes the final line.
            println!(
                "query-cut epoch={} cut={} cached={}",
                snapshot.epoch, snapshot.cut, snapshot.cached
            );
            println!("{}", snapshot.value);
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
