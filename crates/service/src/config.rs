//! Shared configuration: which sampler family a job runs, how shards are
//! seeded, the deterministic workload both the service and the
//! single-process reference consume — and the typed [`JobSpec`] +
//! [`ServiceBuilder`] that every entry point (CLI, library, manifest
//! recovery) funnels through.
//!
//! Everything here is used by *both* sides of the byte-equality contract
//! (worker processes and the in-process reference), so it lives in one
//! place: a seed derivation that drifts between the two would break the
//! merged-query equality the smoke test pins.
//!
//! [`JobSpec`] is codec-serializable (same [`SnapshotWriter`] discipline
//! as every other persistent structure), which is what lets the
//! coordinator's durable manifest *be* the config snapshot: a resumed
//! coordinator reconstructs the full job — sampler kind, workload seed,
//! transport, chunking — from its chain alone.

use std::path::PathBuf;

use tps_core::f0::TrulyPerfectF0Sampler;
use tps_core::framework::MeasureNormalizer;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::turnstile::StrictTurnstileF0Sampler;
use tps_core::TrulyPerfectGSampler;
use tps_random::{StreamRng, Xoshiro256};
use tps_streams::codec::{CodecError, SnapshotReader, SnapshotWriter};
use tps_streams::generators::zipfian_stream;
use tps_streams::measure::Huber;
use tps_streams::{Item, SignedUpdate};

/// The Huber G-sampler variant the service's `g` kind runs.
pub type HuberSampler = TrulyPerfectGSampler<Huber, MeasureNormalizer<Huber>>;

/// Which sampler family the shards of a job instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Truly perfect `L_2` sampler ([`TrulyPerfectLpSampler`], `p = 2`).
    L2,
    /// Truly perfect `F_0` (support) sampler ([`TrulyPerfectF0Sampler`]).
    F0,
    /// Truly perfect Huber M-estimator sampler ([`HuberSampler`]).
    G,
    /// Strict-turnstile `F_0` sampler ([`StrictTurnstileF0Sampler`]): the
    /// shards consume *signed* updates from the deterministic
    /// insert/delete workload of [`job_signed_stream`].
    Turnstile,
}

impl SamplerKind {
    /// Parses the CLI spelling (`l2` | `f0` | `g` | `turnstile`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "l2" => Some(SamplerKind::L2),
            "f0" => Some(SamplerKind::F0),
            "g" => Some(SamplerKind::G),
            "turnstile" => Some(SamplerKind::Turnstile),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SamplerKind::L2 => "l2",
            SamplerKind::F0 => "f0",
            SamplerKind::G => "g",
            SamplerKind::Turnstile => "turnstile",
        }
    }

    /// Whether the kind's shards consume signed (turnstile) updates
    /// rather than unit insertions.
    pub fn is_turnstile(self) -> bool {
        matches!(self, SamplerKind::Turnstile)
    }
}

/// Failure probability the service's reservoir samplers are built with.
pub const DELTA: f64 = 0.1;

/// Instance count of the `g` kind's skip-ahead engine.
pub const G_INSTANCES: usize = 64;

/// The per-shard sampler seed. Reservoir samplers draw independently per
/// shard; the `F_0` kind deliberately ignores the shard index because its
/// merge law requires all shards to share one pre-drawn subset (see
/// `TrulyPerfectF0Sampler`'s merge docs).
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Shard `shard`'s `l2` sampler.
pub fn make_l2(universe: u64, seed: u64, shard: usize) -> TrulyPerfectLpSampler {
    TrulyPerfectLpSampler::new(2.0, universe, DELTA, shard_seed(seed, shard))
}

/// Shard `shard`'s `f0` sampler (shared seed — see [`shard_seed`]).
pub fn make_f0(universe: u64, seed: u64, _shard: usize) -> TrulyPerfectF0Sampler {
    TrulyPerfectF0Sampler::new(universe, DELTA, seed)
}

/// Shard `shard`'s `turnstile` sampler (shared seed, like `f0`: the
/// strict-turnstile sampler's merge law requires every shard to pre-draw
/// the same membership subset and the same syndrome evaluation points).
pub fn make_turnstile(universe: u64, seed: u64, _shard: usize) -> StrictTurnstileF0Sampler {
    StrictTurnstileF0Sampler::new(universe, seed)
}

/// Shard `shard`'s `g` (Huber) sampler.
pub fn make_g(_universe: u64, seed: u64, shard: usize) -> HuberSampler {
    let g = Huber::new(1.0);
    TrulyPerfectGSampler::with_instances(
        g,
        MeasureNormalizer::new(g),
        G_INSTANCES,
        shard_seed(seed, shard),
    )
}

/// Salt separating the workload RNG from the sampler seeds.
const STREAM_SALT: u64 = 0x57E4_0A4B_5F00_D5EE;

/// Zipf exponent of the job workload: skewed enough that one shard runs
/// hot (the regime delta checkpoints are built for).
pub const STREAM_ALPHA: f64 = 1.2;

/// The deterministic hot-shard Zipf workload for a job: both the
/// coordinator and the single-process reference generate exactly this.
pub fn job_stream(universe: u64, count: usize, seed: u64) -> Vec<Item> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ STREAM_SALT);
    zipfian_stream(&mut rng, universe, count, STREAM_ALPHA)
}

/// Extra salt separating the turnstile workload's delete coins from the
/// item draws.
const DELETE_SALT: u64 = 0xD31E_7E00_0000_0001;

/// The deterministic *strict-turnstile* workload for a `turnstile` job:
/// the [`job_stream`] Zipf items reinterpreted as signed updates, where
/// roughly a quarter of the touches delete one unit of an item that still
/// has positive count. Counts never go negative (the strict-turnstile
/// promise), and both the coordinator and the reference generate exactly
/// this sequence.
pub fn job_signed_stream(universe: u64, count: usize, seed: u64) -> Vec<SignedUpdate> {
    let items = job_stream(universe, count, seed);
    let mut coins = Xoshiro256::seed_from_u64(seed ^ STREAM_SALT ^ DELETE_SALT);
    let mut live: std::collections::HashMap<Item, i64> = std::collections::HashMap::new();
    items
        .into_iter()
        .map(|item| {
            let entry = live.entry(item).or_insert(0);
            let delete = *entry > 0 && coins.next_u64().is_multiple_of(4);
            let delta = if delete { -1 } else { 1 };
            *entry += delta;
            SignedUpdate { item, delta }
        })
        .collect()
}

/// Writes a short string (path, endpoint) into a snapshot: length prefix
/// then raw bytes.
pub(crate) fn put_str(w: &mut SnapshotWriter, s: &str) {
    w.put_len(s.len());
    for &b in s.as_bytes() {
        w.put_u8(b);
    }
}

/// Reads a string written by [`put_str`].
pub(crate) fn get_str(r: &mut SnapshotReader<'_>) -> Result<String, CodecError> {
    let len = r.get_len(1)?;
    let bytes = r.get_bytes(len)?;
    String::from_utf8(bytes).map_err(|_| CodecError::InvalidValue {
        what: "string field is not utf-8",
    })
}

/// How the coordinator reaches its workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportKind {
    /// Child processes over stdin/stdout pipes (single host, zero
    /// configuration; the coordinator owns the worker lifecycle).
    Pipe,
    /// TCP sockets. With an explicit endpoint list (one `host:port` per
    /// shard, in shard order) the coordinator dials externally-managed
    /// `worker --listen` processes; with an empty list it spawns loopback
    /// listen workers itself and reads their ephemeral ports.
    Tcp {
        /// Per-shard worker endpoints, or empty to self-spawn on loopback.
        endpoints: Vec<String>,
    },
}

impl TransportKind {
    /// The CLI spelling (`pipe` | `tcp`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TransportKind::Pipe => "pipe",
            TransportKind::Tcp { .. } => "tcp",
        }
    }

    fn encode_into(&self, w: &mut SnapshotWriter) {
        match self {
            TransportKind::Pipe => w.put_u8(0),
            TransportKind::Tcp { endpoints } => {
                w.put_u8(1);
                w.put_len(endpoints.len());
                for endpoint in endpoints {
                    put_str(w, endpoint);
                }
            }
        }
    }

    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(TransportKind::Pipe),
            1 => {
                let n = r.get_len(1)?;
                let mut endpoints = Vec::with_capacity(n);
                for _ in 0..n {
                    endpoints.push(get_str(r)?);
                }
                Ok(TransportKind::Tcp { endpoints })
            }
            _ => Err(CodecError::InvalidValue {
                what: "unknown transport kind",
            }),
        }
    }
}

/// The full, typed description of a job — everything a coordinator needs
/// to run (or *re-run*) it. Codec-serializable: the durable manifest
/// embeds the spec verbatim, so `coordinator --resume` needs nothing but
/// the chain directory.
///
/// Deliberately excluded: fault injection ([`KillSpec`]/[`DieSpec`]) and
/// query-plane wiring ([`QueryPlan`]) — those describe one *invocation*,
/// not the job, and persisting them would make a resumed coordinator
/// re-kill itself.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Number of worker processes (= shard count).
    pub workers: usize,
    /// Sampler family of every shard.
    pub sampler: SamplerKind,
    /// Universe size `n`.
    pub universe: u64,
    /// The job seed: workload, shard samplers and merge coins all derive
    /// from it deterministically.
    pub seed: u64,
    /// Total stream length.
    pub count: usize,
    /// Items per routed chunk (a chunk is scattered across all shards).
    pub chunk: usize,
    /// Checkpoint barrier cadence, in chunks.
    pub checkpoint_every: u64,
    /// Directory holding the per-shard checkpoint chains and the
    /// coordinator's manifest chain.
    pub checkpoint_dir: PathBuf,
    /// How the coordinator reaches its workers.
    pub transport: TransportKind,
    /// Path to the worker executable; defaults to the current executable.
    pub worker_exe: Option<PathBuf>,
}

impl JobSpec {
    /// Validates the invariants every entry point must hold.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("need at least one worker".into());
        }
        if self.chunk == 0 {
            return Err("chunk size must be positive".into());
        }
        if self.checkpoint_every == 0 {
            return Err("checkpoint cadence must be positive".into());
        }
        if let TransportKind::Tcp { endpoints } = &self.transport {
            if !endpoints.is_empty() && endpoints.len() != self.workers {
                return Err(format!(
                    "{} endpoints for {} workers (need one per shard, or none to self-spawn)",
                    endpoints.len(),
                    self.workers
                ));
            }
        }
        Ok(())
    }

    /// Serializes the spec into an open snapshot (the manifest's prefix).
    pub fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.workers);
        put_str(w, self.sampler.as_str());
        w.put_u64(self.universe);
        w.put_u64(self.seed);
        w.put_usize(self.count);
        w.put_usize(self.chunk);
        w.put_u64(self.checkpoint_every);
        put_str(w, &self.checkpoint_dir.to_string_lossy());
        self.transport.encode_into(w);
        match &self.worker_exe {
            None => w.put_u8(0),
            Some(path) => {
                w.put_u8(1);
                put_str(w, &path.to_string_lossy());
            }
        }
    }

    /// Reads a spec written by [`Self::encode_into`].
    pub fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        let workers = r.get_usize()?;
        let sampler = SamplerKind::parse(&get_str(r)?).ok_or(CodecError::InvalidValue {
            what: "unknown sampler kind",
        })?;
        let universe = r.get_u64()?;
        let seed = r.get_u64()?;
        let count = r.get_usize()?;
        let chunk = r.get_usize()?;
        let checkpoint_every = r.get_u64()?;
        let checkpoint_dir = PathBuf::from(get_str(r)?);
        let transport = TransportKind::decode_from(r)?;
        let worker_exe = match r.get_u8()? {
            0 => None,
            1 => Some(PathBuf::from(get_str(r)?)),
            _ => {
                return Err(CodecError::InvalidValue {
                    what: "worker_exe option flag",
                })
            }
        };
        Ok(Self {
            workers,
            sampler,
            universe,
            seed,
            count,
            chunk,
            checkpoint_every,
            checkpoint_dir,
            transport,
            worker_exe,
        })
    }
}

/// Fluent constructor for [`JobSpec`] — the one place job invariants are
/// enforced, mirroring `ShardedSamplerBuilder` in `tps_core`. The CLI is
/// a thin parser into this builder; library users skip the CLI entirely.
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    spec: JobSpec,
}

impl ServiceBuilder {
    /// A builder for a `kind` job over `workers` shards. Defaults: Zipf
    /// universe `2^12`, seed 0, 10 000 items in chunks of 1 000,
    /// checkpoint every 4 chunks, pipe transport, chains in a
    /// `tps-service` subdirectory of the system temp dir.
    pub fn new(kind: SamplerKind, workers: usize) -> Self {
        Self {
            spec: JobSpec {
                workers,
                sampler: kind,
                universe: 1 << 12,
                seed: 0,
                count: 10_000,
                chunk: 1_000,
                checkpoint_every: 4,
                checkpoint_dir: std::env::temp_dir().join("tps-service"),
                transport: TransportKind::Pipe,
                worker_exe: None,
            },
        }
    }

    /// Universe size `n` of every shard's sampler.
    pub fn universe(mut self, universe: u64) -> Self {
        self.spec.universe = universe;
        self
    }

    /// The job seed (workload, shard samplers, merge coins).
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Total stream length.
    pub fn count(mut self, count: usize) -> Self {
        self.spec.count = count;
        self
    }

    /// Items per routed chunk.
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.spec.chunk = chunk;
        self
    }

    /// Checkpoint barrier cadence, in chunks.
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.spec.checkpoint_every = every;
        self
    }

    /// Directory for the per-shard chains and the coordinator manifest.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spec.checkpoint_dir = dir.into();
        self
    }

    /// Worker transport (pipe or TCP).
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.spec.transport = transport;
        self
    }

    /// Worker executable override (tests point this at the built binary).
    pub fn worker_exe(mut self, exe: impl Into<PathBuf>) -> Self {
        self.spec.worker_exe = Some(exe.into());
        self
    }

    /// Validates and returns the finished spec.
    pub fn build(self) -> Result<JobSpec, String> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// Configuration of one worker process (the `worker` subcommand).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The shard index this process owns.
    pub shard: usize,
    /// Sampler family to instantiate.
    pub sampler: SamplerKind,
    /// Universe size `n` of the sampler.
    pub universe: u64,
    /// The job seed (per-shard seeds derive via [`shard_seed`]).
    pub seed: u64,
    /// Directory holding the per-shard checkpoint chains.
    pub checkpoint_dir: PathBuf,
    /// `Some(addr)` = bind a TCP listener there (the socket transport's
    /// worker mode, announced as `listening <addr>` on stdout); `None` =
    /// serve this process's stdin/stdout once (the pipe transport).
    pub listen: Option<String>,
}

/// A deterministic fault injection: kill one worker after the coordinator
/// has routed a given number of chunks, then respawn and recover it.
#[derive(Debug, Clone, Copy)]
pub struct KillSpec {
    /// The shard whose worker process is killed.
    pub shard: usize,
    /// Kill after this many stream chunks have been routed.
    pub after_chunks: u64,
}

/// A deterministic coordinator suicide: the coordinator aborts itself
/// (SIGKILL-equivalent — no drain, no cleanup) mid-job, so a `--resume`
/// invocation can prove the manifest chain reconstructs the run.
#[derive(Debug, Clone, Copy)]
pub struct DieSpec {
    /// Abort after this many stream chunks have been routed.
    pub after_chunks: u64,
    /// If set, don't abort at the chunk boundary: wait for the *next*
    /// checkpoint barrier, persist the manifest, send the barrier to every
    /// worker, and abort before collecting a single ack — the widest
    /// coordinator crash window. Only meaningful over TCP (pipe workers
    /// die with the coordinator mid-write).
    pub mid_barrier: bool,
}

/// Per-invocation fault plan. Never serialized into the manifest: a
/// resumed coordinator must finish the job, not re-die.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Kill-and-recover one worker.
    pub kill: Option<KillSpec>,
    /// Abort the coordinator itself.
    pub die: Option<DieSpec>,
}

/// Per-invocation query-plane wiring (runtime-only, like [`FaultPlan`]).
#[derive(Debug, Clone, Default)]
pub struct QueryPlan {
    /// Bind a TCP listener here (e.g. `127.0.0.1:0`) and start the
    /// non-stalling query plane (`query.rs`): a dedicated accept thread
    /// plus detached per-client handlers serving cached queries from the
    /// published snapshot cache and consistent queries from one query
    /// barrier per chunk boundary. The bound address is announced as
    /// `query-listening <addr>` on stdout.
    pub listen: Option<String>,
    /// Test hook: after routing this many chunks, *block* until a
    /// consistent-cut demand arrives and serve it at exactly this cut —
    /// makes "a query landed mid-ingest" a deterministic fact rather
    /// than a race. The awaited query must be `Consistent` (or a cached
    /// query that escalates): a cached query satisfied by the snapshot
    /// cache never reaches the coordinator.
    pub await_after_chunks: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::codec::{seal, tag, unseal};

    #[test]
    fn kinds_parse_and_print() {
        for kind in [
            SamplerKind::L2,
            SamplerKind::F0,
            SamplerKind::G,
            SamplerKind::Turnstile,
        ] {
            assert_eq!(SamplerKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SamplerKind::parse("l3"), None);
        assert!(SamplerKind::Turnstile.is_turnstile());
        assert!(!SamplerKind::F0.is_turnstile());
    }

    #[test]
    fn signed_job_stream_is_deterministic_and_strict() {
        let a = job_signed_stream(1 << 10, 20_000, 11);
        assert_eq!(a, job_signed_stream(1 << 10, 20_000, 11));
        assert_ne!(a, job_signed_stream(1 << 10, 20_000, 12));
        // Strict-turnstile: every prefix keeps every count non-negative,
        // and the workload actually exercises deletions.
        let mut counts = std::collections::HashMap::new();
        let mut deletions = 0usize;
        for update in &a {
            let entry = counts.entry(update.item).or_insert(0i64);
            *entry += update.delta;
            assert!(*entry >= 0, "count for {} went negative", update.item);
            if update.delta < 0 {
                deletions += 1;
            }
        }
        assert!(deletions > a.len() / 10, "workload barely deletes");
    }

    #[test]
    fn job_stream_is_deterministic_and_skewed() {
        let a = job_stream(1 << 16, 50_000, 7);
        let b = job_stream(1 << 16, 50_000, 7);
        assert_eq!(a, b);
        assert_ne!(a, job_stream(1 << 16, 50_000, 8));
        // Zipf skew: the most frequent item dominates a uniform share.
        let mut counts = std::collections::HashMap::new();
        for &x in &a {
            *counts.entry(x).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > (a.len() as u64) / 100, "workload not skewed");
    }

    #[test]
    fn f0_shards_share_a_seed_and_reservoirs_do_not() {
        assert_ne!(shard_seed(9, 0), shard_seed(9, 1));
        use tps_streams::Snapshot;
        assert_eq!(make_f0(64, 9, 0).snapshot(), make_f0(64, 9, 1).snapshot());
        assert_ne!(make_l2(64, 9, 0).snapshot(), make_l2(64, 9, 1).snapshot());
        // The turnstile kind shares a seed for the same reason as `f0`.
        assert_eq!(
            make_turnstile(64, 9, 0).snapshot(),
            make_turnstile(64, 9, 1).snapshot()
        );
    }

    #[test]
    fn builder_validates_and_spec_round_trips_through_codec() {
        let spec = ServiceBuilder::new(SamplerKind::Turnstile, 3)
            .universe(1 << 10)
            .seed(77)
            .count(12_345)
            .chunk(500)
            .checkpoint_every(6)
            .checkpoint_dir("/tmp/tps-spec-test")
            .transport(TransportKind::Tcp {
                endpoints: vec![
                    "127.0.0.1:9001".into(),
                    "127.0.0.1:9002".into(),
                    "127.0.0.1:9003".into(),
                ],
            })
            .worker_exe("/usr/bin/tps-service")
            .build()
            .unwrap();

        let mut w = SnapshotWriter::new();
        w.put_tag(tag::JOB_MANIFEST);
        spec.encode_into(&mut w);
        let sealed = seal(tag::JOB_MANIFEST, &w.into_bytes());
        let payload = unseal(tag::JOB_MANIFEST, &sealed).unwrap();
        let mut r = SnapshotReader::new(payload);
        r.expect_tag(tag::JOB_MANIFEST).unwrap();
        let back = JobSpec::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn builder_rejects_bad_specs() {
        assert!(ServiceBuilder::new(SamplerKind::L2, 0).build().is_err());
        assert!(ServiceBuilder::new(SamplerKind::L2, 2)
            .chunk(0)
            .build()
            .is_err());
        assert!(ServiceBuilder::new(SamplerKind::L2, 2)
            .checkpoint_every(0)
            .build()
            .is_err());
        // Endpoint list must match the shard count (or be empty).
        assert!(ServiceBuilder::new(SamplerKind::L2, 2)
            .transport(TransportKind::Tcp {
                endpoints: vec!["127.0.0.1:9001".into()],
            })
            .build()
            .is_err());
        assert!(ServiceBuilder::new(SamplerKind::L2, 2)
            .transport(TransportKind::Tcp {
                endpoints: Vec::new(),
            })
            .build()
            .is_ok());
    }
}
