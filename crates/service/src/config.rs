//! Shared configuration: which sampler family a job runs, how shards are
//! seeded, and the deterministic workload both the service and the
//! single-process reference consume.
//!
//! Everything here is used by *both* sides of the byte-equality contract
//! (worker processes and the in-process reference), so it lives in one
//! place: a seed derivation that drifts between the two would break the
//! merged-query equality the smoke test pins.

use std::path::PathBuf;

use tps_core::f0::TrulyPerfectF0Sampler;
use tps_core::framework::MeasureNormalizer;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::turnstile::StrictTurnstileF0Sampler;
use tps_core::TrulyPerfectGSampler;
use tps_random::{StreamRng, Xoshiro256};
use tps_streams::generators::zipfian_stream;
use tps_streams::measure::Huber;
use tps_streams::{Item, SignedUpdate};

/// The Huber G-sampler variant the service's `g` kind runs.
pub type HuberSampler = TrulyPerfectGSampler<Huber, MeasureNormalizer<Huber>>;

/// Which sampler family the shards of a job instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Truly perfect `L_2` sampler ([`TrulyPerfectLpSampler`], `p = 2`).
    L2,
    /// Truly perfect `F_0` (support) sampler ([`TrulyPerfectF0Sampler`]).
    F0,
    /// Truly perfect Huber M-estimator sampler ([`HuberSampler`]).
    G,
    /// Strict-turnstile `F_0` sampler ([`StrictTurnstileF0Sampler`]): the
    /// shards consume *signed* updates from the deterministic
    /// insert/delete workload of [`job_signed_stream`].
    Turnstile,
}

impl SamplerKind {
    /// Parses the CLI spelling (`l2` | `f0` | `g` | `turnstile`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "l2" => Some(SamplerKind::L2),
            "f0" => Some(SamplerKind::F0),
            "g" => Some(SamplerKind::G),
            "turnstile" => Some(SamplerKind::Turnstile),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SamplerKind::L2 => "l2",
            SamplerKind::F0 => "f0",
            SamplerKind::G => "g",
            SamplerKind::Turnstile => "turnstile",
        }
    }

    /// Whether the kind's shards consume signed (turnstile) updates
    /// rather than unit insertions.
    pub fn is_turnstile(self) -> bool {
        matches!(self, SamplerKind::Turnstile)
    }
}

/// Failure probability the service's reservoir samplers are built with.
pub const DELTA: f64 = 0.1;

/// Instance count of the `g` kind's skip-ahead engine.
pub const G_INSTANCES: usize = 64;

/// The per-shard sampler seed. Reservoir samplers draw independently per
/// shard; the `F_0` kind deliberately ignores the shard index because its
/// merge law requires all shards to share one pre-drawn subset (see
/// `TrulyPerfectF0Sampler`'s merge docs).
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Shard `shard`'s `l2` sampler.
pub fn make_l2(universe: u64, seed: u64, shard: usize) -> TrulyPerfectLpSampler {
    TrulyPerfectLpSampler::new(2.0, universe, DELTA, shard_seed(seed, shard))
}

/// Shard `shard`'s `f0` sampler (shared seed — see [`shard_seed`]).
pub fn make_f0(universe: u64, seed: u64, _shard: usize) -> TrulyPerfectF0Sampler {
    TrulyPerfectF0Sampler::new(universe, DELTA, seed)
}

/// Shard `shard`'s `turnstile` sampler (shared seed, like `f0`: the
/// strict-turnstile sampler's merge law requires every shard to pre-draw
/// the same membership subset and the same syndrome evaluation points).
pub fn make_turnstile(universe: u64, seed: u64, _shard: usize) -> StrictTurnstileF0Sampler {
    StrictTurnstileF0Sampler::new(universe, seed)
}

/// Shard `shard`'s `g` (Huber) sampler.
pub fn make_g(_universe: u64, seed: u64, shard: usize) -> HuberSampler {
    let g = Huber::new(1.0);
    TrulyPerfectGSampler::with_instances(
        g,
        MeasureNormalizer::new(g),
        G_INSTANCES,
        shard_seed(seed, shard),
    )
}

/// Salt separating the workload RNG from the sampler seeds.
const STREAM_SALT: u64 = 0x57E4_0A4B_5F00_D5EE;

/// Zipf exponent of the job workload: skewed enough that one shard runs
/// hot (the regime delta checkpoints are built for).
pub const STREAM_ALPHA: f64 = 1.2;

/// The deterministic hot-shard Zipf workload for a job: both the
/// coordinator and the single-process reference generate exactly this.
pub fn job_stream(universe: u64, count: usize, seed: u64) -> Vec<Item> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ STREAM_SALT);
    zipfian_stream(&mut rng, universe, count, STREAM_ALPHA)
}

/// Extra salt separating the turnstile workload's delete coins from the
/// item draws.
const DELETE_SALT: u64 = 0xD31E_7E00_0000_0001;

/// The deterministic *strict-turnstile* workload for a `turnstile` job:
/// the [`job_stream`] Zipf items reinterpreted as signed updates, where
/// roughly a quarter of the touches delete one unit of an item that still
/// has positive count. Counts never go negative (the strict-turnstile
/// promise), and both the coordinator and the reference generate exactly
/// this sequence.
pub fn job_signed_stream(universe: u64, count: usize, seed: u64) -> Vec<SignedUpdate> {
    let items = job_stream(universe, count, seed);
    let mut coins = Xoshiro256::seed_from_u64(seed ^ STREAM_SALT ^ DELETE_SALT);
    let mut live: std::collections::HashMap<Item, i64> = std::collections::HashMap::new();
    items
        .into_iter()
        .map(|item| {
            let entry = live.entry(item).or_insert(0);
            let delete = *entry > 0 && coins.next_u64().is_multiple_of(4);
            let delta = if delete { -1 } else { 1 };
            *entry += delta;
            SignedUpdate { item, delta }
        })
        .collect()
}

/// Configuration of one worker process (the `worker` subcommand).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The shard index this process owns.
    pub shard: usize,
    /// Sampler family to instantiate.
    pub sampler: SamplerKind,
    /// Universe size `n` of the sampler.
    pub universe: u64,
    /// The job seed (per-shard seeds derive via [`shard_seed`]).
    pub seed: u64,
    /// Directory holding the per-shard checkpoint chains.
    pub checkpoint_dir: PathBuf,
}

/// A deterministic fault injection: kill one worker after the coordinator
/// has routed a given number of chunks, then respawn and recover it.
#[derive(Debug, Clone, Copy)]
pub struct KillSpec {
    /// The shard whose worker process is killed.
    pub shard: usize,
    /// Kill after this many stream chunks have been routed.
    pub after_chunks: u64,
}

/// Configuration of a coordinator job (and of the `reference` run that
/// must match it).
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Number of worker processes (= shard count).
    pub workers: usize,
    /// Sampler family of every shard.
    pub sampler: SamplerKind,
    /// Universe size `n`.
    pub universe: u64,
    /// The job seed: workload, shard samplers and merge coins all derive
    /// from it deterministically.
    pub seed: u64,
    /// Total stream length.
    pub count: usize,
    /// Items per routed chunk (a chunk is scattered across all shards).
    pub chunk: usize,
    /// Checkpoint barrier cadence, in chunks.
    pub checkpoint_every: u64,
    /// Directory holding the per-shard checkpoint chains.
    pub checkpoint_dir: PathBuf,
    /// Optional deterministic fault injection.
    pub kill: Option<KillSpec>,
    /// Path to the worker executable; defaults to the current executable.
    pub worker_exe: Option<PathBuf>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_parse_and_print() {
        for kind in [
            SamplerKind::L2,
            SamplerKind::F0,
            SamplerKind::G,
            SamplerKind::Turnstile,
        ] {
            assert_eq!(SamplerKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SamplerKind::parse("l3"), None);
        assert!(SamplerKind::Turnstile.is_turnstile());
        assert!(!SamplerKind::F0.is_turnstile());
    }

    #[test]
    fn signed_job_stream_is_deterministic_and_strict() {
        let a = job_signed_stream(1 << 10, 20_000, 11);
        assert_eq!(a, job_signed_stream(1 << 10, 20_000, 11));
        assert_ne!(a, job_signed_stream(1 << 10, 20_000, 12));
        // Strict-turnstile: every prefix keeps every count non-negative,
        // and the workload actually exercises deletions.
        let mut counts = std::collections::HashMap::new();
        let mut deletions = 0usize;
        for update in &a {
            let entry = counts.entry(update.item).or_insert(0i64);
            *entry += update.delta;
            assert!(*entry >= 0, "count for {} went negative", update.item);
            if update.delta < 0 {
                deletions += 1;
            }
        }
        assert!(deletions > a.len() / 10, "workload barely deletes");
    }

    #[test]
    fn job_stream_is_deterministic_and_skewed() {
        let a = job_stream(1 << 16, 50_000, 7);
        let b = job_stream(1 << 16, 50_000, 7);
        assert_eq!(a, b);
        assert_ne!(a, job_stream(1 << 16, 50_000, 8));
        // Zipf skew: the most frequent item dominates a uniform share.
        let mut counts = std::collections::HashMap::new();
        for &x in &a {
            *counts.entry(x).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > (a.len() as u64) / 100, "workload not skewed");
    }

    #[test]
    fn f0_shards_share_a_seed_and_reservoirs_do_not() {
        assert_ne!(shard_seed(9, 0), shard_seed(9, 1));
        use tps_streams::Snapshot;
        assert_eq!(make_f0(64, 9, 0).snapshot(), make_f0(64, 9, 1).snapshot());
        assert_ne!(make_l2(64, 9, 0).snapshot(), make_l2(64, 9, 1).snapshot());
        // The turnstile kind shares a seed for the same reason as `f0`.
        assert_eq!(
            make_turnstile(64, 9, 0).snapshot(),
            make_turnstile(64, 9, 1).snapshot()
        );
    }
}
