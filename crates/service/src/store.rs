//! The per-shard on-disk checkpoint chain: an append-only file of
//! length-prefixed incremental frames ([`tps_streams::codec::delta`]).
//!
//! Layout: for each frame, a `u64` little-endian byte length followed by
//! the sealed frame bytes. Appends write the frame and `sync_data` before
//! the worker acks the checkpoint barrier — the ack is the coordinator's
//! permission to drop its replay buffer, so durability must come first.
//! Recovery tolerates a torn tail (a crash mid-append leaves a partial
//! record, which is ignored); anything before the tail is checksummed
//! frame by frame during replay.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use tps_streams::codec::delta::CheckpointReplayer;

/// One shard's append-only checkpoint chain.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    path: PathBuf,
}

impl CheckpointStore {
    /// The store for `shard` under `dir` (file `shard-<idx>.ckpt`).
    pub fn for_shard(dir: &Path, shard: usize) -> Self {
        Self {
            path: dir.join(format!("shard-{shard}.ckpt")),
        }
    }

    /// The chain file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one sealed frame durably (length prefix, bytes, fsync).
    pub fn append_frame(&self, frame: &[u8]) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(&(frame.len() as u64).to_le_bytes())?;
        file.write_all(frame)?;
        file.sync_data()
    }

    /// Reads every complete frame in the chain (empty if the file does not
    /// exist). A torn final record — crash mid-append — is dropped; it was
    /// never acked, so the coordinator still holds the chunks it covered.
    pub fn load_frames(&self) -> io::Result<Vec<Vec<u8>>> {
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        }
        let mut frames = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 8 {
            let len =
                u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8-byte slice")) as usize;
            let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
                break; // torn tail: absurd length from a partial prefix
            };
            if end > bytes.len() {
                break; // torn tail: record extends past the file
            }
            frames.push(bytes[pos + 8..end].to_vec());
            pos = end;
        }
        Ok(frames)
    }

    /// Replays the chain, returning the reconstructed snapshot bytes and
    /// their checkpoint epoch (`None` for an empty or missing chain). A
    /// chain that fails to replay is a real integrity error — torn tails
    /// are already dropped by [`Self::load_frames`], so what remains must
    /// apply cleanly.
    pub fn recover(&self) -> io::Result<Option<(u64, Vec<u8>)>> {
        let mut replayer = CheckpointReplayer::new();
        for (index, frame) in self.load_frames()?.iter().enumerate() {
            replayer.apply(frame).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint chain {} frame {index}: {e}",
                        self.path.display()
                    ),
                )
            })?;
        }
        Ok(replayer.into_current())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::codec::delta::IncrementalCheckpointer;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tps-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chain_round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::for_shard(&dir, 0);
        let _ = std::fs::remove_file(store.path());
        let mut writer = IncrementalCheckpointer::new();
        let mut state = vec![0x5Au8; 4096];
        for epoch in 1..=5u64 {
            state[epoch as usize * 11] = epoch as u8;
            let frame = writer.checkpoint_bytes(state.clone(), epoch);
            store.append_frame(frame.bytes()).unwrap();
        }
        let (epoch, bytes) = store.recover().unwrap().expect("chain recovers");
        assert_eq!(epoch, 5);
        assert_eq!(bytes, state);
        assert_eq!(store.load_frames().unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_chain_recovers_to_fresh() {
        let dir = temp_dir("fresh");
        let store = CheckpointStore::for_shard(&dir, 3);
        let _ = std::fs::remove_file(store.path());
        assert!(store.recover().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        let store = CheckpointStore::for_shard(&dir, 1);
        let _ = std::fs::remove_file(store.path());
        let mut writer = IncrementalCheckpointer::new();
        let state = vec![7u8; 2048];
        let frame = writer.checkpoint_bytes(state.clone(), 1);
        store.append_frame(frame.bytes()).unwrap();
        // Simulate a crash mid-append of the next frame.
        let mut torn = std::fs::read(store.path()).unwrap();
        torn.extend_from_slice(&999u64.to_le_bytes());
        torn.extend_from_slice(&[1, 2, 3]);
        std::fs::write(store.path(), &torn).unwrap();
        let (epoch, bytes) = store.recover().unwrap().expect("intact prefix recovers");
        assert_eq!((epoch, bytes), (1, state));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
