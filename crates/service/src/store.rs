//! The per-shard on-disk checkpoint chain: an append-only file of
//! length-prefixed incremental frames ([`tps_streams::codec::delta`]).
//!
//! Layout: for each frame, a `u64` little-endian byte length followed by
//! the sealed frame bytes. Appends write the frame and `sync_data` before
//! the worker acks the checkpoint barrier — the ack is the coordinator's
//! permission to drop its replay buffer, so durability must come first.
//! Recovery tolerates a torn tail (a crash mid-append leaves a partial
//! record): [`CheckpointStore::recover`] truncates the file back to the
//! last complete record before the worker resumes, so post-restart
//! appends — which open the file in append mode — land directly after
//! valid data instead of after the garbage. Anything before the tail is
//! checksummed frame by frame during replay.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use tps_streams::codec::delta::{peek_frame, CheckpointReplayer, FrameKind};

/// One shard's append-only checkpoint chain.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    path: PathBuf,
}

/// What [`CheckpointStore::recover`] reconstructed from a chain.
#[derive(Debug, Clone)]
pub struct RecoveredChain {
    /// The epoch of the last complete checkpoint frame.
    pub epoch: u64,
    /// The reconstructed snapshot bytes at that epoch.
    pub snapshot: Vec<u8>,
    /// Delta frames in the chain since its last full frame — seeds the
    /// chain cap of
    /// [`IncrementalCheckpointer::resume`](tps_streams::codec::delta::IncrementalCheckpointer::resume)
    /// so frequent restarts cannot grow the chain without bound.
    pub deltas_since_base: u32,
}

impl CheckpointStore {
    /// The store for `shard` under `dir` (file `shard-<idx>.ckpt`).
    pub fn for_shard(dir: &Path, shard: usize) -> Self {
        Self {
            path: dir.join(format!("shard-{shard}.ckpt")),
        }
    }

    /// The coordinator's own chain under `dir` (file `coordinator.ckpt`),
    /// holding the job-manifest frames — same format, same torn-tail
    /// recovery as the shard chains.
    pub fn for_coordinator(dir: &Path) -> Self {
        Self {
            path: dir.join("coordinator.ckpt"),
        }
    }

    /// The chain file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one sealed frame durably (length prefix, bytes, fsync).
    pub fn append_frame(&self, frame: &[u8]) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(&(frame.len() as u64).to_le_bytes())?;
        file.write_all(frame)?;
        file.sync_data()
    }

    /// Reads every complete frame in the chain (empty if the file does not
    /// exist). A torn final record — crash mid-append — is dropped; it was
    /// never acked, so the coordinator still holds the chunks it covered.
    pub fn load_frames(&self) -> io::Result<Vec<Vec<u8>>> {
        Ok(self.read_chain()?.0)
    }

    /// Reads the chain, returning its complete frames, the byte offset
    /// just past the last complete record (the file's valid length), and
    /// the actual file length. `valid < file_len` means a torn tail.
    fn read_chain(&self) -> io::Result<(Vec<Vec<u8>>, u64, u64)> {
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0, 0)),
            Err(e) => return Err(e),
        }
        let mut frames = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 8 {
            let len =
                u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8-byte slice")) as usize;
            let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
                break; // torn tail: absurd length from a partial prefix
            };
            if end > bytes.len() {
                break; // torn tail: record extends past the file
            }
            frames.push(bytes[pos + 8..end].to_vec());
            pos = end;
        }
        Ok((frames, pos as u64, bytes.len() as u64))
    }

    /// Replays the chain, returning the reconstruction (`None` for an
    /// empty or missing chain). A chain that fails to replay is a real
    /// integrity error — torn tails are dropped before replay, so what
    /// remains must apply cleanly.
    ///
    /// A torn tail is also truncated away *on disk*: [`Self::append_frame`]
    /// opens the file in append mode, so without the truncation a partial
    /// record left by a crash mid-append would sit between the recovered
    /// frames and everything appended after the restart — and the *next*
    /// recovery would either fail outright or, if the partial record's
    /// length prefix happened to still cover the file, silently drop every
    /// frame after the torn point. Call this before resuming appends.
    pub fn recover(&self) -> io::Result<Option<RecoveredChain>> {
        let (frames, valid, file_len) = self.read_chain()?;
        if valid < file_len {
            let file = OpenOptions::new().write(true).open(&self.path)?;
            file.set_len(valid)?;
            file.sync_data()?;
        }
        let mut replayer = CheckpointReplayer::new();
        for (index, frame) in frames.iter().enumerate() {
            replayer.apply(frame).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint chain {} frame {index}: {e}",
                        self.path.display()
                    ),
                )
            })?;
        }
        let deltas_since_base = replayer.deltas_since_base();
        Ok(replayer
            .into_current()
            .map(|(epoch, snapshot)| RecoveredChain {
                epoch,
                snapshot,
                deltas_since_base,
            }))
    }

    /// Garbage-collects the chain: drops every frame before the last
    /// *full* frame (a rebase makes its predecessors unreachable — replay
    /// restarts at the newest full frame regardless). Returns the number
    /// of frames pruned.
    ///
    /// The rewrite is crash-safe: the surviving suffix goes to a
    /// temporary file, is fsynced, and is renamed over the chain
    /// atomically (then the directory is fsynced so the rename itself is
    /// durable). A crash at any point leaves either the old chain or the
    /// new one — both replay to the identical state, which is exactly
    /// what the GC byte-identity test pins.
    ///
    /// Callers invoke this right after appending a non-delta frame
    /// (`!CheckpointFrame::is_delta()` — the checkpointer just rebased);
    /// calling it at any other time is a correct no-op.
    pub fn compact(&self) -> io::Result<usize> {
        let (frames, valid, file_len) = self.read_chain()?;
        let base = frames
            .iter()
            .rposition(|frame| matches!(peek_frame(frame), Ok((FrameKind::Full, _))))
            .unwrap_or(0);
        if base == 0 && valid == file_len {
            return Ok(0); // nothing unreachable, no torn tail to shed
        }
        let tmp = self.path.with_extension("ckpt.tmp");
        let mut file = File::create(&tmp)?;
        for frame in &frames[base..] {
            file.write_all(&(frame.len() as u64).to_le_bytes())?;
            file.write_all(frame)?;
        }
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            // Make the rename durable: fsync the directory entry.
            File::open(parent)?.sync_data()?;
        }
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::codec::delta::IncrementalCheckpointer;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tps-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chain_round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::for_shard(&dir, 0);
        let _ = std::fs::remove_file(store.path());
        let mut writer = IncrementalCheckpointer::new();
        let mut state = vec![0x5Au8; 4096];
        for epoch in 1..=5u64 {
            state[epoch as usize * 11] = epoch as u8;
            let frame = writer.checkpoint_bytes(state.clone(), epoch);
            store.append_frame(frame.bytes()).unwrap();
        }
        let chain = store.recover().unwrap().expect("chain recovers");
        assert_eq!(chain.epoch, 5);
        assert_eq!(chain.snapshot, state);
        assert_eq!(chain.deltas_since_base, 4, "full at 1, deltas at 2..=5");
        assert_eq!(store.load_frames().unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_chain_recovers_to_fresh() {
        let dir = temp_dir("fresh");
        let store = CheckpointStore::for_shard(&dir, 3);
        let _ = std::fs::remove_file(store.path());
        assert!(store.recover().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        let store = CheckpointStore::for_shard(&dir, 1);
        let _ = std::fs::remove_file(store.path());
        let mut writer = IncrementalCheckpointer::new();
        let state = vec![7u8; 2048];
        let frame = writer.checkpoint_bytes(state.clone(), 1);
        store.append_frame(frame.bytes()).unwrap();
        // Simulate a crash mid-append of the next frame.
        let valid_len = std::fs::metadata(store.path()).unwrap().len();
        let mut torn = std::fs::read(store.path()).unwrap();
        torn.extend_from_slice(&999u64.to_le_bytes());
        torn.extend_from_slice(&[1, 2, 3]);
        std::fs::write(store.path(), &torn).unwrap();
        let chain = store.recover().unwrap().expect("intact prefix recovers");
        assert_eq!((chain.epoch, chain.snapshot), (1, state));
        // The torn record is gone from disk too, not just skipped in
        // memory — recovery resets the file to its last complete record.
        assert_eq!(std::fs::metadata(store.path()).unwrap().len(), valid_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_recovery_byte_for_byte() {
        let dir = temp_dir("compact");
        let store = CheckpointStore::for_coordinator(&dir);
        let _ = std::fs::remove_file(store.path());
        // Chain cap 2: a rebase (full frame) lands every third checkpoint,
        // so the chain accumulates unreachable prefixes to collect.
        let mut writer = IncrementalCheckpointer::with_policy(2, 64);
        let mut state = vec![0x11u8; 4096];
        for epoch in 1..=8u64 {
            state[epoch as usize] = epoch as u8;
            store
                .append_frame(writer.checkpoint_bytes(state.clone(), epoch).bytes())
                .unwrap();
        }
        let before_frames = store.load_frames().unwrap();
        let before = store.recover().unwrap().expect("chain recovers");

        let pruned = store.compact().unwrap();
        assert!(pruned > 0, "an 8-frame cap-2 chain has dead prefixes");
        let after_frames = store.load_frames().unwrap();
        assert_eq!(before_frames.len() - pruned, after_frames.len());
        assert_eq!(
            peek_frame(&after_frames[0]).unwrap().0,
            FrameKind::Full,
            "a compacted chain starts at its base"
        );

        // The headline contract: recovery from the pruned chain is
        // byte-identical to recovery from the unpruned chain.
        let after = store.recover().unwrap().expect("pruned chain recovers");
        assert_eq!(before.epoch, after.epoch);
        assert_eq!(before.snapshot, after.snapshot);
        assert_eq!(before.deltas_since_base, after.deltas_since_base);

        // Compacting an already-compact chain is a no-op.
        assert_eq!(store.compact().unwrap(), 0);
        assert_eq!(store.load_frames().unwrap(), after_frames);

        // And appends continue cleanly after a GC (append mode lands at
        // the end of the rewritten file).
        state[99] = 0xFE;
        store
            .append_frame(writer.checkpoint_bytes(state.clone(), 9).bytes())
            .unwrap();
        let resumed = store.recover().unwrap().expect("chain recovers");
        assert_eq!((resumed.epoch, resumed.snapshot), (9, state));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_after_torn_tail_recovery_stay_recoverable() {
        // The crash-restart-crash scenario: a torn tail must not poison
        // frames appended after recovery (append mode writes at the end
        // of the file, wherever recovery left it).
        let dir = temp_dir("torn-append");
        let store = CheckpointStore::for_shard(&dir, 2);
        let _ = std::fs::remove_file(store.path());
        let mut writer = IncrementalCheckpointer::new();
        let mut state = vec![9u8; 2048];
        store
            .append_frame(writer.checkpoint_bytes(state.clone(), 1).bytes())
            .unwrap();
        // Crash mid-append: a partial record whose length prefix still
        // "covers" bytes that a later append would provide — the nasty
        // variant, where without truncation the garbage would masquerade
        // as a valid record swallowing the real next frame.
        let mut torn = std::fs::read(store.path()).unwrap();
        torn.extend_from_slice(&64u64.to_le_bytes());
        torn.extend_from_slice(&[0xEE; 5]);
        std::fs::write(store.path(), &torn).unwrap();

        // Restart: recover (drops + truncates the tail), resume the
        // writer, append the next checkpoint.
        let chain = store.recover().unwrap().expect("prefix recovers");
        assert_eq!(chain.epoch, 1);
        let mut writer =
            IncrementalCheckpointer::resume(chain.epoch, chain.snapshot, chain.deltas_since_base);
        state[77] = 0xAB;
        store
            .append_frame(writer.checkpoint_bytes(state.clone(), 2).bytes())
            .unwrap();

        // The next recovery sees both frames, not garbage.
        let chain = store.recover().unwrap().expect("chain recovers");
        assert_eq!(chain.epoch, 2);
        assert_eq!(chain.snapshot, state);
        assert_eq!(store.load_frames().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
