//! # tps-service — the networked checkpointing ingest service
//!
//! The persistent runtime in `tps_core::runtime` scales ingest across
//! *threads*; this crate scales the same design across *processes* and
//! *sockets*. `k` worker processes each own one shard of a sampler (they
//! never see the full stream), a coordinator routes items with the exact
//! in-process routing function ([`tps_core::sharded::hash_route`]) and
//! drives the epoch/barrier discipline over a pluggable transport
//! ([`tps_streams::wire::transport`]) — stdin/stdout pipes or TCP — using
//! the versioned framed protocol in [`tps_streams::wire`]:
//!
//! * **Checkpoint barriers** make every worker append an incremental
//!   (delta) frame — [`tps_streams::codec::delta`] — to its on-disk chain
//!   and ack; the acks let the coordinator trim its replay buffers.
//!   Chains are garbage-collected after rebases ([`CheckpointStore::compact`]).
//! * **Query barriers** collect every worker's full sealed snapshot at a
//!   consistent cut; the coordinator restores and fold-merges them in
//!   shard order with the merge RNG seeded `seed ^ MERGE_SEED_SALT`, so
//!   the merged answer is **byte-identical** to an in-process
//!   [`ShardedSampler`](tps_core::sharded::ShardedSampler) over the same
//!   stream (the `reference` subcommand computes exactly that). A TCP
//!   **query plane** ([`query::QueryPlane`]) serves that answer to any
//!   number of concurrent clients ([`client::QueryClient`]) *while ingest
//!   runs*, off the barrier loop: checkpoint barriers publish their cut
//!   into a snapshot cache, cached queries are answered straight from it,
//!   and consistent queries cost one query barrier at the next chunk
//!   boundary — a wedged client blocks only its own detached handler
//!   thread, never a barrier (see `query.rs`).
//!
//! ## Failure semantics
//!
//! The coordinator buffers every chunk it sends, tagged with the epoch of
//! the last barrier *sent* before it; a chunk tagged `t` is covered by any
//! checkpoint with epoch `> t`. When a checkpoint at epoch `E` is acked
//! (the worker wrote the frame to disk before acking), chunks tagged
//! `< E` are dropped from the buffer. When a worker dies, the coordinator
//! respawns (or re-dials) it; the fresh process replays its on-disk
//! chain, reports the recovered epoch in its `Hello`, and the coordinator
//! re-sends exactly the buffered chunks the checkpoint does not cover
//! (tag `≥` recovered epoch). Re-ingesting those chunks on top of the
//! restored state reproduces the uninterrupted run's shard state byte for
//! byte — which the smoke test asserts end to end through the merged
//! query.
//!
//! The coordinator applies the same discipline to *itself*: before every
//! checkpoint barrier it appends a [`manifest::Manifest`] — spec, stream
//! cut, per-shard endpoints and replay buffers — to its own chain
//! (fsync-before-barrier), so a SIGKILLed coordinator resumes with
//! [`coordinator::resume_job`] and finishes with a byte-identical final
//! query. See `manifest.rs` for the crash-consistency argument.
//!
//! Jobs are described by a typed, codec-serializable [`JobSpec`] built
//! with [`ServiceBuilder`]; the CLI in `main.rs` is a thin parser over it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod config;
pub mod coordinator;
pub mod manifest;
pub mod query;
pub mod store;
pub mod worker;

pub use client::{QueryClient, QueryError};
pub use config::{
    DieSpec, FaultPlan, JobSpec, KillSpec, QueryPlan, SamplerKind, ServiceBuilder, TransportKind,
    WorkerConfig,
};
pub use coordinator::{resume_job, run_job, run_reference, QueryReport};
pub use query::{QueryPlane, QueryPlaneStats};
pub use store::CheckpointStore;
// The typed query surface is defined once in `tps_streams` and
// re-exported here: the same `QueryOptions`/`QuerySnapshot` pair drives
// `ShardedSampler::query`, `QueryClient::query` and the CLI.
pub use tps_streams::{QueryConsistency, QueryOptions, QuerySnapshot};
