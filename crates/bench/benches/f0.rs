//! E6 benchmark: ingest and query cost of the truly perfect `F_0` samplers
//! (insertion-only, sliding-window, and the random-oracle comparator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tps_core::f0::{RandomOracleF0Sampler, SlidingWindowF0Sampler, TrulyPerfectF0Sampler};
use tps_random::default_rng;
use tps_streams::generators::uniform_stream;
use tps_streams::{SlidingWindowSampler, StreamSampler};

fn bench_f0(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_f0");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(5);
    let stream = uniform_stream(&mut rng, 5_000, 20_000);
    group.throughput(Throughput::Elements(stream.len() as u64));

    for &n in &[4_096u64, 65_536] {
        group.bench_with_input(BenchmarkId::new("truly_perfect", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = TrulyPerfectF0Sampler::new(n, 0.05, 3);
                s.update_all(&stream);
                s.sample()
            })
        });
    }

    group.bench_function("sliding_window", |b| {
        b.iter(|| {
            let mut s = SlidingWindowF0Sampler::new(65_536, 5_000, 0.05, 3);
            for &x in &stream {
                SlidingWindowSampler::update(&mut s, x);
            }
            SlidingWindowSampler::sample(&mut s)
        })
    });

    group.bench_function("random_oracle", |b| {
        b.iter(|| {
            let mut s = RandomOracleF0Sampler::new(3);
            s.update_all(&stream);
            s.sample()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_f0);
criterion_main!(benches);
