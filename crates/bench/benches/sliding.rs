//! E7 / F1 benchmark: ingest cost of the sliding-window samplers and of the
//! smooth-histogram substrate they rely on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tps_core::sliding::{SlidingWindowGSampler, SlidingWindowLpSampler};
use tps_random::default_rng;
use tps_streams::generators::drifting_stream;
use tps_streams::{Estimator, Huber, SlidingWindowSampler};
use tps_window::SmoothHistogram;

#[derive(Debug, Default)]
struct CountEstimator {
    count: u64,
}

impl Estimator for CountEstimator {
    fn update(&mut self, _item: u64) {
        self.count += 1;
    }
    fn estimate(&self) -> f64 {
        self.count as f64
    }
}

fn bench_sliding(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_sliding_ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(6);
    let stream = drifting_stream(&mut rng, 4_096, 6_000, 1_000, 64, 128);
    group.throughput(Throughput::Elements(stream.len() as u64));

    for &window in &[200u64, 800] {
        group.bench_with_input(
            BenchmarkId::new("huber_g_sampler", window),
            &window,
            |b, &w| {
                b.iter(|| {
                    let mut s = SlidingWindowGSampler::new(Huber::new(4.0), w, 0.1, 13);
                    for &x in &stream {
                        SlidingWindowSampler::update(&mut s, x);
                    }
                    SlidingWindowSampler::sample(&mut s)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("l2_sampler", window), &window, |b, &w| {
            b.iter(|| {
                let mut s = SlidingWindowLpSampler::with_estimator_size(2.0, w, 0.1, 2, 24, 13);
                for &x in &stream {
                    SlidingWindowSampler::update(&mut s, x);
                }
                SlidingWindowSampler::sample(&mut s)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("f1_smooth_histogram");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &window in &[1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let mut hist = SmoothHistogram::new(w, 0.2, CountEstimator::default);
                for t in 0..(3 * w) {
                    hist.update(t % 97);
                }
                hist.checkpoint_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sliding);
criterion_main!(benches);
