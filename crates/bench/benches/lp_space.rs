//! E1 / E2 benchmark: ingest cost of the truly perfect `L_p` samplers at
//! increasing universe sizes (the space figures themselves are produced by
//! the `report` binary; this bench tracks the wall-clock cost of feeding a
//! stream into samplers of the prescribed size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_random::default_rng;
use tps_streams::generators::zipfian_stream;
use tps_streams::StreamSampler;

fn bench_lp_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_lp_ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(1);
    let stream = zipfian_stream(&mut rng, 4_096, 20_000, 1.1);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for &(p, n) in &[
        (1.0, 4_096u64),
        (1.5, 4_096),
        (2.0, 1_024),
        (2.0, 4_096),
        (2.0, 16_384),
    ] {
        group.bench_with_input(
            BenchmarkId::new(format!("p={p}"), n),
            &(p, n),
            |b, &(p, n)| {
                b.iter(|| {
                    let mut sampler = TrulyPerfectLpSampler::new(p, n, 0.1, 7);
                    sampler.update_all(&stream);
                    sampler.sample()
                })
            },
        );
    }
    group.finish();
}

fn bench_fractional_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_fractional_ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(2);
    let stream = zipfian_stream(&mut rng, 1_024, 20_000, 1.0);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for &p in &[0.25, 0.5, 0.75] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut sampler = TrulyPerfectLpSampler::fractional(p, stream.len() as u64, 0.1, 7);
                sampler.update_all(&stream);
                sampler.sample()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp_ingest, bench_fractional_ingest);
criterion_main!(benches);
