//! E8 benchmark: ingest cost of the random-order collision samplers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tps_core::random_order::{RandomOrderL2Sampler, RandomOrderLpSampler};
use tps_random::default_rng;
use tps_streams::frequency::FrequencyVector;
use tps_streams::generators::{random_order_stream, zipfian_stream};
use tps_streams::StreamSampler;

fn bench_random_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_random_order");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));

    // A fixed frequency vector delivered in random order.
    let mut rng = default_rng(7);
    let base = zipfian_stream(&mut rng, 256, 20_000, 1.2);
    let counts: Vec<(u64, u64)> = FrequencyVector::from_stream(&base)
        .iter()
        .map(|(i, c)| (i, c as u64))
        .collect();
    let stream = random_order_stream(&mut rng, &counts);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("l2_collision_sampler", |b| {
        b.iter(|| {
            let mut s = RandomOrderL2Sampler::new(stream.len() as u64, 17);
            s.update_all(&stream);
            s.sample()
        })
    });

    for &p in &[3u32, 4] {
        group.bench_with_input(BenchmarkId::new("lp_block_sampler", p), &p, |b, &p| {
            b.iter(|| {
                let mut s = RandomOrderLpSampler::new(p, stream.len() as u64, 17);
                s.update_all(&stream);
                s.sample()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_random_order);
criterion_main!(benches);
