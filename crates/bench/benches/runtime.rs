//! E13 benchmark: the persistent sharded runtime under its steady-state
//! shape — a long stream arriving in batches — plus the cost of
//! snapshot-isolated queries issued mid-ingest.
//!
//! Three groups:
//!
//! * `e13_runtime_ingest` — batched feed through the persistent worker
//!   pool at several shard counts, against a re-implementation of the
//!   retired scoped-thread two-phase path that pays a spawn/join round
//!   trip per batch (the architecture the runtime replaced).
//! * `e13_query_during_ingest` — the same feed with a snapshot-isolated
//!   `sample()` every 8 batches; the gap to the query-free group is the
//!   price of queries on the ingest path.
//! * `e13_query_latency` — one query on a built-up state: the runtime's
//!   barrier + per-shard snapshot + restore + fold-merge against the
//!   retired deep-clone + fold-merge on an identical quiesced clone.
//!
//! Every timed closure that feeds the runtime ends with `flush()`:
//! `update_batch` returns once the batch is *enqueued*, so the wall clock
//! must include draining it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sharded::{ShardedSampler, ShardedSamplerBuilder, ShardingStrategy};
use tps_random::default_rng;
use tps_streams::generators::zipfian_stream;
use tps_streams::StreamSampler;

const BATCH_LEN: usize = 64 * 1024;

fn new_sharded(shards: usize) -> ShardedSampler<TrulyPerfectLpSampler> {
    ShardedSamplerBuilder::new(shards)
        .strategy(ShardingStrategy::Hash)
        .seed(5)
        .build(|idx| TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 40 + idx as u64))
}

/// The retired two-phase scoped-thread batch path (spawn a scatter crew
/// and an ingest crew per batch), kept as the comparator the runtime's
/// amortised thread costs are measured against. Routing matches
/// `ShardedSampler`'s hash strategy (splitmix64 + Lemire reduction).
fn scoped_shard_of(item: u64, shards: usize) -> usize {
    let mut z = item.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (((z as u128) * (shards as u128)) >> 64) as usize
}

fn scoped_two_phase_ingest(shards: &mut [TrulyPerfectLpSampler], batch: &[u64]) {
    let k = shards.len();
    let chunk_len = batch.len().div_ceil(k);
    let matrix: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
        let workers: Vec<_> = batch
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut row: Vec<Vec<u64>> = vec![Vec::new(); k];
                    for &item in chunk {
                        row[scoped_shard_of(item, k)].push(item);
                    }
                    row
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    std::thread::scope(|scope| {
        for (shard, sampler) in shards.iter_mut().enumerate() {
            let matrix = &matrix;
            scope.spawn(move || {
                for row in matrix {
                    sampler.update_batch(&row[shard]);
                }
            });
        }
    });
}

fn bench_runtime_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_runtime_ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = default_rng(13);
    let stream = zipfian_stream(&mut rng, 4_096, 1_000_000, 1.1);
    group.throughput(Throughput::Elements(stream.len() as u64));

    for &shards in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("persistent_runtime", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut sharded = new_sharded(shards);
                    for batch in stream.chunks(BATCH_LEN) {
                        sharded.update_batch(batch);
                    }
                    sharded.flush();
                    sharded.processed()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scoped_per_batch", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut samplers: Vec<_> = (0..shards)
                        .map(|idx| TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 40 + idx as u64))
                        .collect();
                    for batch in stream.chunks(BATCH_LEN) {
                        scoped_two_phase_ingest(&mut samplers, batch);
                    }
                    samplers.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_query_during_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_query_during_ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = default_rng(13);
    let stream = zipfian_stream(&mut rng, 4_096, 1_000_000, 1.1);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("query_free", |b| {
        b.iter(|| {
            let mut sharded = new_sharded(4);
            for batch in stream.chunks(BATCH_LEN) {
                sharded.update_batch(batch);
            }
            sharded.flush();
            sharded.processed()
        })
    });
    group.bench_function("query_every_8_batches", |b| {
        b.iter(|| {
            let mut sharded = new_sharded(4);
            let mut draws = 0u64;
            for (index, batch) in stream.chunks(BATCH_LEN).enumerate() {
                sharded.update_batch(batch);
                if (index + 1) % 8 == 0 && sharded.sample().is_index() {
                    draws += 1;
                }
            }
            sharded.flush();
            draws
        })
    });
    group.finish();
}

fn bench_query_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_query_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = default_rng(13);
    let stream = zipfian_stream(&mut rng, 4_096, 1_000_000, 1.1);

    // Built-up runtime state, drained: the measured query is the
    // barrier/snapshot/merge machinery itself, not a backlog flush.
    let mut live = new_sharded(4);
    live.update_batch(&stream);
    live.flush();
    group.bench_function("snapshot_isolated", |b| b.iter(|| live.sample().is_index()));

    // The retired path on identical state: `clone()` detaches from the
    // runtime, so `merged()` is the old deep-clone + fold-merge + draw.
    let mut detached = live.clone();
    group.bench_function("clone_and_merge", |b| {
        b.iter(|| detached.merged().sample().is_index())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_runtime_ingest,
    bench_query_during_ingest,
    bench_query_latency
);
criterion_main!(benches);
