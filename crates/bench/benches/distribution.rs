//! E4 benchmark: cost of drawing samples (the exactness and composition
//! numbers are produced by the `report` binary; this bench tracks the
//! sample-query latency of the framework and of the M-estimator samplers).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::mestimators::{HuberSampler, L1L2Sampler};
use tps_random::default_rng;
use tps_streams::generators::zipfian_stream;
use tps_streams::StreamSampler;

fn bench_sample_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_sample_latency");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(4);
    let stream = zipfian_stream(&mut rng, 2_048, 20_000, 1.1);

    let mut l2 = TrulyPerfectLpSampler::new(2.0, 2_048, 0.05, 11);
    l2.update_all(&stream);
    group.bench_function("truly_perfect_l2_sample", |b| b.iter(|| l2.sample()));

    let mut l1l2 = L1L2Sampler::l1l2(stream.len() as u64, 0.05, 11);
    l1l2.update_all(&stream);
    group.bench_function("l1l2_sample", |b| b.iter(|| l1l2.sample()));

    let mut huber = HuberSampler::huber(4.0, stream.len() as u64, 0.05, 11);
    huber.update_all(&stream);
    group.bench_function("huber_sample", |b| b.iter(|| huber.sample()));

    group.finish();
}

criterion_group!(benches, bench_sample_latency);
criterion_main!(benches);
