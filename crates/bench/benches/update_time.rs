//! E3 benchmark: per-update cost of the truly perfect `L_p` sampler
//! (Theorem 1.4: `O(1)` expected) against the duplication-based perfect
//! baseline, whose per-update cost grows with its accuracy knob — plus the
//! batch-vs-loop comparison of the amortised `update_batch` engine on a
//! 1M-update Zipf stream.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tps_core::engine::SkipAheadEngine;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::perfect_baselines::ExponentialScalingSampler;
use tps_random::default_rng;
use tps_streams::generators::zipfian_stream;
use tps_streams::StreamSampler;

fn bench_update_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_update_time");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(3);
    let stream = zipfian_stream(&mut rng, 4_096, 10_000, 1.1);
    group.throughput(Throughput::Elements(stream.len() as u64));

    // Explicit per-item loop: `update_all` routes through the batched
    // engine, and this group's claim is the cost of the *per-item* path
    // (the batch-vs-loop comparison lives in `e3_batch_vs_loop`).
    group.bench_function("truly_perfect_l2", |b| {
        b.iter(|| {
            let mut sampler = TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 9);
            for &x in &stream {
                sampler.update(x);
            }
            sampler.processed()
        })
    });

    for &dup in &[8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("perfect_baseline_dup", dup),
            &dup,
            |b, &dup| {
                b.iter(|| {
                    let mut sampler = ExponentialScalingSampler::new(2.0, dup, 128, 9);
                    sampler.update_all(&stream);
                    sampler.duplication()
                })
            },
        );
    }

    // Update-time growth of the truly perfect sampler with the universe
    // size: should be flat (the instance pool only affects memory, not the
    // per-update path).
    for &n in &[1_024u64, 16_384, 262_144] {
        group.bench_with_input(
            BenchmarkId::new("truly_perfect_universe", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sampler = TrulyPerfectLpSampler::new(2.0, n, 0.1, 9);
                    for &x in &stream {
                        sampler.update(x);
                    }
                    sampler.processed()
                })
            },
        );
    }
    group.finish();
}

/// Batch-vs-loop throughput of the truly perfect `L_2` sampler on a
/// 1M-update Zipf(1.1) stream: the per-item `update` loop against one
/// whole-stream `update_batch` call and against realistic mid-size batches
/// (as an ingest pipeline hands them over).
fn bench_batch_vs_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_batch_vs_loop");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = default_rng(4);
    let stream = zipfian_stream(&mut rng, 4_096, 1_000_000, 1.1);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("truly_perfect_l2_loop", |b| {
        b.iter(|| {
            let mut sampler = TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 9);
            for &x in &stream {
                sampler.update(x);
            }
            sampler.processed()
        })
    });

    group.bench_function("truly_perfect_l2_batch", |b| {
        b.iter(|| {
            let mut sampler = TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 9);
            sampler.update_batch(&stream);
            sampler.processed()
        })
    });

    for &chunk in &[1_024usize, 65_536] {
        group.bench_with_input(
            BenchmarkId::new("truly_perfect_l2_batch_chunked", chunk),
            &chunk,
            |b, &chunk| {
                b.iter(|| {
                    let mut sampler = TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 9);
                    for piece in stream.chunks(chunk) {
                        sampler.update_batch(piece);
                    }
                    sampler.processed()
                })
            },
        );
    }
    group.finish();
}

/// Huge-reservoir scaling (ROADMAP: "prove out huge-reservoir scaling with
/// 1M-slot benchmarks"): per-update cost of the shared [`SkipAheadEngine`]
/// at 100 / 10k / 1M slots over a 1M-update Zipf(1.1) stream. The
/// priority-queue schedule means an update only touches slots that are
/// actually due, so the per-element cost should stay near-flat as the slot
/// count grows four orders of magnitude; what residual growth remains is
/// the amortised `k·ln(n)/n` replacement term, visible at 1M slots where
/// `k ≈ n`. Engine construction (an `O(k)` heap build) happens in the
/// unmeasured setup closure.
fn bench_engine_slots(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_engine_slots");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = default_rng(5);
    let stream = zipfian_stream(&mut rng, 65_536, 1_000_000, 1.1);
    group.throughput(Throughput::Elements(stream.len() as u64));

    for &slots in &[100usize, 10_000, 1_000_000] {
        group.bench_with_input(
            BenchmarkId::new("skip_ahead_engine", slots),
            &slots,
            |b, &slots| {
                b.iter_batched(
                    || SkipAheadEngine::with_seed(slots, 9),
                    |mut engine| {
                        engine.update_batch(&stream);
                        engine.seen()
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_update_time,
    bench_batch_vs_loop,
    bench_engine_slots
);
criterion_main!(benches);
