//! E12 benchmark: ingest throughput of the sharded front-end against the
//! single-instance batched path, on the 1M-update Zipf(1.1) workload the
//! perf gates track.
//!
//! Shards ingest on the persistent worker-pool runtime — each shard a
//! long-lived thread fed by an SPSC ring, with the coordinator's
//! route-and-stage pass pipelining against shard ingest — so the
//! shard-count curve follows the host's available parallelism; routing
//! cost and shard skew are the overheads the speedup has to amortise.
//! Every timed closure ends with `flush()`: `update_batch` returns once
//! the batch is *enqueued*, so the wall clock must include draining it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::sharded::{ShardedSamplerBuilder, ShardingStrategy};
use tps_random::default_rng;
use tps_streams::generators::zipfian_stream;
use tps_streams::StreamSampler;

fn bench_sharded_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_sharded_ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let mut rng = default_rng(12);
    let stream = zipfian_stream(&mut rng, 4_096, 1_000_000, 1.1);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("single_instance_batch", |b| {
        b.iter(|| {
            let mut sampler = TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 9);
            sampler.update_batch(&stream);
            sampler.processed()
        })
    });

    for &shards in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("hash_sharded", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut sharded = ShardedSamplerBuilder::new(shards)
                        .strategy(ShardingStrategy::Hash)
                        .seed(5)
                        .build(|idx| TrulyPerfectLpSampler::new(2.0, 4_096, 0.1, 40 + idx as u64));
                    sharded.update_batch(&stream);
                    sharded.flush();
                    sharded.processed()
                })
            },
        );
    }

    // Round-robin comparator: perfect balance, no per-item hash in the
    // scatter pass (exact for L1-style constant-increment measures).
    group.bench_with_input(BenchmarkId::new("round_robin_sharded", 4), &4, |b, _| {
        b.iter(|| {
            let mut sharded = ShardedSamplerBuilder::new(4)
                .strategy(ShardingStrategy::RoundRobin)
                .seed(5)
                .build(|idx| TrulyPerfectLpSampler::new(1.0, 4_096, 0.1, 60 + idx as u64));
            sharded.update_batch(&stream);
            sharded.flush();
            sharded.processed()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_ingest);
criterion_main!(benches);
