//! Ablation benchmarks for the design choices called out in `DESIGN.md` §4:
//!
//! 1. normaliser choice for `p ∈ (1, 2]` — deterministic Misra–Gries vs the
//!    SpaceSaving alternative (both valid; compares ingest cost),
//! 2. the shared-offsets `O(1)`-update framework vs naive per-instance
//!    reservoir units with their own counters,
//! 3. per-item reservoir coin vs skip-ahead reservoir sampling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;
use tps_core::framework::{MisraGriesNormalizer, TrulyPerfectGSampler};
use tps_core::sampler_unit::SamplerUnit;
use tps_random::{default_rng, ReservoirSampler, SkipReservoirSampler};
use tps_sketches::{MisraGries, SpaceSaving};
use tps_streams::generators::zipfian_stream;
use tps_streams::{Lp, StreamSampler};

fn bench_normalizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_normalizer");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(8);
    let stream = zipfian_stream(&mut rng, 4_096, 30_000, 1.1);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("misra_gries_64", |b| {
        b.iter(|| {
            let mut mg = MisraGries::new(64);
            for &x in &stream {
                mg.update(x);
            }
            mg.max_frequency_upper_bound()
        })
    });
    group.bench_function("space_saving_64", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(64);
            for &x in &stream {
                ss.update(x);
            }
            ss.max_frequency_upper_bound()
        })
    });
    group.finish();
}

fn bench_shared_offsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shared_offsets");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(9);
    let stream = zipfian_stream(&mut rng, 4_096, 30_000, 1.1);
    let instances = 128usize;
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("shared_offsets_framework", |b| {
        b.iter(|| {
            let g = Lp::new(2.0);
            let normalizer = MisraGriesNormalizer::new(2.0, 64);
            let mut sampler = TrulyPerfectGSampler::with_instances(g, normalizer, instances, 21);
            sampler.update_all(&stream);
            sampler.tracked_items()
        })
    });
    group.bench_function("naive_per_instance_units", |b| {
        b.iter(|| {
            let mut rng = default_rng(21);
            let mut units = vec![SamplerUnit::new(); instances];
            for &x in &stream {
                for unit in &mut units {
                    unit.update(&mut rng, x);
                }
            }
            units.iter().filter(|u| u.sample().is_some()).count()
        })
    });
    group.finish();
}

fn bench_reservoir_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reservoir");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut rng = default_rng(10);
    let stream = zipfian_stream(&mut rng, 4_096, 100_000, 1.0);
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("per_item_coin", |b| {
        b.iter(|| {
            let mut rng = default_rng(33);
            let mut reservoir = ReservoirSampler::new(1);
            for &x in &stream {
                reservoir.offer(&mut rng, x);
            }
            reservoir.single().map(|s| s.value)
        })
    });
    group.bench_function("skip_ahead", |b| {
        b.iter(|| {
            let mut rng = default_rng(33);
            let mut reservoir = SkipReservoirSampler::new();
            for &x in &stream {
                reservoir.offer(&mut rng, x);
            }
            reservoir.current().map(|s| s.value)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_normalizers,
    bench_shared_offsets,
    bench_reservoir_variants
);
criterion_main!(benches);
