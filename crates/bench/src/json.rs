//! Minimal JSON serialization for the experiment report.
//!
//! The offline build environment has no `serde`/`serde_json`, and the report
//! binary only ever *writes* JSON for a handful of plain-data row types, so
//! a small value tree plus hand-written [`ToJson`] impls covers the whole
//! need without a derive macro.

use crate::experiments as exp;

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (kept separate from floats so counts print exactly).
    Int(i64),
    /// A finite double.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Serializes with two-space indentation (the `serde_json` pretty style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-roundtrip and always parses as
                    // a JSON number for finite values.
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value tree.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl ToJson for exp::LpSpaceRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("p", self.p.to_json()),
            ("points", self.points.to_json()),
            ("instances", self.instances.to_json()),
            ("fitted_exponent", self.fitted_exponent.to_json()),
            ("theory_exponent", self.theory_exponent.to_json()),
        ])
    }
}

impl ToJson for exp::UpdateTimeRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "truly_perfect_nanos_per_update",
                self.truly_perfect_nanos_per_update.to_json(),
            ),
            (
                "truly_perfect_batch_nanos_per_update",
                self.truly_perfect_batch_nanos_per_update.to_json(),
            ),
            ("batch_speedup", self.batch_speedup.to_json()),
            (
                "baseline_duplications",
                self.baseline_duplications.to_json(),
            ),
            (
                "baseline_nanos_per_update",
                self.baseline_nanos_per_update.to_json(),
            ),
        ])
    }
}

impl ToJson for exp::DistributionRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("truly_perfect_tv", self.truly_perfect_tv.to_json()),
            ("expected_noise", self.expected_noise.to_json()),
            (
                "truly_perfect_drift_ratio",
                self.truly_perfect_drift_ratio.to_json(),
            ),
            ("biased_drift_ratio", self.biased_drift_ratio.to_json()),
            ("gamma", self.gamma.to_json()),
        ])
    }
}

impl ToJson for exp::SamplerRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("measure", self.measure.to_json()),
            ("tv_distance", self.tv_distance.to_json()),
            ("expected_noise", self.expected_noise.to_json()),
            ("fail_rate", self.fail_rate.to_json()),
            ("space_bytes", self.space_bytes.to_json()),
        ])
    }
}

impl ToJson for exp::F0Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("points", self.points.to_json()),
            (
                "fitted_space_exponent",
                self.fitted_space_exponent.to_json(),
            ),
            ("tv_distance", self.tv_distance.to_json()),
            ("fail_rate", self.fail_rate.to_json()),
        ])
    }
}

impl ToJson for exp::EqualityRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("gamma", self.gamma.to_json()),
            ("observed_advantage", self.observed_advantage.to_json()),
            ("lower_bound_bits", self.lower_bound_bits.to_json()),
        ])
    }
}

impl ToJson for exp::MultiPassRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("gamma", self.gamma.to_json()),
            ("passes", self.passes.to_json()),
            ("peak_counters", self.peak_counters.to_json()),
            ("tv_distance", self.tv_distance.to_json()),
        ])
    }
}

impl ToJson for exp::CheckpointRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("window", self.window.to_json()),
            ("checkpoints", self.checkpoints.to_json()),
            ("sandwich_holds", self.sandwich_holds.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a \"quoted\" name".into())),
            (
                "xs",
                Json::Arr(vec![Json::Int(1), Json::Num(0.5), Json::Null]),
            ),
            ("ok", Json::Bool(true)),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"a \\\"quoted\\\" name\""));
        assert!(s.contains("0.5"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }
}
