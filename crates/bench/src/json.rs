//! Minimal JSON serialization and parsing for the experiment report.
//!
//! The offline build environment has no `serde`/`serde_json`. The report
//! binary only ever *writes* JSON for a handful of plain-data row types, so
//! a small value tree plus hand-written [`ToJson`] impls covers that need
//! without a derive macro; the `bench_regression` comparator additionally
//! *reads* the documents back ([`JsonValue::parse`]), so a matching
//! recursive-descent parser with path accessors lives here too.

use crate::experiments as exp;

/// An owned, parsed JSON value (the read-side counterpart of [`Json`],
/// which keeps `&'static str` keys for cheap emission).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any JSON number (parsed as a double; the reports only compare
    /// medians and throughputs, where f64 is exact enough).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Descends a `.`-separated member path (`"quick_report.e3_update_time"`).
    pub fn get_path(&self, path: &str) -> Option<&JsonValue> {
        path.split('.').try_fold(self, |node, key| node.get(key))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(JsonValue::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs don't occur in our own documents.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. The input came in as a &str, so
                // boundaries are sound; validate at most 4 bytes rather than
                // the whole remaining document.
                let end = (*pos + 4).min(bytes.len());
                let rest = std::str::from_utf8(&bytes[*pos..end])
                    .map(|s| s.chars().next())
                    .unwrap_or_else(|e| {
                        std::str::from_utf8(&bytes[*pos..*pos + e.valid_up_to()])
                            .ok()
                            .and_then(|s| s.chars().next())
                    });
                let c = rest.ok_or("bad UTF-8 in string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (kept separate from floats so counts print exactly).
    Int(i64),
    /// A finite double.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Serializes with two-space indentation (the `serde_json` pretty style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-roundtrip and always parses as
                    // a JSON number for finite values.
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value tree.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl ToJson for exp::ShardedRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("shards", self.shards.to_json()),
            ("melem_per_s", self.melem_per_s.to_json()),
            ("speedup_vs_single", self.speedup_vs_single.to_json()),
            (
                "critical_path_melem_per_s",
                self.critical_path_melem_per_s.to_json(),
            ),
            (
                "critical_path_speedup",
                self.critical_path_speedup.to_json(),
            ),
        ])
    }
}

impl ToJson for exp::ShardedScaling {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cores", self.cores.to_json()),
            ("stream_length", self.stream_length.to_json()),
            ("single_melem_per_s", self.single_melem_per_s.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for exp::RuntimeRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("shards", self.shards.to_json()),
            ("runtime_melem_per_s", self.runtime_melem_per_s.to_json()),
            ("scoped_melem_per_s", self.scoped_melem_per_s.to_json()),
            ("runtime_vs_scoped", self.runtime_vs_scoped.to_json()),
        ])
    }
}

impl ToJson for exp::RuntimeReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cores", self.cores.to_json()),
            ("stream_length", self.stream_length.to_json()),
            ("batch_len", self.batch_len.to_json()),
            ("rows", self.rows.to_json()),
            ("query_every_batches", self.query_every_batches.to_json()),
            ("quiet_melem_per_s", self.quiet_melem_per_s.to_json()),
            ("querying_melem_per_s", self.querying_melem_per_s.to_json()),
            ("querying_vs_quiet", self.querying_vs_quiet.to_json()),
            (
                "snapshot_query_micros",
                self.snapshot_query_micros.to_json(),
            ),
            (
                "clone_merge_query_micros",
                self.clone_merge_query_micros.to_json(),
            ),
        ])
    }
}

impl ToJson for exp::CheckpointBench {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("stream_length", self.stream_length.to_json()),
            ("checkpoints", self.checkpoints.to_json()),
            ("delta_frames", self.delta_frames.to_json()),
            ("full_frames", self.full_frames.to_json()),
            (
                "full_snapshot_bytes_mean",
                self.full_snapshot_bytes_mean.to_json(),
            ),
            (
                "delta_frame_bytes_mean",
                self.delta_frame_bytes_mean.to_json(),
            ),
            ("full_over_delta", self.full_over_delta.to_json()),
            ("chain_bytes_vs_full", self.chain_bytes_vs_full.to_json()),
            ("recovery_micros", self.recovery_micros.to_json()),
            (
                "recovery_byte_identical",
                self.recovery_byte_identical.to_json(),
            ),
        ])
    }
}

impl ToJson for exp::LpSpaceRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("p", self.p.to_json()),
            ("points", self.points.to_json()),
            ("instances", self.instances.to_json()),
            ("fitted_exponent", self.fitted_exponent.to_json()),
            ("theory_exponent", self.theory_exponent.to_json()),
        ])
    }
}

impl ToJson for exp::UpdateTimeRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "truly_perfect_nanos_per_update",
                self.truly_perfect_nanos_per_update.to_json(),
            ),
            (
                "truly_perfect_batch_nanos_per_update",
                self.truly_perfect_batch_nanos_per_update.to_json(),
            ),
            ("batch_speedup", self.batch_speedup.to_json()),
            (
                "turnstile_f0_nanos_per_update",
                self.turnstile_f0_nanos_per_update.to_json(),
            ),
            (
                "turnstile_f0_batch_nanos_per_update",
                self.turnstile_f0_batch_nanos_per_update.to_json(),
            ),
            (
                "turnstile_batch_speedup",
                self.turnstile_batch_speedup.to_json(),
            ),
            (
                "baseline_duplications",
                self.baseline_duplications.to_json(),
            ),
            (
                "baseline_nanos_per_update",
                self.baseline_nanos_per_update.to_json(),
            ),
            ("engine_slot_counts", self.engine_slot_counts.to_json()),
            (
                "engine_stream_lengths",
                self.engine_stream_lengths.to_json(),
            ),
            (
                "engine_nanos_per_update",
                self.engine_nanos_per_update.to_json(),
            ),
        ])
    }
}

impl ToJson for exp::DistributionRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("truly_perfect_tv", self.truly_perfect_tv.to_json()),
            ("expected_noise", self.expected_noise.to_json()),
            (
                "truly_perfect_drift_ratio",
                self.truly_perfect_drift_ratio.to_json(),
            ),
            ("biased_drift_ratio", self.biased_drift_ratio.to_json()),
            ("gamma", self.gamma.to_json()),
        ])
    }
}

impl ToJson for exp::SamplerRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("measure", self.measure.to_json()),
            ("tv_distance", self.tv_distance.to_json()),
            ("expected_noise", self.expected_noise.to_json()),
            ("fail_rate", self.fail_rate.to_json()),
            ("space_bytes", self.space_bytes.to_json()),
        ])
    }
}

impl ToJson for exp::F0Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("points", self.points.to_json()),
            (
                "fitted_space_exponent",
                self.fitted_space_exponent.to_json(),
            ),
            ("tv_distance", self.tv_distance.to_json()),
            ("fail_rate", self.fail_rate.to_json()),
        ])
    }
}

impl ToJson for exp::EqualityRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("gamma", self.gamma.to_json()),
            ("observed_advantage", self.observed_advantage.to_json()),
            ("lower_bound_bits", self.lower_bound_bits.to_json()),
        ])
    }
}

impl ToJson for exp::MultiPassRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("gamma", self.gamma.to_json()),
            ("passes", self.passes.to_json()),
            ("peak_counters", self.peak_counters.to_json()),
            ("tv_distance", self.tv_distance.to_json()),
        ])
    }
}

impl ToJson for exp::CheckpointRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("window", self.window.to_json()),
            ("checkpoints", self.checkpoints.to_json()),
            ("sandwich_holds", self.sandwich_holds.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a \"quoted\" name".into())),
            (
                "xs",
                Json::Arr(vec![Json::Int(1), Json::Num(0.5), Json::Null]),
            ),
            ("ok", Json::Bool(true)),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"a \\\"quoted\\\" name\""));
        assert!(s.contains("0.5"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn parse_roundtrips_emitted_documents() {
        let v = Json::Obj(vec![
            ("name", Json::Str("a \"quoted\"\nname".into())),
            (
                "xs",
                Json::Arr(vec![Json::Int(-3), Json::Num(0.5), Json::Null]),
            ),
            ("nested", Json::Obj(vec![("ok", Json::Bool(true))])),
            ("empty", Json::Arr(vec![])),
        ]);
        let parsed = JsonValue::parse(&v.pretty()).unwrap();
        assert_eq!(
            parsed.get("name"),
            Some(&JsonValue::Str("a \"quoted\"\nname".into()))
        );
        assert_eq!(parsed.get_path("nested.ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            parsed.get("xs"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(-3.0),
                JsonValue::Num(0.5),
                JsonValue::Null
            ]))
        );
        assert_eq!(parsed.get("empty"), Some(&JsonValue::Arr(vec![])));
    }

    #[test]
    fn parse_handles_numbers_and_rejects_garbage() {
        assert_eq!(
            JsonValue::parse("[1, 2.5e3, -0.25]").unwrap(),
            JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2500.0),
                JsonValue::Num(-0.25)
            ])
        );
        assert!(JsonValue::parse("{\"a\": 1} trailing").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn parse_handles_multibyte_strings() {
        // 2-, 3- and 4-byte scalars, adjacent and at end-of-string, plus a
        // \u escape: exercises the bounded UTF-8 width decoding.
        let doc = JsonValue::parse("{\"k\": \"ζ≥G — 𝄞ok𝄞\", \"u\": \"\\u03b6\"}").unwrap();
        assert_eq!(doc.get("k"), Some(&JsonValue::Str("ζ≥G — 𝄞ok𝄞".into())));
        assert_eq!(doc.get("u"), Some(&JsonValue::Str("ζ".into())));
    }

    #[test]
    fn get_path_descends_and_misses_cleanly() {
        let doc = JsonValue::parse(r#"{"a": {"b": {"c": 7}}}"#).unwrap();
        assert_eq!(doc.get_path("a.b.c").and_then(JsonValue::as_f64), Some(7.0));
        assert_eq!(doc.get_path("a.b.missing"), None);
        assert_eq!(doc.get_path("a.b.c.too_deep"), None);
    }
}
