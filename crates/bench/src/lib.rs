//! # tps-bench
//!
//! The benchmark and experiment harness.
//!
//! The paper has no empirical evaluation section, so every theorem-level
//! claim is treated as an experiment (see `DESIGN.md` §3 and
//! `EXPERIMENTS.md`). The [`experiments`] module implements each experiment
//! as a pure function returning structured rows so that
//!
//! * the `report` binary (`cargo run --release -p tps-bench --bin report`)
//!   can print the full table that `EXPERIMENTS.md` records,
//! * the `experiments_smoke` integration test can assert the *shape* of each
//!   result at a reduced scale, and
//! * the Criterion benches can focus on wall-clock measurements (update
//!   time, sample latency) without duplicating workload-generation logic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod json;
