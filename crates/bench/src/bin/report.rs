//! The experiment report generator.
//!
//! Runs every experiment of `EXPERIMENTS.md` (E1–E14, F1) at full scale and
//! prints the result rows as human-readable tables; pass `--json` to emit a
//! machine-readable JSON document instead, and `--quick` to run at the
//! reduced scale used by CI. `--sharded` runs *only* the E12 shard-scaling
//! experiment at its full 1M-Zipf scale (the `BENCH_sharded.json` workload)
//! regardless of `--quick`; `--runtime` does the same for the E13
//! persistent-runtime experiment (the `BENCH_runtime.json` workload), and
//! `--checkpoint` for the E14 incremental-checkpointing experiment (the
//! `BENCH_checkpoint.json` workload).
//!
//! ```text
//! cargo run --release -p tps-bench --bin report -- \
//!     [--quick] [--json] [--sharded] [--runtime] [--checkpoint]
//! ```

use tps_bench::experiments as exp;
use tps_bench::json::{Json, ToJson};

struct Report {
    scale: &'static str,
    e1_lp_space: Vec<exp::LpSpaceRow>,
    e2_fractional_space: Vec<exp::LpSpaceRow>,
    e3_update_time: exp::UpdateTimeRow,
    e4_distribution: exp::DistributionRow,
    e5_mestimators: Vec<exp::SamplerRow>,
    e6_f0: exp::F0Row,
    e7_sliding: Vec<exp::SamplerRow>,
    e8_random_order: Vec<exp::SamplerRow>,
    e9_equality: Vec<exp::EqualityRow>,
    e10_multipass: Vec<exp::MultiPassRow>,
    e11_matrix: Vec<exp::SamplerRow>,
    e12_sharded: exp::ShardedScaling,
    e13_runtime: exp::RuntimeReport,
    e14_checkpoint: exp::CheckpointBench,
    f1_checkpoints: Vec<exp::CheckpointRow>,
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scale", self.scale.to_json()),
            ("e1_lp_space", self.e1_lp_space.to_json()),
            ("e2_fractional_space", self.e2_fractional_space.to_json()),
            ("e3_update_time", self.e3_update_time.to_json()),
            ("e4_distribution", self.e4_distribution.to_json()),
            ("e5_mestimators", self.e5_mestimators.to_json()),
            ("e6_f0", self.e6_f0.to_json()),
            ("e7_sliding", self.e7_sliding.to_json()),
            ("e8_random_order", self.e8_random_order.to_json()),
            ("e9_equality", self.e9_equality.to_json()),
            ("e10_multipass", self.e10_multipass.to_json()),
            ("e11_matrix", self.e11_matrix.to_json()),
            ("e12_sharded", self.e12_sharded.to_json()),
            ("e13_runtime", self.e13_runtime.to_json()),
            ("e14_checkpoint", self.e14_checkpoint.to_json()),
            ("f1_checkpoints", self.f1_checkpoints.to_json()),
        ])
    }
}

fn build_report(quick: bool) -> Report {
    if quick {
        Report {
            scale: "quick",
            e1_lp_space: exp::e1_lp_space(&[256, 1_024, 4_096], &[1.25, 1.5, 2.0], 0.1),
            e2_fractional_space: exp::e2_fractional_space(
                &[1_000, 4_000, 16_000],
                &[0.5, 0.75],
                0.1,
            ),
            e3_update_time: exp::e3_update_time(20_000, 1_024, &[8, 32, 128], &[100, 10_000]),
            e4_distribution: exp::e4_distribution(10_000, 64, 10, 500, 0.05),
            e5_mestimators: exp::e5_mestimators(4_000, 48, 800),
            e6_f0: exp::e6_f0(&[1_024, 4_096, 16_384], 500),
            e7_sliding: exp::e7_sliding(300, 1_800, 400),
            e8_random_order: exp::e8_random_order(2_000),
            e9_equality: exp::e9_equality(&[0.0, 0.01, 0.05, 0.1], 128, 4_000),
            e10_multipass: exp::e10_multipass(4_096, 3_000, &[0.5, 0.25, 0.125]),
            e11_matrix: exp::e11_matrix(&[4, 16], 400),
            e12_sharded: exp::e12_sharded(200_000, 4_096, &[1, 2, 4]),
            e13_runtime: exp::e13_runtime(200_000, 4_096, &[1, 2, 4]),
            e14_checkpoint: exp::e14_checkpoint(200_000, 4_096, 50),
            f1_checkpoints: exp::f1_checkpoints(&[1_000, 10_000]),
        }
    } else {
        Report {
            scale: "full",
            e1_lp_space: exp::e1_lp_space(
                &[256, 1_024, 4_096, 16_384],
                &[1.0, 1.25, 1.5, 2.0],
                0.05,
            ),
            e2_fractional_space: exp::e2_fractional_space(
                &[1_000, 4_000, 16_000, 64_000],
                &[0.25, 0.5, 0.75],
                0.05,
            ),
            e3_update_time: exp::e3_update_time(
                100_000,
                4_096,
                &[8, 32, 128, 512],
                &[100, 10_000, 1_000_000],
            ),
            e4_distribution: exp::e4_distribution(40_000, 128, 20, 1_500, 0.05),
            e5_mestimators: exp::e5_mestimators(20_000, 64, 2_000),
            e6_f0: exp::e6_f0(&[1_024, 4_096, 16_384, 65_536], 1_500),
            e7_sliding: exp::e7_sliding(400, 2_400, 500),
            e8_random_order: exp::e8_random_order(8_000),
            e9_equality: exp::e9_equality(&[0.0, 0.001, 0.01, 0.05, 0.1], 256, 20_000),
            e10_multipass: exp::e10_multipass(16_384, 8_000, &[0.5, 0.25, 0.125]),
            e11_matrix: exp::e11_matrix(&[4, 16, 64], 800),
            e12_sharded: sharded_scaling_full(),
            e13_runtime: runtime_report_full(),
            e14_checkpoint: checkpoint_bench_full(),
            f1_checkpoints: exp::f1_checkpoints(&[1_000, 10_000, 100_000]),
        }
    }
}

/// The E12 acceptance workload: shard-count scaling of hash-sharded L2
/// ingest on the 1M-update Zipf(1.1) stream (the `BENCH_sharded.json`
/// record).
fn sharded_scaling_full() -> exp::ShardedScaling {
    exp::e12_sharded(1_000_000, 4_096, &[1, 2, 4, 8])
}

/// The E13 acceptance workload: persistent-runtime ingest vs the retired
/// scoped-thread path plus the ingest-during-query leg on the 1M-update
/// Zipf(1.1) stream (the `BENCH_runtime.json` record).
fn runtime_report_full() -> exp::RuntimeReport {
    exp::e13_runtime(1_000_000, 4_096, &[1, 2, 4, 8])
}

/// The E14 acceptance workload: incremental vs full checkpoint sizes and
/// chain-replay recovery on the 1M-update hot-shard Zipf(1.5) stream (the
/// `BENCH_checkpoint.json` record). The acceptance bar asks deltas ≥ 4x
/// smaller than full snapshots with byte-identical recovery.
fn checkpoint_bench_full() -> exp::CheckpointBench {
    exp::e14_checkpoint(1_000_000, 4_096, 100)
}

fn print_sampler_rows(title: &str, rows: &[exp::SamplerRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>10} {:>12} {:>10} {:>12}",
        "sampler", "TV", "noise floor", "fail rate", "space (KiB)"
    );
    for r in rows {
        println!(
            "{:<28} {:>10.4} {:>12.4} {:>10.3} {:>12.1}",
            r.measure,
            r.tv_distance,
            r.expected_noise,
            r.fail_rate,
            r.space_bytes as f64 / 1024.0
        );
    }
}

fn print_sharded(scaling: &exp::ShardedScaling) {
    println!(
        "\n== E12: sharded ingest scaling ({} updates, {} core(s) available) ==",
        scaling.stream_length, scaling.cores
    );
    println!(
        "single-instance batched baseline  : {:>8.2} Melem/s",
        scaling.single_melem_per_s
    );
    println!(
        "{:>10} {:>14} {:>12} {:>18} {:>14}",
        "shards", "Melem/s", "speedup", "critical Melem/s", "crit speedup"
    );
    for r in &scaling.rows {
        println!(
            "{:>10} {:>14.2} {:>12.2} {:>18.2} {:>14.2}",
            r.shards,
            r.melem_per_s,
            r.speedup_vs_single,
            r.critical_path_melem_per_s,
            r.critical_path_speedup
        );
    }
}

fn print_runtime(report: &exp::RuntimeReport) {
    println!(
        "\n== E13: persistent runtime vs scoped threads ({} updates in {}-item batches, \
         {} core(s) available) ==",
        report.stream_length, report.batch_len, report.cores
    );
    println!(
        "{:>10} {:>18} {:>18} {:>10}",
        "shards", "runtime Melem/s", "scoped Melem/s", "ratio"
    );
    for r in &report.rows {
        println!(
            "{:>10} {:>18.2} {:>18.2} {:>10.2}",
            r.shards, r.runtime_melem_per_s, r.scoped_melem_per_s, r.runtime_vs_scoped
        );
    }
    println!(
        "ingest w/ query every {} batches : {:.2} Melem/s vs {:.2} quiet ({:.2}x)",
        report.query_every_batches,
        report.querying_melem_per_s,
        report.quiet_melem_per_s,
        report.querying_vs_quiet
    );
    println!(
        "query latency                    : {:.1} us snapshot-isolated vs {:.1} us clone-and-merge",
        report.snapshot_query_micros, report.clone_merge_query_micros
    );
}

fn print_checkpoint(bench: &exp::CheckpointBench) {
    println!(
        "\n== E14: incremental checkpointing ({} updates, {} checkpoints) ==",
        bench.stream_length, bench.checkpoints
    );
    println!(
        "chain frames                     : {} delta + {} full",
        bench.delta_frames, bench.full_frames
    );
    println!(
        "mean full snapshot               : {:>10.0} bytes",
        bench.full_snapshot_bytes_mean
    );
    println!(
        "mean delta frame                 : {:>10.0} bytes ({:.1}x smaller)",
        bench.delta_frame_bytes_mean, bench.full_over_delta
    );
    println!(
        "chain bytes vs always-full       : {:>10.3}",
        bench.chain_bytes_vs_full
    );
    println!(
        "chain replay + restore           : {:>10.1} us (byte-identical: {})",
        bench.recovery_micros, bench.recovery_byte_identical
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--checkpoint") {
        let bench = checkpoint_bench_full();
        if json {
            let doc = Json::Obj(vec![
                ("scale", "checkpoint".to_json()),
                ("e14_checkpoint", bench.to_json()),
            ]);
            println!("{}", doc.pretty());
        } else {
            print_checkpoint(&bench);
        }
        return;
    }
    if args.iter().any(|a| a == "--runtime") {
        let report = runtime_report_full();
        if json {
            let doc = Json::Obj(vec![
                ("scale", "runtime".to_json()),
                ("e13_runtime", report.to_json()),
            ]);
            println!("{}", doc.pretty());
        } else {
            print_runtime(&report);
        }
        return;
    }
    if args.iter().any(|a| a == "--sharded") {
        let scaling = sharded_scaling_full();
        if json {
            let doc = Json::Obj(vec![
                ("scale", "sharded".to_json()),
                ("e12_sharded", scaling.to_json()),
            ]);
            println!("{}", doc.pretty());
        } else {
            print_sharded(&scaling);
        }
        return;
    }
    let report = build_report(quick);

    if json {
        println!("{}", report.to_json().pretty());
        return;
    }

    println!(
        "truly-perfect-samplers experiment report (scale: {})",
        report.scale
    );

    println!("\n== E1: truly perfect Lp space vs universe size (theory: n^(1-1/p)) ==");
    println!(
        "{:<6} {:>40} {:>12} {:>12}",
        "p", "space bytes per n", "fitted exp", "theory exp"
    );
    for r in &report.e1_lp_space {
        let pts: Vec<String> = r.points.iter().map(|(n, b)| format!("{n}:{b}")).collect();
        println!(
            "{:<6} {:>40} {:>12.3} {:>12.3}",
            r.p,
            pts.join(" "),
            r.fitted_exponent,
            r.theory_exponent
        );
    }

    println!("\n== E2: fractional-p instance count vs stream length (theory: m^(1-p)) ==");
    println!(
        "{:<6} {:>40} {:>12} {:>12}",
        "p", "instances per m", "fitted exp", "theory exp"
    );
    for r in &report.e2_fractional_space {
        let pts: Vec<String> = r
            .points
            .iter()
            .zip(&r.instances)
            .map(|((m, _), k)| format!("{m}:{k}"))
            .collect();
        println!(
            "{:<6} {:>40} {:>12.3} {:>12.3}",
            r.p,
            pts.join(" "),
            r.fitted_exponent,
            r.theory_exponent
        );
    }

    println!("\n== E3: update time (ns/update) ==");
    println!(
        "truly perfect L2 sampler      : {:>10.0}",
        report.e3_update_time.truly_perfect_nanos_per_update
    );
    println!(
        "truly perfect L2, batched     : {:>10.0}  (speedup {:.2}x)",
        report.e3_update_time.truly_perfect_batch_nanos_per_update,
        report.e3_update_time.batch_speedup
    );
    println!(
        "strict turnstile F0           : {:>10.0}",
        report.e3_update_time.turnstile_f0_nanos_per_update
    );
    println!(
        "strict turnstile F0, batched  : {:>10.0}  (speedup {:.2}x)",
        report.e3_update_time.turnstile_f0_batch_nanos_per_update,
        report.e3_update_time.turnstile_batch_speedup
    );
    for (dup, nanos) in report
        .e3_update_time
        .baseline_duplications
        .iter()
        .zip(&report.e3_update_time.baseline_nanos_per_update)
    {
        println!("perfect baseline, dup = {dup:<6}: {nanos:>10.0}");
    }
    for ((slots, len), nanos) in report
        .e3_update_time
        .engine_slot_counts
        .iter()
        .zip(&report.e3_update_time.engine_stream_lengths)
        .zip(&report.e3_update_time.engine_nanos_per_update)
    {
        println!("skip-ahead engine, {slots:>9} slots (n = {len:>9}): {nanos:>10.0}");
    }

    println!("\n== E4: exactness and composition drift ==");
    let d = &report.e4_distribution;
    println!(
        "single-run TV (truly perfect)     : {:.4}",
        d.truly_perfect_tv
    );
    println!(
        "multinomial noise floor           : {:.4}",
        d.expected_noise
    );
    println!(
        "drift ratio, truly perfect        : {:.2}",
        d.truly_perfect_drift_ratio
    );
    println!(
        "drift ratio, gamma = {:<12.3}: {:.2}",
        d.gamma, d.biased_drift_ratio
    );

    print_sampler_rows("E5: M-estimator samplers", &report.e5_mestimators);

    println!("\n== E6: F0 sampler ==");
    let f = &report.e6_f0;
    let pts: Vec<String> = f.points.iter().map(|(n, b)| format!("{n}:{b}")).collect();
    println!("space per universe size           : {}", pts.join(" "));
    println!(
        "fitted space exponent (theory 0.5): {:.3}",
        f.fitted_space_exponent
    );
    println!("TV at largest size                : {:.4}", f.tv_distance);
    println!("fail rate at largest size         : {:.4}", f.fail_rate);

    print_sampler_rows("E7: sliding-window samplers", &report.e7_sliding);
    print_sampler_rows("E8: random-order samplers", &report.e8_random_order);

    println!("\n== E9: equality attack vs gamma (Theorem 1.2) ==");
    println!(
        "{:>10} {:>22} {:>22}",
        "gamma", "observed advantage", "lower bound (bits)"
    );
    for r in &report.e9_equality {
        println!(
            "{:>10.4} {:>22.4} {:>22.2}",
            r.gamma, r.observed_advantage, r.lower_bound_bits
        );
    }

    println!("\n== E10: strict-turnstile multi-pass trade-off (Theorem 1.5) ==");
    println!(
        "{:>10} {:>10} {:>16} {:>10}",
        "gamma", "passes", "peak counters", "TV"
    );
    for r in &report.e10_multipass {
        println!(
            "{:>10.3} {:>10} {:>16} {:>10.4}",
            r.gamma, r.passes, r.peak_counters, r.tv_distance
        );
    }

    print_sampler_rows("E11: matrix row sampling", &report.e11_matrix);

    print_sharded(&report.e12_sharded);
    print_runtime(&report.e13_runtime);
    print_checkpoint(&report.e14_checkpoint);

    println!("\n== F1: smooth-histogram checkpoints ==");
    println!(
        "{:>12} {:>14} {:>16}",
        "window", "checkpoints", "sandwich holds"
    );
    for r in &report.f1_checkpoints {
        println!(
            "{:>12} {:>14} {:>16}",
            r.window, r.checkpoints, r.sandwich_holds
        );
    }
}
