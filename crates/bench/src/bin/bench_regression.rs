//! CI perf-regression gate.
//!
//! Compares the ingest/update medians of a freshly generated quick report
//! (`cargo run --release -p tps-bench --bin report -- --quick --json`)
//! against the committed baseline (`BENCH_baseline.json`, whose quick
//! report is nested under `quick_report`) and fails the build when the hot
//! path regresses:
//!
//! * per-item loop and batched ingest medians may not exceed the baseline
//!   by more than the tolerance (default ±15%, `--tolerance 0.15`);
//! * batched ingest throughput must additionally stay at ≥ 0.95× the
//!   baseline (the acceptance floor for the L2 batch engine), which is the
//!   tighter of the two bounds.
//!
//! With `--runtime <runtime.json>` the gate additionally judges the E13
//! persistent-runtime report (`report -- --runtime --json`, the
//! `BENCH_runtime.json` workload). Those checks are *self-contained
//! ratios* of two same-host wall clocks measured inside one report run,
//! so no committed baseline is involved:
//!
//! * persistent-runtime ingest must stay ≥ 0.95× the retired scoped-thread
//!   path at the acceptance shard count (4, or the largest measured);
//! * ingest throughput with periodic snapshot-isolated queries must stay
//!   ≥ 0.9× the query-free run (the "queries are off the hot path" bar).
//!
//! ```text
//! bench_regression --baseline BENCH_baseline.json --report report.json \
//!     [--tolerance 0.15] [--runtime runtime.json]
//! ```
//!
//! Exits 0 when every metric is within bounds, 1 on regression, 2 on
//! malformed inputs.

use tps_bench::json::JsonValue;

/// One compared metric: lower is better (ns per update).
struct Metric {
    name: &'static str,
    key: &'static str,
    /// Maximum allowed current/baseline ratio.
    max_ratio: f64,
}

fn fail_usage(msg: &str) -> ! {
    eprintln!("bench_regression: {msg}");
    eprintln!(
        "usage: bench_regression --baseline <BENCH_baseline.json> --report <report.json> \
         [--tolerance 0.15] [--runtime <runtime.json>]"
    );
    std::process::exit(2);
}

fn read_json(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_usage(&format!("cannot read {path}: {e}")));
    JsonValue::parse(&text).unwrap_or_else(|e| fail_usage(&format!("cannot parse {path}: {e}")))
}

/// The `e3_update_time` object, whether the document is a bare quick
/// report or a baseline file nesting one under `quick_report`.
fn e3_section<'a>(doc: &'a JsonValue, path: &str) -> &'a JsonValue {
    doc.get_path("quick_report.e3_update_time")
        .or_else(|| doc.get("e3_update_time"))
        .unwrap_or_else(|| fail_usage(&format!("{path}: no e3_update_time section")))
}

fn metric_value(section: &JsonValue, key: &str, path: &str) -> f64 {
    let value = section
        .get(key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| fail_usage(&format!("{path}: missing numeric `{key}`")));
    if value <= 0.0 || !value.is_finite() {
        fail_usage(&format!("{path}: `{key}` = {value} is not a positive time"));
    }
    value
}

/// Gates the E13 persistent-runtime report. Both checks are ratios of two
/// wall clocks measured on the same host inside the same report run, so
/// they transfer across runner hardware; the floors are the PR acceptance
/// bars, independent of `--tolerance`. Returns whether anything regressed.
fn runtime_regressed(path: &str) -> bool {
    let doc = read_json(path);
    // Accept the bare `--runtime` report, a committed baseline nesting it
    // under `runtime_report` (the `quick_report` convention), or a full
    // report carrying `e13_runtime` alongside the other experiments.
    let section = doc
        .get_path("runtime_report.e13_runtime")
        .or_else(|| doc.get("e13_runtime"))
        .unwrap_or_else(|| fail_usage(&format!("{path}: no e13_runtime section")));
    let rows = match section.get("rows") {
        Some(JsonValue::Arr(rows)) if !rows.is_empty() => rows,
        _ => fail_usage(&format!("{path}: no e13_runtime rows array")),
    };
    let acceptance_row = rows
        .iter()
        .find(|row| row.get("shards").and_then(JsonValue::as_f64) == Some(4.0))
        .unwrap_or_else(|| rows.last().unwrap());
    let shards = acceptance_row
        .get("shards")
        .and_then(JsonValue::as_f64)
        .unwrap_or(f64::NAN);
    let vs_scoped = acceptance_row
        .get("runtime_vs_scoped")
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| fail_usage(&format!("{path}: missing runtime_vs_scoped")));
    let vs_quiet = metric_value(section, "querying_vs_quiet", path);

    let mut regressed = false;
    println!(
        "{:<44} {:>8} {:>8}  status",
        "runtime metric (higher is better)", "ratio", "floor"
    );
    for (name, ratio, floor) in [
        (
            format!("runtime vs scoped ingest, {shards:.0} shards"),
            vs_scoped,
            0.95,
        ),
        (
            "ingest w/ periodic queries vs quiet".to_string(),
            vs_quiet,
            0.90,
        ),
    ] {
        let ok = ratio.is_finite() && ratio >= floor;
        regressed |= !ok;
        println!(
            "{:<44} {:>8.3} {:>8.3}  {}",
            name,
            ratio,
            floor,
            if ok { "ok" } else { "REGRESSION" }
        );
    }
    regressed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut report_path = None;
    let mut runtime_path = None;
    let mut tolerance = 0.15f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = it.next().cloned(),
            "--report" => report_path = it.next().cloned(),
            "--runtime" => runtime_path = it.next().cloned(),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail_usage("--tolerance needs a number"));
                if !(0.0..1.0).contains(&tolerance) {
                    fail_usage("--tolerance must be in [0, 1)");
                }
            }
            other => fail_usage(&format!("unknown argument `{other}`")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| fail_usage("--baseline is required"));
    let report_path = report_path.unwrap_or_else(|| fail_usage("--report is required"));

    let baseline_doc = read_json(&baseline_path);
    let report_doc = read_json(&report_path);
    let baseline = e3_section(&baseline_doc, &baseline_path);
    let report = e3_section(&report_doc, &report_path);

    // Batched ingest carries the extra ≥ 0.95× throughput floor; in time
    // terms that is ≤ baseline/0.95 ns, tighter than the ±15% band.
    let metrics = [
        Metric {
            name: "per-item ingest (loop)",
            key: "truly_perfect_nanos_per_update",
            max_ratio: 1.0 + tolerance,
        },
        Metric {
            name: "batched ingest",
            key: "truly_perfect_batch_nanos_per_update",
            max_ratio: (1.0 + tolerance).min(1.0 / 0.95),
        },
    ];

    println!(
        "{:<24} {:>14} {:>14} {:>8} {:>8}  status",
        "metric", "baseline ns", "current ns", "ratio", "bound"
    );
    let mut regressed = false;
    for m in &metrics {
        let base = metric_value(baseline, m.key, &baseline_path);
        let cur = metric_value(report, m.key, &report_path);
        let ratio = cur / base;
        let ok = ratio <= m.max_ratio;
        regressed |= !ok;
        println!(
            "{:<24} {:>14.3} {:>14.3} {:>8.3} {:>8.3}  {}",
            m.name,
            base,
            cur,
            ratio,
            m.max_ratio,
            if ok { "ok" } else { "REGRESSION" }
        );
    }
    let batch_melem =
        1_000.0 / metric_value(report, "truly_perfect_batch_nanos_per_update", &report_path);
    println!("batched ingest throughput: {batch_melem:.1} Melem/s");

    if let Some(runtime_path) = runtime_path {
        regressed |= runtime_regressed(&runtime_path);
    }

    if regressed {
        eprintln!(
            "bench_regression: hot-path medians regressed beyond tolerance \
             (baseline {baseline_path})"
        );
        std::process::exit(1);
    }
    println!("bench_regression: all metrics within tolerance");
}
