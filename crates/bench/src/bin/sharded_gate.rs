//! CI gate for the sharded scaling report's **hardware-transferable**
//! metric.
//!
//! The E12 report carries two families of numbers: wall-clock throughput
//! (pinned to the runner's core count — one-core CI runners report ~1×
//! regardless of how well the front-end scales) and the per-stage critical
//! path (the slower of the coordinator's scatter pass and the slowest
//! shard ingest, each measured in isolation), which is the wall clock the
//! pipelined runtime attains once `cores > shards` and therefore transfers
//! across hosts. This gate always enforces a floor on the critical-path
//! speedup at a chosen shard count; the wall-clock leg is gated **only
//! when the report's recorded `cores` covers the shard count** (the
//! speedup is physically unattainable below that), and is a logged skip
//! otherwise, so multi-core runners enforce real end-to-end scaling while
//! starved runners stay green without weakening the gate.
//!
//! ```text
//! sharded_gate --report sharded.json [--shards 4] [--min-speedup 2.0] \
//!     [--min-wall-speedup 2.0] [--out decision.json]
//! ```
//!
//! Exits 0 when every applicable floor holds, 1 on regression, 2 on
//! malformed inputs. With `--out`, the gate also records its decision —
//! the runner's core count, both measured speedups, and whether the
//! wall-clock floor actually fired or was skipped as unattainable — as a
//! small JSON file for the CI artifact, so a green run on a starved
//! one-core runner is distinguishable from a green run that really
//! enforced end-to-end scaling.

use tps_bench::json::JsonValue;

fn fail_usage(msg: &str) -> ! {
    eprintln!("sharded_gate: {msg}");
    eprintln!(
        "usage: sharded_gate --report <sharded.json> [--shards 4] [--min-speedup 2.0] \
         [--min-wall-speedup 2.0] [--out decision.json]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut report_path = None;
    let mut out_path = None;
    let mut shards = 4.0f64;
    let mut min_speedup = 2.0f64;
    let mut min_wall_speedup = 2.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => report_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail_usage("--shards needs a number"));
            }
            "--min-speedup" => {
                min_speedup = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail_usage("--min-speedup needs a number"));
            }
            "--min-wall-speedup" => {
                min_wall_speedup = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail_usage("--min-wall-speedup needs a number"));
            }
            other => fail_usage(&format!("unknown argument `{other}`")),
        }
    }
    let report_path = report_path.unwrap_or_else(|| fail_usage("--report is required"));
    let text = std::fs::read_to_string(&report_path)
        .unwrap_or_else(|e| fail_usage(&format!("cannot read {report_path}: {e}")));
    let doc = JsonValue::parse(&text)
        .unwrap_or_else(|e| fail_usage(&format!("cannot parse {report_path}: {e}")));

    // Accept both the bare CI report (`report -- --sharded --json`) and the
    // committed baseline file, which nests the report under
    // `sharded_report` (the same convention bench_regression follows for
    // `quick_report`).
    let section = doc
        .get_path("sharded_report.e12_sharded")
        .or_else(|| doc.get("e12_sharded"))
        .unwrap_or_else(|| fail_usage(&format!("{report_path}: no e12_sharded section")));
    let rows = match section.get("rows") {
        Some(JsonValue::Arr(rows)) if !rows.is_empty() => rows,
        _ => fail_usage(&format!("{report_path}: no e12_sharded.rows array")),
    };
    let cores = section
        .get("cores")
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| fail_usage(&format!("{report_path}: missing cores")));
    let row = rows
        .iter()
        .find(|row| row.get("shards").and_then(JsonValue::as_f64) == Some(shards))
        .unwrap_or_else(|| fail_usage(&format!("{report_path}: no row for {shards} shard(s)")));
    let speedup = row
        .get("critical_path_speedup")
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| fail_usage(&format!("{report_path}: missing critical_path_speedup")));
    let wall = row
        .get("speedup_vs_single")
        .and_then(JsonValue::as_f64)
        .unwrap_or(f64::NAN);
    if !speedup.is_finite() || speedup <= 0.0 {
        fail_usage(&format!(
            "{report_path}: critical_path_speedup = {speedup} is not positive"
        ));
    }

    let wall_gated = cores >= shards;
    println!(
        "{shards:.0} shards on a {cores:.0}-core runner: critical-path speedup {speedup:.2}x \
         (floor {min_speedup:.2}x), wall-clock {wall:.2}x ({})",
        if wall_gated {
            format!("floor {min_wall_speedup:.2}x")
        } else {
            "informational: runner has fewer cores than shards, wall floor skipped".to_string()
        }
    );
    let mut regressed = false;
    if speedup < min_speedup {
        eprintln!(
            "REGRESSION: critical-path speedup {speedup:.2}x at {shards:.0} shards fell below \
             the {min_speedup:.2}x floor"
        );
        regressed = true;
    }
    if wall_gated && (wall.is_nan() || wall < min_wall_speedup) {
        eprintln!(
            "REGRESSION: wall-clock speedup {wall:.2}x at {shards:.0} shards fell below the \
             {min_wall_speedup:.2}x floor on a {cores:.0}-core runner"
        );
        regressed = true;
    }
    // Record the decision before any exit: which floors fired on this
    // runner, at what core count, with what measured numbers. `wall_gated:
    // false` in the artifact is the tell that a green run never actually
    // enforced the wall-clock floor.
    if let Some(path) = out_path {
        let decision = format!(
            "{{\"cores\":{cores},\"shards\":{shards},\
             \"critical_path_speedup\":{speedup},\"wall_speedup\":{wall},\
             \"min_speedup\":{min_speedup},\"min_wall_speedup\":{min_wall_speedup},\
             \"wall_gated\":{wall_gated},\"result\":\"{}\"}}\n",
            if regressed { "regression" } else { "ok" },
            wall = if wall.is_finite() {
                wall.to_string()
            } else {
                "null".to_string()
            },
        );
        std::fs::write(&path, decision)
            .unwrap_or_else(|e| fail_usage(&format!("cannot write {path}: {e}")));
    }
    if regressed {
        std::process::exit(1);
    }
    println!(
        "OK: critical-path scaling floor holds{}",
        if wall_gated {
            ", wall-clock floor holds"
        } else {
            " (wall-clock floor skipped: cores < shards)"
        }
    );
}
