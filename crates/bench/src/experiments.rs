//! Experiment implementations, one per theorem-level claim of the paper.
//!
//! Each function is deterministic given its inputs (seeds are fixed
//! internally), returns plain-data rows, and is used both by the `report`
//! binary and by the smoke tests. Experiment identifiers (E1–E11, F1) match
//! `DESIGN.md` §3 and `EXPERIMENTS.md`.

use std::time::Instant;

use tps_core::composition::run_composition;
use tps_core::engine::SkipAheadEngine;
use tps_core::f0::TrulyPerfectF0Sampler;
use tps_core::lp::TrulyPerfectLpSampler;
use tps_core::matrix::{MatrixRowSampler, RowL2};
use tps_core::mestimators::{FairSampler, HuberSampler, L1L2Sampler, TukeySampler};
use tps_core::perfect_baselines::{BiasedReferenceSampler, ExponentialScalingSampler};
use tps_core::random_order::{RandomOrderL2Sampler, RandomOrderLpSampler};
use tps_core::sliding::{SlidingWindowGSampler, SlidingWindowLpSampler};
use tps_core::turnstile::{
    lower_bound_bits, EqualityReduction, MultiPassL1Sampler, StrictTurnstileF0Sampler,
};
use tps_random::default_rng;
use tps_random::StreamRng;
use tps_streams::frequency::{FrequencyVector, MatrixAccumulator};
use tps_streams::generators::{
    drifting_stream, matrix_stream, random_order_stream, split_into_portions, zipfian_stream,
};
use tps_streams::stats::{expected_sampling_tv, fit_power_law, SampleHistogram};
use tps_streams::update::{SignedUpdate, WindowSpec};
use tps_streams::{
    Fair, Huber, MatrixSampler, SlidingWindowSampler, SpaceUsage, StreamSampler, Tukey,
    TurnstileSampler, L1L2,
};
use tps_window::SmoothHistogram;

/// E1 / E2: measured space of an `L_p` sampler across problem sizes, with
/// the fitted power-law exponent.
#[derive(Debug, Clone)]
pub struct LpSpaceRow {
    /// The exponent `p`.
    pub p: f64,
    /// `(problem size, measured bytes)` pairs — the problem size is the
    /// universe `n` for E1 and the stream length `m` for E2.
    pub points: Vec<(u64, usize)>,
    /// Parallel instance counts at each problem size.
    pub instances: Vec<usize>,
    /// Least-squares exponent of `bytes ~ size^e`.
    pub fitted_exponent: f64,
    /// The exponent the paper predicts (`1 − 1/p` for E1, `1 − p` for E2).
    pub theory_exponent: f64,
}

/// E1: space of the truly perfect `L_p` sampler, `p ∈ [1, 2]`, as a function
/// of the universe size `n` (Theorem 1.4 / 3.4: `Õ(n^{1−1/p})`).
pub fn e1_lp_space(universes: &[u64], ps: &[f64], delta: f64) -> Vec<LpSpaceRow> {
    ps.iter()
        .map(|&p| {
            let mut points = Vec::new();
            let mut instances = Vec::new();
            for &n in universes {
                let mut rng = default_rng(100 + n);
                let stream = zipfian_stream(&mut rng, n, (4 * n as usize).max(4_000), 1.1);
                let mut sampler = TrulyPerfectLpSampler::new(p, n, delta, n);
                sampler.update_all(&stream);
                points.push((n, sampler.space_bytes()));
                instances.push(sampler.instance_count());
            }
            let fitted = fit_power_law(
                &points
                    .iter()
                    .map(|&(n, b)| (n as f64, b as f64))
                    .collect::<Vec<_>>(),
            );
            LpSpaceRow {
                p,
                points,
                instances,
                fitted_exponent: fitted,
                theory_exponent: 1.0 - 1.0 / p,
            }
        })
        .collect()
}

/// E2: space of the truly perfect `L_p` sampler, `p ∈ (0, 1)`, as a function
/// of the stream length `m` (Theorem 3.5: `O(m^{1−p} log n)`).
pub fn e2_fractional_space(lengths: &[u64], ps: &[f64], delta: f64) -> Vec<LpSpaceRow> {
    ps.iter()
        .map(|&p| {
            let mut points = Vec::new();
            let mut instances = Vec::new();
            for &m in lengths {
                let mut rng = default_rng(200 + m);
                let stream = zipfian_stream(&mut rng, 1_024, m as usize, 1.0);
                let mut sampler = TrulyPerfectLpSampler::fractional(p, m, delta, m);
                sampler.update_all(&stream);
                points.push((m, sampler.space_bytes()));
                instances.push(sampler.instance_count());
            }
            // Fit the instance count (the space term the theorem bounds);
            // byte-level space adds universe-independent constants.
            let fitted = fit_power_law(
                &points
                    .iter()
                    .zip(&instances)
                    .map(|(&(m, _), &k)| (m as f64, k as f64))
                    .collect::<Vec<_>>(),
            );
            LpSpaceRow {
                p,
                points,
                instances,
                fitted_exponent: fitted,
                theory_exponent: 1.0 - p,
            }
        })
        .collect()
}

/// E3: per-update wall-clock time of the truly perfect sampler vs the
/// duplication-based perfect baseline at increasing accuracy (duplication).
#[derive(Debug, Clone)]
pub struct UpdateTimeRow {
    /// Nanoseconds per update for the truly perfect `L_2` sampler driven one
    /// item at a time through [`StreamSampler::update`].
    pub truly_perfect_nanos_per_update: f64,
    /// Nanoseconds per update for the same sampler driven through the
    /// batched engine ([`StreamSampler::update_batch`]).
    pub truly_perfect_batch_nanos_per_update: f64,
    /// Per-item over batched time (>1 means the batch path is faster).
    pub batch_speedup: f64,
    /// Nanoseconds per signed update for the strict-turnstile `F_0`
    /// sampler driven one update at a time.
    pub turnstile_f0_nanos_per_update: f64,
    /// Nanoseconds per signed update for the same sampler driven through
    /// its coalescing `update_batch` override.
    pub turnstile_f0_batch_nanos_per_update: f64,
    /// Per-update over batched time for the turnstile `F_0` sampler.
    pub turnstile_batch_speedup: f64,
    /// The duplication factors measured for the baseline.
    pub baseline_duplications: Vec<usize>,
    /// Nanoseconds per update for the baseline at each duplication factor.
    pub baseline_nanos_per_update: Vec<f64>,
    /// Reservoir slot counts the shared [`SkipAheadEngine`] was measured at.
    pub engine_slot_counts: Vec<usize>,
    /// Stream length used for each engine slot count (scaled with the slot
    /// count so the amortised replacement term has room to amortise).
    pub engine_stream_lengths: Vec<u64>,
    /// Nanoseconds per update for the engine at each slot count.
    pub engine_nanos_per_update: Vec<f64>,
}

/// E3: update-time comparison (Theorem 1.4's `O(1)` update time vs the
/// `n^{Θ(c)}` update time of prior perfect samplers).
pub fn e3_update_time(
    stream_length: usize,
    universe: u64,
    duplications: &[usize],
    engine_slots: &[usize],
) -> UpdateTimeRow {
    let mut rng = default_rng(300);
    let stream = zipfian_stream(&mut rng, universe, stream_length, 1.1);

    // Each gated leg is measured best-of-3 on a fresh sampler: at the quick
    // scale one leg is a ~1ms window, and a single scheduler preemption on
    // a busy host would otherwise read as a 2-3x "regression".
    const E3_REPS: usize = 3;

    let truly_perfect = (0..E3_REPS)
        .map(|_| {
            let mut sampler = TrulyPerfectLpSampler::new(2.0, universe, 0.1, 1);
            let start = Instant::now();
            for &x in &stream {
                sampler.update(x);
            }
            let nanos = start.elapsed().as_nanos() as f64 / stream.len() as f64;
            // Keep the sampler alive so the measured loop is not optimised
            // away.
            let _ = sampler.sample();
            nanos
        })
        .fold(f64::INFINITY, f64::min);

    let truly_perfect_batch = (0..E3_REPS)
        .map(|_| {
            let mut batched = TrulyPerfectLpSampler::new(2.0, universe, 0.1, 1);
            let start = Instant::now();
            batched.update_batch(&stream);
            let nanos = start.elapsed().as_nanos() as f64 / stream.len() as f64;
            let _ = batched.sample();
            nanos
        })
        .fold(f64::INFINITY, f64::min);

    // Strict-turnstile F0 on the signed version of the workload: every
    // insert, then deletions of a seeded 30% subset (the strict-turnstile
    // shape where no frequency goes negative).
    let signed: Vec<SignedUpdate> = {
        let mut deletions: Vec<SignedUpdate> = Vec::new();
        let mut updates: Vec<SignedUpdate> =
            stream.iter().map(|&i| SignedUpdate::insert(i)).collect();
        let mut del_rng = default_rng(301);
        for &i in &stream {
            if del_rng.gen_bool(0.3) {
                deletions.push(SignedUpdate::delete(i));
            }
        }
        updates.extend(deletions);
        updates
    };
    let turnstile_loop = (0..E3_REPS)
        .map(|_| {
            let mut turnstile = StrictTurnstileF0Sampler::new(universe, 1);
            let start = Instant::now();
            for &u in &signed {
                turnstile.update(u);
            }
            let nanos = start.elapsed().as_nanos() as f64 / signed.len() as f64;
            let _ = turnstile.sample();
            nanos
        })
        .fold(f64::INFINITY, f64::min);

    let turnstile_batch = (0..E3_REPS)
        .map(|_| {
            let mut turnstile_batched = StrictTurnstileF0Sampler::new(universe, 1);
            let start = Instant::now();
            turnstile_batched.update_batch(&signed);
            let nanos = start.elapsed().as_nanos() as f64 / signed.len() as f64;
            let _ = turnstile_batched.sample();
            nanos
        })
        .fold(f64::INFINITY, f64::min);

    // Huge-reservoir scaling of the shared skip-ahead engine (ROADMAP:
    // "prove out huge-reservoir scaling with 1M-slot benchmarks"). The
    // priority-queue schedule only touches slots that are actually due, so
    // the per-element cost should stay near-flat across slot counts; each
    // slot count gets a stream long enough (20 updates per slot, at least
    // the E3 stream) for the `k·ln(n)` total replacement work to amortise.
    let mut engine_stream_lengths = Vec::new();
    let mut engine_nanos = Vec::new();
    for &slots in engine_slots {
        let n = slots.saturating_mul(20).max(stream_length);
        let mut engine_rng = default_rng(302);
        let engine_stream = zipfian_stream(&mut engine_rng, universe, n, 1.1);
        // The big legs are long enough to be preemption-insensitive on
        // their own; best-of-N only where a leg is a ~1ms window.
        let reps = if n > 2_000_000 { 1 } else { E3_REPS };
        let nanos = (0..reps)
            .map(|_| {
                let mut engine = SkipAheadEngine::with_seed(slots, 7);
                let start = Instant::now();
                engine.update_batch(&engine_stream);
                let per_update = start.elapsed().as_nanos() as f64 / engine_stream.len() as f64;
                assert_eq!(engine.seen(), engine_stream.len() as u64);
                per_update
            })
            .fold(f64::INFINITY, f64::min);
        engine_stream_lengths.push(n as u64);
        engine_nanos.push(nanos);
    }

    let mut baseline_nanos = Vec::new();
    for &dup in duplications {
        let mut baseline = ExponentialScalingSampler::new(2.0, dup, 256, 2);
        let start = Instant::now();
        baseline.update_all(&stream);
        baseline_nanos.push(start.elapsed().as_nanos() as f64 / stream.len() as f64);
        let _ = baseline.sample();
    }
    UpdateTimeRow {
        truly_perfect_nanos_per_update: truly_perfect,
        truly_perfect_batch_nanos_per_update: truly_perfect_batch,
        batch_speedup: truly_perfect / truly_perfect_batch.max(f64::MIN_POSITIVE),
        turnstile_f0_nanos_per_update: turnstile_loop,
        turnstile_f0_batch_nanos_per_update: turnstile_batch,
        turnstile_batch_speedup: turnstile_loop / turnstile_batch.max(f64::MIN_POSITIVE),
        baseline_duplications: duplications.to_vec(),
        baseline_nanos_per_update: baseline_nanos,
        engine_slot_counts: engine_slots.to_vec(),
        engine_stream_lengths,
        engine_nanos_per_update: engine_nanos,
    }
}

/// E4: distributional exactness and composition drift.
#[derive(Debug, Clone)]
pub struct DistributionRow {
    /// Single-portion TV distance of the truly perfect sampler.
    pub truly_perfect_tv: f64,
    /// Expected multinomial-noise TV at the same sample count.
    pub expected_noise: f64,
    /// Cumulative drift ratio (drift / noise floor) across portions for the
    /// truly perfect sampler.
    pub truly_perfect_drift_ratio: f64,
    /// Cumulative drift ratio for the γ-additive baseline.
    pub biased_drift_ratio: f64,
    /// The γ injected into the baseline.
    pub gamma: f64,
}

/// E4: exactness of the output distribution and drift under composition
/// (the §1 motivation: truly perfect ⇒ drift is pure sampling noise).
pub fn e4_distribution(
    stream_length: usize,
    universe: u64,
    portions: usize,
    samples_per_portion: usize,
    gamma: f64,
) -> DistributionRow {
    let mut rng = default_rng(400);
    let stream = zipfian_stream(&mut rng, universe, stream_length, 1.0);
    let split = split_into_portions(&stream, portions);

    // Single-portion exactness on the full stream.
    let truth = FrequencyVector::from_stream(&stream);
    let target = truth.lp_distribution(1.0);
    let mut histogram = SampleHistogram::new();
    for seed in 0..samples_per_portion as u64 {
        let mut sampler = TrulyPerfectLpSampler::new(1.0, universe, 0.1, seed);
        sampler.update_all(&stream);
        histogram.record(sampler.sample());
    }
    let truly_perfect_tv = histogram.tv_distance(&target);
    let expected_noise = expected_sampling_tv(&target, histogram.successes());

    let perfect = run_composition(
        &split,
        samples_per_portion,
        |seed| TrulyPerfectLpSampler::new(1.0, universe, 0.1, seed),
        |truth| truth.lp_distribution(1.0),
    );
    let biased = run_composition(
        &split,
        samples_per_portion,
        |seed| {
            BiasedReferenceSampler::new(
                TrulyPerfectLpSampler::new(1.0, universe, 0.1, seed),
                gamma,
                universe - 1,
                seed ^ 0xFACE,
            )
        },
        |truth| truth.lp_distribution(1.0),
    );
    DistributionRow {
        truly_perfect_tv,
        expected_noise,
        truly_perfect_drift_ratio: perfect.drift_ratio(),
        biased_drift_ratio: biased.drift_ratio(),
        gamma,
    }
}

/// E5 / E7 / E8 / E11: a generic "one sampler, one workload" result row.
#[derive(Debug, Clone)]
pub struct SamplerRow {
    /// Which sampler / measure the row describes.
    pub measure: String,
    /// TV distance between the empirical sample distribution and the exact
    /// target.
    pub tv_distance: f64,
    /// Expected multinomial-noise TV at the same sample count.
    pub expected_noise: f64,
    /// Observed failure rate.
    pub fail_rate: f64,
    /// Measured memory of one sampler instance in bytes.
    pub space_bytes: usize,
}

/// E5: the M-estimator samplers (L1–L2, Fair, Huber, Tukey) — `O(log n)`
/// space and exact output distribution (Corollary 3.6, Theorem 5.4).
pub fn e5_mestimators(stream_length: usize, universe: u64, draws: usize) -> Vec<SamplerRow> {
    let mut rng = default_rng(500);
    let stream = zipfian_stream(&mut rng, universe, stream_length, 1.2);
    let truth = FrequencyVector::from_stream(&stream);
    let m = stream.len() as u64;

    let mut rows = Vec::new();
    {
        let target = truth.g_distribution(&L1L2);
        let mut histogram = SampleHistogram::new();
        let mut space = 0;
        for seed in 0..draws as u64 {
            let mut s = L1L2Sampler::l1l2(m, 0.05, seed);
            s.update_all(&stream);
            space = s.space_bytes();
            histogram.record(s.sample());
        }
        rows.push(SamplerRow {
            measure: "L1-L2".into(),
            tv_distance: histogram.tv_distance(&target),
            expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
            fail_rate: histogram.fail_rate(),
            space_bytes: space,
        });
    }
    {
        let g = Fair::new(2.0);
        let target = truth.g_distribution(&g);
        let mut histogram = SampleHistogram::new();
        let mut space = 0;
        for seed in 0..draws as u64 {
            let mut s = FairSampler::fair(2.0, m, 0.05, seed);
            s.update_all(&stream);
            space = s.space_bytes();
            histogram.record(s.sample());
        }
        rows.push(SamplerRow {
            measure: "Fair(2)".into(),
            tv_distance: histogram.tv_distance(&target),
            expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
            fail_rate: histogram.fail_rate(),
            space_bytes: space,
        });
    }
    {
        let g = Huber::new(3.0);
        let target = truth.g_distribution(&g);
        let mut histogram = SampleHistogram::new();
        let mut space = 0;
        for seed in 0..draws as u64 {
            let mut s = HuberSampler::huber(3.0, m, 0.05, seed);
            s.update_all(&stream);
            space = s.space_bytes();
            histogram.record(s.sample());
        }
        rows.push(SamplerRow {
            measure: "Huber(3)".into(),
            tv_distance: histogram.tv_distance(&target),
            expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
            fail_rate: histogram.fail_rate(),
            space_bytes: space,
        });
    }
    {
        let g = Tukey::new(3.0);
        let target = truth.g_distribution(&g);
        let mut histogram = SampleHistogram::new();
        let mut space = 0;
        for seed in 0..draws as u64 {
            let mut s = TukeySampler::new(3.0, universe, 0.05, seed);
            s.update_all(&stream);
            space = s.space_bytes();
            histogram.record(s.sample());
        }
        rows.push(SamplerRow {
            measure: "Tukey(3)".into(),
            tv_distance: histogram.tv_distance(&target),
            expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
            fail_rate: histogram.fail_rate(),
            space_bytes: space,
        });
    }
    rows
}

/// E6: the `F_0` sampler — `O(√n)` space scaling and uniform-over-support
/// output (Theorem 5.2).
#[derive(Debug, Clone)]
pub struct F0Row {
    /// `(universe, measured bytes)` pairs.
    pub points: Vec<(u64, usize)>,
    /// Fitted exponent of `bytes ~ n^e` (theory: 1/2).
    pub fitted_space_exponent: f64,
    /// TV distance to the uniform-over-support target at the largest size.
    pub tv_distance: f64,
    /// Failure rate at the largest size.
    pub fail_rate: f64,
}

/// E6: see [`F0Row`].
pub fn e6_f0(universes: &[u64], draws: usize) -> F0Row {
    let mut points = Vec::new();
    let mut tv = 0.0;
    let mut fail_rate = 0.0;
    for (idx, &n) in universes.iter().enumerate() {
        let mut rng = default_rng(600 + n);
        // A moderate support so the random-subset side is exercised for the
        // smaller universes while the sample histogram stays well resolved.
        let support = (n / 8).clamp(4, 48);
        let stream: Vec<u64> = (0..(4 * support)).map(|_| rng.gen_range(support)).collect();
        let truth = FrequencyVector::from_stream(&stream);
        let target = truth.f0_distribution();
        let mut histogram = SampleHistogram::new();
        let mut space = 0usize;
        for seed in 0..draws as u64 {
            let mut s = TrulyPerfectF0Sampler::new(n, 0.05, seed);
            s.update_all(&stream);
            space = s.space_bytes();
            histogram.record(s.sample());
        }
        points.push((n, space));
        if idx == universes.len() - 1 {
            tv = histogram.tv_distance(&target);
            fail_rate = histogram.fail_rate();
        }
    }
    let fitted = fit_power_law(
        &points
            .iter()
            .map(|&(n, b)| (n as f64, b as f64))
            .collect::<Vec<_>>(),
    );
    F0Row {
        points,
        fitted_space_exponent: fitted,
        tv_distance: tv,
        fail_rate,
    }
}

/// E7: sliding-window samplers on a drifting stream.
pub fn e7_sliding(window: u64, stream_length: usize, draws: usize) -> Vec<SamplerRow> {
    let mut rng = default_rng(700);
    let universe = 4 * window;
    let stream = drifting_stream(
        &mut rng,
        universe,
        stream_length,
        stream_length / 6,
        64,
        128,
    );
    let truth = FrequencyVector::from_window(&stream, WindowSpec::new(window));
    let mut rows = Vec::new();
    {
        let g = Huber::new(4.0);
        let target = truth.g_distribution(&g);
        let mut histogram = SampleHistogram::new();
        let mut space = 0;
        for seed in 0..draws as u64 {
            let mut s = SlidingWindowGSampler::new(g, window, 0.1, seed);
            for &x in &stream {
                SlidingWindowSampler::update(&mut s, x);
            }
            space = s.space_bytes();
            histogram.record(SlidingWindowSampler::sample(&mut s));
        }
        rows.push(SamplerRow {
            measure: format!("sliding Huber(4), W={window}"),
            tv_distance: histogram.tv_distance(&target),
            expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
            fail_rate: histogram.fail_rate(),
            space_bytes: space,
        });
    }
    {
        let target = truth.lp_distribution(2.0);
        let mut histogram = SampleHistogram::new();
        let mut space = 0;
        for seed in 0..draws as u64 {
            let mut s =
                SlidingWindowLpSampler::with_estimator_size(2.0, window, 0.1, 2, 24, 7_000 + seed);
            for &x in &stream {
                SlidingWindowSampler::update(&mut s, x);
            }
            space = s.space_bytes();
            histogram.record(SlidingWindowSampler::sample(&mut s));
        }
        rows.push(SamplerRow {
            measure: format!("sliding L2, W={window}"),
            tv_distance: histogram.tv_distance(&target),
            expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
            fail_rate: histogram.fail_rate(),
            space_bytes: space,
        });
    }
    rows
}

/// E8: random-order collision samplers (Theorems 1.6 and 1.7).
pub fn e8_random_order(draws: usize) -> Vec<SamplerRow> {
    let counts: Vec<(u64, u64)> = vec![(1, 120), (2, 60), (3, 30), (4, 15), (5, 5)];
    let m: u64 = counts.iter().map(|&(_, c)| c).sum();
    let truth = FrequencyVector::from_counts(
        &counts
            .iter()
            .map(|&(i, c)| (i, c as i64))
            .collect::<Vec<_>>(),
    );
    let mut order_rng = default_rng(800);
    let mut rows = Vec::new();
    {
        let target = truth.lp_distribution(2.0);
        let mut histogram = SampleHistogram::new();
        let mut space = 0;
        for seed in 0..draws as u64 {
            let stream = random_order_stream(&mut order_rng, &counts);
            let mut s = RandomOrderL2Sampler::new(m, seed);
            s.update_all(&stream);
            space = s.space_bytes();
            histogram.record(s.sample());
        }
        rows.push(SamplerRow {
            measure: "random-order L2".into(),
            tv_distance: histogram.tv_distance(&target),
            expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
            fail_rate: histogram.fail_rate(),
            space_bytes: space,
        });
    }
    {
        let target = truth.lp_distribution(3.0);
        let mut histogram = SampleHistogram::new();
        let mut space = 0;
        for seed in 0..draws as u64 {
            let stream = random_order_stream(&mut order_rng, &counts);
            let mut s = RandomOrderLpSampler::new(3, m, seed);
            s.update_all(&stream);
            space = s.space_bytes();
            histogram.record(s.sample());
        }
        rows.push(SamplerRow {
            measure: "random-order L3".into(),
            tv_distance: histogram.tv_distance(&target),
            expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
            fail_rate: histogram.fail_rate(),
            space_bytes: space,
        });
    }
    rows
}

/// E9: the equality-reduction attack behind the turnstile lower bound.
#[derive(Debug, Clone)]
pub struct EqualityRow {
    /// Additive error of the sampler under attack.
    pub gamma: f64,
    /// Observed probability of declaring "equal" on unequal inputs.
    pub observed_advantage: f64,
    /// The Theorem 1.2 space lower bound implied by tolerating this γ, in
    /// bits.
    pub lower_bound_bits: f64,
}

/// E9: see [`EqualityRow`].
pub fn e9_equality(gammas: &[f64], n: usize, trials: usize) -> Vec<EqualityRow> {
    let mut rng = default_rng(900);
    gammas
        .iter()
        .map(|&gamma| {
            let reduction = EqualityReduction::new(gamma);
            let observed = reduction.refutation_error(n, trials, &mut rng);
            let bound_gamma = gamma.clamp(1e-12, 0.249);
            EqualityRow {
                gamma,
                observed_advantage: observed,
                lower_bound_bits: lower_bound_bits(n as u64, bound_gamma),
            }
        })
        .collect()
}

/// E10: the strict-turnstile multi-pass pass/space trade-off
/// (Theorem 1.5).
#[derive(Debug, Clone)]
pub struct MultiPassRow {
    /// The trade-off parameter γ (chunks per pass ≈ n^γ).
    pub gamma: f64,
    /// Passes needed over the stream.
    pub passes: usize,
    /// Peak number of live counters.
    pub peak_counters: usize,
    /// TV distance of the resulting samples from the exact `L_1` target.
    pub tv_distance: f64,
}

/// E10: see [`MultiPassRow`].
pub fn e10_multipass(universe: u64, stream_length: usize, gammas: &[f64]) -> Vec<MultiPassRow> {
    let mut rng = default_rng(1_000);
    let updates =
        tps_streams::generators::strict_turnstile_stream(&mut rng, universe, stream_length, 0.3);
    let truth = FrequencyVector::from_signed_stream(&updates);
    let target = truth.lp_distribution(1.0);
    gammas
        .iter()
        .map(|&gamma| {
            let sampler = MultiPassL1Sampler::new(universe, gamma);
            let mut histogram = SampleHistogram::new();
            let mut passes = 0;
            let mut peak = 0;
            let mut sample_rng = default_rng(1_001);
            for _ in 0..2_000 {
                let (outcome, report) = sampler.sample(&updates, &mut sample_rng);
                passes = report.passes;
                peak = report.peak_counters;
                histogram.record(outcome);
            }
            MultiPassRow {
                gamma,
                passes,
                peak_counters: peak,
                tv_distance: histogram.tv_distance(&target),
            }
        })
        .collect()
}

/// E11: matrix `L_{1,2}` row sampling (Theorem 3.7).
pub fn e11_matrix(columns: &[u64], draws: usize) -> Vec<SamplerRow> {
    columns
        .iter()
        .map(|&d| {
            let mut rng = default_rng(1_100 + d);
            let updates = matrix_stream(&mut rng, 128, d, 20_000);
            let mut truth = MatrixAccumulator::new();
            for u in &updates {
                truth.insert(u.row, u.col);
            }
            let target = truth.row_distribution(2);
            let mut histogram = SampleHistogram::new();
            let mut space = 0;
            for seed in 0..draws as u64 {
                let mut s = MatrixRowSampler::<RowL2>::l12(d as usize, 0.05, seed);
                for &u in &updates {
                    s.update(u);
                }
                space = s.space_bytes();
                histogram.record(s.sample());
            }
            SamplerRow {
                measure: format!("L(1,2) rows, d={d}"),
                tv_distance: tps_streams::stats::tv_distance(
                    &histogram.empirical_distribution(),
                    &target,
                ),
                expected_noise: expected_sampling_tv(&target, histogram.successes().max(1)),
                fail_rate: histogram.fail_rate(),
                space_bytes: space,
            }
        })
        .collect()
}

/// E12: one shard-count configuration of the sharded scatter-gather
/// front-end.
#[derive(Debug, Clone)]
pub struct ShardedRow {
    /// Number of shards (1 = the plain single-instance batched path).
    pub shards: usize,
    /// Wall-clock ingest throughput of the threaded front-end in millions
    /// of elements per second (best of the measured repetitions, to damp
    /// scheduler noise). Plateaus at the host's core count.
    pub melem_per_s: f64,
    /// Wall-clock throughput relative to the single-instance batched
    /// baseline.
    pub speedup_vs_single: f64,
    /// Critical-path throughput: `stream / max(coordinator scatter pass,
    /// slowest shard ingest)`, each stage measured directly by running it
    /// in isolation. Under the persistent runtime the coordinator's
    /// route-and-stage pass pipelines with the shard workers' ingest
    /// (chunk `c + 1` is routed while chunk `c` is being consumed), so
    /// the steady-state wall clock once `cores > shards` is the *slower*
    /// of the two stages, not their sum — the scaling metric that
    /// transfers across hosts.
    pub critical_path_melem_per_s: f64,
    /// Critical-path throughput relative to the single-instance baseline.
    pub critical_path_speedup: f64,
}

/// E12: the shard-count scaling curve of [`ShardedSampler`] ingest.
#[derive(Debug, Clone)]
pub struct ShardedScaling {
    /// Worker parallelism available to the process (shard workers beyond
    /// this count cannot add wall-clock speedup).
    pub cores: usize,
    /// Stream length of the workload.
    pub stream_length: usize,
    /// Single-instance batched ingest throughput (the baseline), Melem/s.
    pub single_melem_per_s: f64,
    /// One row per measured shard count.
    pub rows: Vec<ShardedRow>,
}

/// E12: ingest throughput of the hash-sharded L2 sampler across shard
/// counts on a Zipf(1.1) workload, against the single-instance batched
/// path. Each shard ingests on its own persistent worker thread fed by an
/// SPSC ring, so the curve tracks available hardware parallelism
/// (reported in `cores`): on a `c`-core host the wall-clock plateau is
/// bounded by `min(shards, c)` and, past that, by the coordinator's
/// route-and-stage pass. The timed region includes the final
/// [`ShardedSampler::flush`] so enqueued-but-unapplied chunks cannot
/// flatter the wall clock.
pub fn e12_sharded(stream_length: usize, universe: u64, shard_counts: &[usize]) -> ShardedScaling {
    use tps_core::sharded::{ShardedSamplerBuilder, ShardingStrategy};

    let mut rng = default_rng(1_200);
    let stream = zipfian_stream(&mut rng, universe, stream_length, 1.1);
    let repetitions = 3;

    let mut best_single = f64::MIN_POSITIVE;
    for rep in 0..repetitions {
        let mut sampler = TrulyPerfectLpSampler::new(2.0, universe, 0.1, 21 + rep);
        let start = Instant::now();
        sampler.update_batch(&stream);
        let rate = stream.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
        best_single = best_single.max(rate);
        assert_eq!(sampler.processed(), stream.len() as u64);
    }

    let rows = shard_counts
        .iter()
        .map(|&shards| {
            let mut best = f64::MIN_POSITIVE;
            let mut best_critical = f64::MIN_POSITIVE;
            for rep in 0..repetitions {
                let mut sharded = ShardedSamplerBuilder::new(shards)
                    .strategy(ShardingStrategy::Hash)
                    .seed(33 + rep)
                    .build(|idx| {
                        TrulyPerfectLpSampler::new(
                            2.0,
                            universe,
                            0.1,
                            77 + rep + ((idx as u64) << 8),
                        )
                    });
                let start = Instant::now();
                sharded.update_batch(&stream);
                sharded.flush();
                let rate = stream.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
                best = best.max(rate);
                assert_eq!(sharded.processed(), stream.len() as u64);

                // Critical path, measured stage by stage in isolation.
                // With one shard the runtime never starts (ingest is the
                // direct batched path, no routing at all); with k > 1 the
                // coordinator's scatter pass pipelines with the shard
                // workers, so the steady-state bound is the slower stage.
                let critical = if shards == 1 {
                    let mut shard_sampler =
                        TrulyPerfectLpSampler::new(2.0, universe, 0.1, 99 + rep);
                    let start = Instant::now();
                    shard_sampler.update_batch(&stream);
                    stream.len() as f64 / start.elapsed().as_secs_f64() / 1e6
                } else {
                    let scatter_start = Instant::now();
                    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards];
                    for &item in &stream {
                        buckets[sharded.hash_shard_of(item)].push(item);
                    }
                    let scatter_time = scatter_start.elapsed().as_secs_f64();
                    let slowest_ingest = buckets
                        .iter()
                        .map(|bucket| {
                            let mut shard_sampler =
                                TrulyPerfectLpSampler::new(2.0, universe, 0.1, 99 + rep);
                            let start = Instant::now();
                            // Chunked exactly like the runtime ships work,
                            // so per-shard batch sizes match the real path.
                            for chunk in bucket.chunks(32 * 1024) {
                                shard_sampler.update_batch(chunk);
                            }
                            start.elapsed().as_secs_f64()
                        })
                        .fold(0.0f64, f64::max);
                    stream.len() as f64 / scatter_time.max(slowest_ingest) / 1e6
                };
                best_critical = best_critical.max(critical);
            }
            ShardedRow {
                shards,
                melem_per_s: best,
                speedup_vs_single: best / best_single,
                critical_path_melem_per_s: best_critical,
                critical_path_speedup: best_critical / best_single,
            }
        })
        .collect();

    ShardedScaling {
        cores: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        stream_length,
        single_melem_per_s: best_single,
        rows,
    }
}

/// E13: one shard count of the persistent-runtime vs scoped-thread ingest
/// comparison.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Number of shards.
    pub shards: usize,
    /// Steady-state ingest throughput of the persistent worker-pool
    /// runtime: the stream is fed in batches and the final `flush` is
    /// inside the timed region. Best of the measured repetitions.
    pub runtime_melem_per_s: f64,
    /// The same workload through a re-implementation of the retired
    /// scoped-thread two-phase path (spawn a scatter crew and an ingest
    /// crew, then join, for *every* batch).
    pub scoped_melem_per_s: f64,
    /// `runtime / scoped` — ≥ 1 means the persistent pool is at least as
    /// fast as the architecture it replaced *on this host*; the ratio of
    /// two same-host wall clocks transfers across runners far better than
    /// either absolute rate.
    pub runtime_vs_scoped: f64,
}

/// E13: the persistent-runtime benchmark record (`BENCH_runtime.json`).
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Worker parallelism available to the process.
    pub cores: usize,
    /// Stream length of the workload.
    pub stream_length: usize,
    /// Items per `update_batch` call in the steady-state feed.
    pub batch_len: usize,
    /// One row per measured shard count.
    pub rows: Vec<RuntimeRow>,
    /// Batches between queries in the ingest-during-query leg.
    pub query_every_batches: usize,
    /// Ingest throughput of the query-free reference run (Melem/s).
    pub quiet_melem_per_s: f64,
    /// Ingest throughput with a snapshot-isolated query issued every
    /// `query_every_batches` batches, query time *included* in the wall
    /// clock (Melem/s).
    pub querying_melem_per_s: f64,
    /// `querying / quiet` — the acceptance bar asks ≥ 0.9 (queries cost
    /// at most 10% of ingest throughput).
    pub querying_vs_quiet: f64,
    /// Mean latency of one snapshot-isolated query on the live runtime
    /// (barrier + per-shard snapshot + restore + fold-merge + draw), µs.
    pub snapshot_query_micros: f64,
    /// Mean latency of the retired clone-and-merge query (deep-clone every
    /// shard, fold-merge, draw) on the same final state, µs.
    pub clone_merge_query_micros: f64,
}

/// Hash route of the scoped-thread comparator: splitmix64 finaliser +
/// Lemire range reduction, byte-identical to `ShardedSampler`'s hash
/// strategy so both legs of E13 ingest identical per-shard substreams.
fn scoped_shard_of(item: u64, shards: usize) -> usize {
    let mut z = item.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (((z as u128) * (shards as u128)) >> 64) as usize
}

/// The retired two-phase scoped-thread batch path, re-implemented as the
/// E13 comparator: a crew of scatter threads partitions positional chunks
/// of the batch into per-shard buffers, a crew of ingest threads drains
/// each shard's column in chunk order, and every batch pays the full
/// spawn/join round trip for both crews — exactly the per-batch overhead
/// the persistent runtime amortises away.
fn scoped_two_phase_ingest(shards: &mut [TrulyPerfectLpSampler], batch: &[u64]) {
    let k = shards.len();
    if k == 1 {
        shards[0].update_batch(batch);
        return;
    }
    let chunk_len = batch.len().div_ceil(k);
    let matrix: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
        let workers: Vec<_> = batch
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut row: Vec<Vec<u64>> = vec![Vec::new(); k];
                    for &item in chunk {
                        row[scoped_shard_of(item, k)].push(item);
                    }
                    row
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    std::thread::scope(|scope| {
        for (shard, sampler) in shards.iter_mut().enumerate() {
            let matrix = &matrix;
            scope.spawn(move || {
                for row in matrix {
                    sampler.update_batch(&row[shard]);
                }
            });
        }
    });
}

/// E13: steady-state ingest of the persistent sharded runtime vs the
/// retired scoped-thread path, plus the cost of snapshot-isolated queries
/// issued mid-ingest. Streams are fed in `batch_len`-sized batches (the
/// steady-state shape the runtime is built for, as opposed to E12's one
/// monolithic batch); both legs of every comparison run on the same host
/// within the same call, so the recorded *ratios* transfer across runners.
pub fn e13_runtime(stream_length: usize, universe: u64, shard_counts: &[usize]) -> RuntimeReport {
    use tps_core::sharded::{ShardedSamplerBuilder, ShardingStrategy};

    let batch_len = 64 * 1024;
    let mut rng = default_rng(1_300);
    let stream = zipfian_stream(&mut rng, universe, stream_length, 1.1);
    let repetitions = 3;
    let new_shard = |rep: u64, idx: usize| {
        TrulyPerfectLpSampler::new(2.0, universe, 0.1, 177 + rep + ((idx as u64) << 8))
    };

    let rows: Vec<RuntimeRow> = shard_counts
        .iter()
        .map(|&shards| {
            let mut best_runtime = f64::MIN_POSITIVE;
            let mut best_scoped = f64::MIN_POSITIVE;
            for rep in 0..repetitions {
                let mut sharded = ShardedSamplerBuilder::new(shards)
                    .strategy(ShardingStrategy::Hash)
                    .seed(55 + rep)
                    .build(|idx| new_shard(rep, idx));
                let start = Instant::now();
                for batch in stream.chunks(batch_len) {
                    sharded.update_batch(batch);
                }
                sharded.flush();
                let rate = stream.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
                best_runtime = best_runtime.max(rate);
                assert_eq!(sharded.processed(), stream.len() as u64);

                let mut shard_samplers: Vec<_> =
                    (0..shards).map(|idx| new_shard(rep, idx)).collect();
                let start = Instant::now();
                for batch in stream.chunks(batch_len) {
                    scoped_two_phase_ingest(&mut shard_samplers, batch);
                }
                let rate = stream.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
                best_scoped = best_scoped.max(rate);
            }
            RuntimeRow {
                shards,
                runtime_melem_per_s: best_runtime,
                scoped_melem_per_s: best_scoped,
                runtime_vs_scoped: best_runtime / best_scoped,
            }
        })
        .collect();

    // Ingest-during-query leg, at the acceptance shard count (4 when
    // measured, else the largest measured count).
    let iq_shards = shard_counts
        .iter()
        .copied()
        .find(|&s| s == 4)
        .or_else(|| shard_counts.iter().copied().max())
        .unwrap_or(4);
    let query_every_batches = 8;
    let mut best_quiet = f64::MIN_POSITIVE;
    let mut best_querying = f64::MIN_POSITIVE;
    let mut snapshot_query_secs = 0.0f64;
    let mut snapshot_queries = 0usize;
    let mut clone_merge_secs = 0.0f64;
    let mut clone_merge_queries = 0usize;
    for rep in 0..repetitions {
        let mut quiet = ShardedSamplerBuilder::new(iq_shards)
            .strategy(ShardingStrategy::Hash)
            .seed(55 + rep)
            .build(|idx| new_shard(rep, idx));
        let start = Instant::now();
        for batch in stream.chunks(batch_len) {
            quiet.update_batch(batch);
        }
        quiet.flush();
        let rate = stream.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
        best_quiet = best_quiet.max(rate);

        let mut querying = ShardedSamplerBuilder::new(iq_shards)
            .strategy(ShardingStrategy::Hash)
            .seed(55 + rep)
            .build(|idx| new_shard(rep, idx));
        let start = Instant::now();
        for (index, batch) in stream.chunks(batch_len).enumerate() {
            querying.update_batch(batch);
            if (index + 1) % query_every_batches == 0 {
                let query_start = Instant::now();
                let _ = querying.sample();
                snapshot_query_secs += query_start.elapsed().as_secs_f64();
                snapshot_queries += 1;
            }
        }
        querying.flush();
        let rate = stream.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
        best_querying = best_querying.max(rate);

        // The retired query path on the same final state: `clone()`
        // quiesces and detaches from the runtime, so `merged()` on the
        // clone is exactly the old deep-clone + fold-merge + draw.
        let mut reference = querying.clone();
        for _ in 0..query_every_batches {
            let query_start = Instant::now();
            let _ = reference.merged().sample();
            clone_merge_secs += query_start.elapsed().as_secs_f64();
            clone_merge_queries += 1;
        }
    }

    RuntimeReport {
        cores: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        stream_length,
        batch_len,
        rows,
        query_every_batches,
        quiet_melem_per_s: best_quiet,
        querying_melem_per_s: best_querying,
        querying_vs_quiet: best_querying / best_quiet,
        snapshot_query_micros: snapshot_query_secs / snapshot_queries.max(1) as f64 * 1e6,
        clone_merge_query_micros: clone_merge_secs / clone_merge_queries.max(1) as f64 * 1e6,
    }
}

/// E14: incremental vs full checkpointing on a hot-shard Zipf workload.
#[derive(Debug, Clone)]
pub struct CheckpointBench {
    /// Stream length of the workload.
    pub stream_length: usize,
    /// Checkpoints taken (one per ingest slice).
    pub checkpoints: usize,
    /// Frames in the chain that were encoded as deltas.
    pub delta_frames: usize,
    /// Frames in the chain that were full rebases (including the first).
    pub full_frames: usize,
    /// Mean size of the sampler's full snapshot across epochs, bytes.
    pub full_snapshot_bytes_mean: f64,
    /// Mean size of the delta frames actually written, bytes.
    pub delta_frame_bytes_mean: f64,
    /// `full_snapshot_bytes_mean / delta_frame_bytes_mean` — the
    /// acceptance bar asks ≥ 4 (deltas at least 4x smaller than fulls).
    pub full_over_delta: f64,
    /// Total bytes appended to the chain vs always writing full frames.
    pub chain_bytes_vs_full: f64,
    /// Wall-clock to replay the whole chain and restore a sampler, µs.
    pub recovery_micros: f64,
    /// Whether the replayed state is byte-identical to the live sampler's
    /// final snapshot (the recovery contract of the ingest service).
    pub recovery_byte_identical: bool,
}

/// E14: checkpoint every `stream_length / checkpoints` updates of a
/// Zipf(1.5) hot-shard stream through [`IncrementalCheckpointer`], then
/// recover by replaying the chain — the single-shard core of the
/// `tps-service` durability loop.
///
/// Between consecutive checkpoints the skewed stream touches few distinct
/// items, so most of the sampler's sealed snapshot is unchanged and the
/// delta encoder should emit mostly copy ops. The report records how much
/// smaller the deltas actually are and proves recovery is byte-exact.
pub fn e14_checkpoint(stream_length: usize, universe: u64, checkpoints: usize) -> CheckpointBench {
    use tps_streams::codec::delta::{CheckpointReplayer, IncrementalCheckpointer};
    use tps_streams::{Restore, Snapshot};

    let mut rng = default_rng(1_414);
    let stream = zipfian_stream(&mut rng, universe, stream_length, 1.5);
    let slice_len = stream.len().div_ceil(checkpoints.max(1));

    let mut sampler = TrulyPerfectLpSampler::new(2.0, universe, 0.1, 1_414);
    let mut writer = IncrementalCheckpointer::new();
    let mut chain: Vec<Vec<u8>> = Vec::new();
    let mut full_bytes = 0usize;
    let mut delta_bytes = 0usize;
    let mut delta_frames = 0usize;
    let mut full_frames = 0usize;
    for (index, slice) in stream.chunks(slice_len).enumerate() {
        sampler.update_batch(slice);
        let epoch = index as u64 + 1;
        let full = sampler.snapshot();
        full_bytes += full.len();
        let frame = writer.checkpoint_bytes(full, epoch);
        if frame.is_delta() {
            delta_frames += 1;
            delta_bytes += frame.bytes().len();
        } else {
            full_frames += 1;
        }
        chain.push(frame.bytes().to_vec());
    }

    let start = Instant::now();
    let mut replayer = CheckpointReplayer::new();
    for frame in &chain {
        replayer.apply(frame).expect("own chain replays");
    }
    let (_, recovered_bytes) = replayer.into_current().expect("non-empty chain");
    let recovered =
        TrulyPerfectLpSampler::restore(&recovered_bytes).expect("recovered bytes restore");
    let recovery_micros = start.elapsed().as_secs_f64() * 1e6;

    let live = sampler.snapshot();
    let recovery_byte_identical = recovered_bytes == live && recovered.snapshot() == live;

    let taken = delta_frames + full_frames;
    let full_snapshot_bytes_mean = full_bytes as f64 / taken.max(1) as f64;
    let delta_frame_bytes_mean = delta_bytes as f64 / delta_frames.max(1) as f64;
    let chain_total: usize = chain.iter().map(Vec::len).sum();
    CheckpointBench {
        stream_length,
        checkpoints: taken,
        delta_frames,
        full_frames,
        full_snapshot_bytes_mean,
        delta_frame_bytes_mean,
        full_over_delta: full_snapshot_bytes_mean / delta_frame_bytes_mean.max(1.0),
        chain_bytes_vs_full: chain_total as f64 / full_bytes.max(1) as f64,
        recovery_micros,
        recovery_byte_identical,
    }
}

/// F1: smooth-histogram checkpoint counts (Figure 1's structure).
#[derive(Debug, Clone)]
pub struct CheckpointRow {
    /// Window size.
    pub window: u64,
    /// Number of live checkpoints after a long stream.
    pub checkpoints: usize,
    /// Whether the first two checkpoints sandwich the window boundary.
    pub sandwich_holds: bool,
}

/// F1: see [`CheckpointRow`].
pub fn f1_checkpoints(windows: &[u64]) -> Vec<CheckpointRow> {
    #[derive(Debug, Default)]
    struct CountEstimator {
        count: u64,
    }
    impl tps_streams::Estimator for CountEstimator {
        fn update(&mut self, _item: u64) {
            self.count += 1;
        }
        fn estimate(&self) -> f64 {
            self.count as f64
        }
    }
    windows
        .iter()
        .map(|&window| {
            let mut hist = SmoothHistogram::new(window, 0.2, CountEstimator::default);
            let length = 5 * window;
            for t in 0..length {
                hist.update(t % 97);
            }
            let starts = hist.checkpoint_starts();
            let boundary = length - window + 1;
            let sandwich_holds = starts.first().map(|&s| s <= boundary).unwrap_or(false)
                && starts.get(1).map(|&s| s >= boundary).unwrap_or(false);
            CheckpointRow {
                window,
                checkpoints: hist.checkpoint_count(),
                sandwich_holds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_rows_have_one_point_per_universe() {
        let rows = e1_lp_space(&[64, 256], &[2.0], 0.2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].points.len(), 2);
        assert!(rows[0].points[1].1 > rows[0].points[0].1);
    }

    #[test]
    fn e9_zero_gamma_has_zero_advantage() {
        let rows = e9_equality(&[0.0], 32, 500);
        assert_eq!(rows[0].observed_advantage, 0.0);
    }

    #[test]
    fn e14_deltas_beat_fulls_and_recovery_is_exact() {
        let bench = e14_checkpoint(200_000, 4_096, 50);
        assert_eq!(bench.checkpoints, 50);
        assert!(bench.delta_frames > 0, "no deltas taken: {bench:?}");
        assert!(bench.recovery_byte_identical, "recovery drifted: {bench:?}");
        assert!(
            bench.full_over_delta >= 4.0,
            "deltas not 4x smaller: {bench:?}"
        );
    }

    #[test]
    fn f1_reports_sandwich() {
        let rows = f1_checkpoints(&[500]);
        assert!(rows[0].sandwich_holds);
        assert!(rows[0].checkpoints > 2);
    }
}
