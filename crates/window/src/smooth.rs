//! Smoothness parameters (Definition A.1 and Theorem A.4 of the paper).
//!
//! A function `f` is `(α, β)`-smooth when, once a suffix `B` of the stream
//! satisfies `(1 − β)·f(A) ≤ f(B)`, appending any further updates `C` keeps
//! `(1 − α)·f(A ∪ C) ≤ f(B ∪ C)`. The smooth-histogram pruning rule only
//! needs the ratio `β` at which adjacent checkpoints may be discarded; this
//! module computes the `β` that Theorem A.4 assigns to the frequency moments
//! `F_p`.

/// The `(α, β)` smoothness pair for the frequency moment `F_p` at target
/// accuracy `ε` (Theorem A.4): `F_p` is `(ε, ε^p / p^p)`-smooth for `p ≥ 1`
/// and `(ε, ε)`-smooth for `p < 1`.
///
/// # Panics
///
/// Panics unless `p > 0` and `0 < ε < 1`.
pub fn fp_smoothness(p: f64, epsilon: f64) -> (f64, f64) {
    assert!(p > 0.0, "p must be positive");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    if p < 1.0 {
        (epsilon, epsilon)
    } else {
        (epsilon, (epsilon / p).powf(p))
    }
}

/// Number of checkpoints the smooth histogram needs for a polynomially
/// bounded monotone function with pruning ratio `β` over windows of size `W`:
/// `O(log_{1/(1-β)} (W^{O(1)})) = O((log W) / β)`.
///
/// Used by the experiment harness to check the measured checkpoint count has
/// the right shape (experiment F1).
pub fn expected_checkpoints(beta: f64, window: u64) -> f64 {
    assert!(beta > 0.0 && beta < 1.0);
    ((window.max(2) as f64).ln() / -(1.0 - beta).ln()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_smoothness_matches_theorem() {
        let (alpha, beta) = fp_smoothness(2.0, 0.5);
        assert_eq!(alpha, 0.5);
        assert!((beta - 0.0625).abs() < 1e-12); // (0.5/2)^2
    }

    #[test]
    fn sub_one_p_is_symmetric() {
        let (alpha, beta) = fp_smoothness(0.5, 0.3);
        assert_eq!(alpha, 0.3);
        assert_eq!(beta, 0.3);
    }

    #[test]
    fn checkpoint_count_grows_logarithmically() {
        let small = expected_checkpoints(0.25, 1_000);
        let large = expected_checkpoints(0.25, 1_000_000);
        assert!(large > small);
        assert!(
            large / small < 3.0,
            "growth should be logarithmic, not polynomial"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn invalid_epsilon_panics() {
        let _ = fp_smoothness(1.0, 1.5);
    }
}
