//! Sliding-window `L_p` norm estimation (`Estimate`, Theorem A.5).
//!
//! The sliding-window truly perfect `L_p` sampler (Algorithm 6) needs, at
//! query time, a value `F` with
//!
//! ```text
//! ‖f_window‖_p  ≤  F  ≤  O(1) · ‖f_window‖_p
//! ```
//!
//! with high probability, to normalise its rejection step. The paper obtains
//! this by running an `F_p` estimator inside the smooth-histogram framework;
//! we do the same, wrapping the AMS sampling-based `F_p` estimator of
//! `tps-sketches` in the [`SmoothHistogram`] of this crate. Because the
//! inner estimator is randomized, the resulting sampler inherits a
//! high-probability (rather than certain) normaliser — exactly the situation
//! of the paper's Algorithm 6, whose guarantee is likewise conditioned on
//! `Estimate` succeeding.

use crate::histogram::SmoothHistogram;
use tps_random::Xoshiro256;
use tps_sketches::AmsFpEstimator;
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::{Item, SpaceUsage};

/// A sliding-window `L_p`-norm estimator built from a smooth histogram of
/// AMS `F_p` estimators.
#[derive(Debug)]
pub struct SlidingWindowLpEstimate {
    p: f64,
    /// Multiplicative head-room applied to the raw estimate so the reported
    /// value upper-bounds the true norm even under moderate inner-estimator
    /// error.
    safety_factor: f64,
    histogram: SmoothHistogram<LpFactory>,
}

/// Factory producing fresh AMS `F_p` estimator instances for the histogram's
/// checkpoints, each with an independent RNG stream.
#[derive(Debug)]
struct LpFactory {
    p: f64,
    rows: usize,
    cols: usize,
    rng: Xoshiro256,
}

impl crate::histogram::EstimatorFactory for LpFactory {
    type Output = AmsFpEstimator;

    fn create(&mut self) -> AmsFpEstimator {
        AmsFpEstimator::new(self.p, self.rows, self.cols, self.rng.jump())
    }
}

/// Wire format: the factory's parameters plus its RNG position (each
/// checkpoint's estimator receives a [`Xoshiro256::jump`] stream off this
/// generator, so restoring the position keeps future checkpoints on the
/// uninterrupted draw sequence).
impl Snapshot for LpFactory {
    const TAG: u16 = codec::tag::LP_FACTORY;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.p);
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        self.rng.encode_into(w);
    }
}

impl Restore for LpFactory {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let p = r.get_f64()?;
        if !(p > 0.0 && p.is_finite()) {
            return Err(CodecError::InvalidValue {
                what: "factory exponent must be positive and finite",
            });
        }
        let rows = r.get_usize()?;
        let cols = r.get_usize()?;
        // The factory's dimensions size every *future* checkpoint
        // estimator, so the payload-length checks never see them; bound
        // them so a crafted snapshot cannot smuggle an unbounded
        // allocation into the first post-restore update. (Live
        // configurations are a few thousand units; the cap leaves three
        // orders of magnitude of headroom.)
        const MAX_FACTORY_UNITS: usize = 1 << 20;
        if rows == 0
            || cols == 0
            || rows
                .checked_mul(cols)
                .is_none_or(|units| units > MAX_FACTORY_UNITS)
        {
            return Err(CodecError::InvalidValue {
                what: "factory dimensions out of range",
            });
        }
        Ok(Self {
            p,
            rows,
            cols,
            rng: Xoshiro256::decode_from(r)?,
        })
    }
}

/// Wire format: the exponent, the safety factor, and the smooth histogram
/// of AMS checkpoints.
impl Snapshot for SlidingWindowLpEstimate {
    const TAG: u16 = codec::tag::SLIDING_LP_ESTIMATE;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.p);
        w.put_f64(self.safety_factor);
        self.histogram.encode_into(w);
    }
}

impl Restore for SlidingWindowLpEstimate {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let p = r.get_f64()?;
        if !(p > 0.0 && p.is_finite()) {
            return Err(CodecError::InvalidValue {
                what: "estimator exponent must be positive and finite",
            });
        }
        let safety_factor = r.get_f64()?;
        if !(safety_factor >= 1.0 && safety_factor.is_finite()) {
            return Err(CodecError::InvalidValue {
                what: "safety factor must be finite and at least 1",
            });
        }
        let histogram: SmoothHistogram<LpFactory> = SmoothHistogram::decode_from(r)?;
        // Live state carries bit-identical exponents in the estimator, its
        // factory, and every checkpoint's AMS instance; a crafted snapshot
        // must not smuggle in a disagreeing copy (future or existing
        // checkpoints would silently estimate a different moment).
        if histogram.factory().p.to_bits() != p.to_bits()
            || histogram
                .estimators()
                .any(|e| e.p().to_bits() != p.to_bits())
        {
            return Err(CodecError::InvalidValue {
                what: "window-norm estimator components disagree on the exponent",
            });
        }
        Ok(Self {
            p,
            safety_factor,
            histogram,
        })
    }
}

impl SlidingWindowLpEstimate {
    /// Creates an estimator of the window's `L_p` norm.
    ///
    /// `rows × cols` controls the accuracy of each inner AMS instance; the
    /// defaults used by the samplers are `rows = 5`, `cols = 200`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≤ 0` or `window == 0`.
    pub fn new(p: f64, window: u64, rows: usize, cols: usize, rng: Xoshiro256) -> Self {
        assert!(p > 0.0, "p must be positive");
        let factory = LpFactory { p, rows, cols, rng };
        Self {
            p,
            safety_factor: 1.5,
            // β = 0.1 keeps the checkpoint sandwich within a small constant
            // factor for p ≤ 2 (Theorem A.4) while the checkpoint count stays
            // O(log W); the safety factor absorbs the residual slack.
            histogram: SmoothHistogram::new(window, 0.1, factory),
        }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of live checkpoints (for the F1 experiment).
    pub fn checkpoint_count(&self) -> usize {
        self.histogram.checkpoint_count()
    }

    /// Processes one stream update.
    pub fn update(&mut self, item: Item) {
        self.histogram.update(item);
    }

    /// The current `L_p`-norm estimate for the active window, with the
    /// safety factor applied (so it upper-bounds the true norm unless the
    /// inner estimator errs badly). Returns 0 for an empty stream.
    pub fn lp_estimate(&self) -> f64 {
        let fp = self.histogram.window_estimate().max(0.0);
        self.safety_factor * fp.powf(1.0 / self.p)
    }
}

impl SpaceUsage for SlidingWindowLpEstimate {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.histogram.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::{default_rng, StreamRng};
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::update::WindowSpec;

    fn window_truth(stream: &[Item], window: u64, p: f64) -> f64 {
        FrequencyVector::from_window(stream, WindowSpec::new(window))
            .fp(p)
            .powf(1.0 / p)
    }

    #[test]
    fn l2_window_estimate_is_constant_factor() {
        let window = 200u64;
        let mut est = SlidingWindowLpEstimate::new(2.0, window, 3, 60, default_rng(3));
        let mut rng = default_rng(4);
        let stream: Vec<Item> = (0..1_200).map(|_| rng.gen_range(25)).collect();
        for &x in &stream {
            est.update(x);
        }
        let truth = window_truth(&stream, window, 2.0);
        let reported = est.lp_estimate();
        assert!(
            reported >= truth * 0.9,
            "reported {reported} must cover the truth {truth}"
        );
        assert!(
            reported <= truth * 5.0,
            "reported {reported} too loose vs {truth}"
        );
    }

    #[test]
    fn l1_window_estimate_tracks_window_not_stream() {
        // For p = 1 the AMS inner estimator is exact, so the only error is
        // the histogram sandwich; the estimate must reflect the window, not
        // the 10x longer stream.
        let window = 100u64;
        let mut est = SlidingWindowLpEstimate::new(1.0, window, 3, 10, default_rng(5));
        for t in 0..1_000u64 {
            est.update(t % 13);
        }
        let reported = est.lp_estimate();
        assert!(reported >= 100.0 * 1.0, "must cover the window mass");
        assert!(
            reported < 300.0,
            "must not report the whole stream mass ({reported})"
        );
    }

    #[test]
    fn checkpoints_stay_logarithmic() {
        let mut est = SlidingWindowLpEstimate::new(2.0, 1_000, 2, 20, default_rng(6));
        for t in 0..4_000u64 {
            est.update(t % 50);
        }
        assert!(
            est.checkpoint_count() < 250,
            "checkpoints: {}",
            est.checkpoint_count()
        );
    }

    #[test]
    fn empty_stream_reports_zero() {
        let est = SlidingWindowLpEstimate::new(1.5, 10, 2, 5, default_rng(7));
        assert_eq!(est.lp_estimate(), 0.0);
    }
}
