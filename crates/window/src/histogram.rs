//! The smooth-histogram data structure (Definition A.2 of the paper,
//! following Braverman–Ostrovsky).
//!
//! A smooth histogram maintains a sequence of timestamps `x_1 < x_2 < … <
//! x_s` and, for each, an instance of a streaming estimator applied to the
//! suffix of the stream starting at that timestamp. Two invariants are
//! maintained:
//!
//! 1. `x_1` is expired (or the stream start) and `x_2` is active, so the
//!    active window is sandwiched between the suffixes of `x_1` and `x_2`
//!    (Figure 1 of the paper); and
//! 2. adjacent estimates are separated by at least a `(1 − β)` factor, which
//!    for a polynomially bounded monotone function caps the number of
//!    instances at `O((log W)/β)`.

use std::collections::VecDeque;

use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::{Estimator, Item, SpaceUsage, Timestamp};

/// A factory producing fresh estimator instances, one per checkpoint.
pub trait EstimatorFactory {
    /// The estimator type produced.
    type Output: Estimator;

    /// Creates a fresh estimator (applied to the stream suffix that starts
    /// at the checkpoint being created).
    fn create(&mut self) -> Self::Output;
}

impl<E: Estimator, F: FnMut() -> E> EstimatorFactory for F {
    type Output = E;

    fn create(&mut self) -> E {
        self()
    }
}

/// One checkpointed estimator instance.
#[derive(Debug, Clone)]
struct Checkpoint<E> {
    /// 1-based stream position of the first update this instance has seen.
    start: Timestamp,
    estimator: E,
}

/// A smooth histogram over a monotone non-negative statistic of the window.
///
/// Checkpoints live in a [`VecDeque`]: the expiry rule discards from the
/// *front* (oldest first), and `Vec::remove(0)` there made a worst-case
/// update `O(s²)` in the checkpoint count `s`. Front pops are `O(1)` on a
/// deque, and the compaction rule's mid-removals (near the front, where
/// redundant checkpoints cluster) are `O(distance from the nearer end)`.
/// The pruning *decisions* are index-for-index identical to the historical
/// `Vec` implementation, so checkpoint sequences are unchanged (pinned by
/// the test below and re-confirmed against the F1 experiment).
#[derive(Debug)]
pub struct SmoothHistogram<F: EstimatorFactory> {
    window: u64,
    beta: f64,
    factory: F,
    checkpoints: VecDeque<Checkpoint<F::Output>>,
    time: Timestamp,
}

impl<F: EstimatorFactory> SmoothHistogram<F> {
    /// Creates a smooth histogram for windows of `window` updates with
    /// pruning ratio `beta ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `beta` is outside `(0, 1)`.
    pub fn new(window: u64, beta: f64, factory: F) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
        Self {
            window,
            beta,
            factory,
            checkpoints: VecDeque::new(),
            time: 0,
        }
    }

    /// The window size `W`.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Current stream position (number of updates processed).
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// Number of live checkpoints (experiment F1 measures this).
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// The start timestamps of the live checkpoints, oldest first.
    pub fn checkpoint_starts(&self) -> Vec<Timestamp> {
        self.checkpoints.iter().map(|c| c.start).collect()
    }

    /// Read access to the checkpoint factory (wrappers use this for
    /// decode-time configuration cross-checks and diagnostics).
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// The live checkpoint estimators, oldest first (same order as
    /// [`SmoothHistogram::checkpoint_starts`]).
    pub fn estimators(&self) -> impl Iterator<Item = &F::Output> {
        self.checkpoints.iter().map(|c| &c.estimator)
    }

    /// Processes one stream update.
    pub fn update(&mut self, item: Item) {
        self.time += 1;
        // Start a new instance at this position.
        let estimator = self.factory.create();
        self.checkpoints.push_back(Checkpoint {
            start: self.time,
            estimator,
        });
        // Feed the update to every instance (each covers a suffix).
        for cp in &mut self.checkpoints {
            cp.estimator.update(item);
        }
        self.prune();
    }

    /// The smooth-histogram pruning rule plus window expiry.
    fn prune(&mut self) {
        // Rule 1: among checkpoints whose estimates are within (1 - β) of an
        // earlier one, keep only the endpoints (Definition A.2, property 3).
        let mut i = 0;
        while i + 2 < self.checkpoints.len() {
            let outer = self.checkpoints[i].estimator.estimate();
            let skip_to = self.checkpoints[i + 2].estimator.estimate();
            if skip_to >= (1.0 - self.beta) * outer && outer > 0.0 {
                // The middle checkpoint i+1 is redundant.
                self.checkpoints.remove(i + 1);
            } else {
                i += 1;
            }
        }
        // Rule 2: keep at most one expired checkpoint (x_1 may be expired,
        // x_2 must be active). Front pops are O(1) on the deque.
        let window_start = self.earliest_active();
        while self.checkpoints.len() >= 2 && self.checkpoints[1].start < window_start {
            self.checkpoints.pop_front();
        }
    }

    /// The earliest active stream position for the current time.
    fn earliest_active(&self) -> Timestamp {
        (self.time + 1).saturating_sub(self.window).max(1)
    }

    /// The estimate of the oldest checkpoint, which covers a *superset* of
    /// the active window (an over-approximation for monotone statistics).
    /// Returns 0 for an empty stream.
    pub fn over_estimate(&self) -> f64 {
        self.checkpoints
            .front()
            .map(|c| c.estimator.estimate())
            .unwrap_or(0.0)
    }

    /// The estimate of the newest checkpoint that is entirely inside the
    /// active window (an under-approximation for monotone statistics).
    /// Returns 0 if no checkpoint is active yet.
    pub fn under_estimate(&self) -> f64 {
        let window_start = self.earliest_active();
        self.checkpoints
            .iter()
            .find(|c| c.start >= window_start)
            .map(|c| c.estimator.estimate())
            .unwrap_or(0.0)
    }

    /// The canonical smooth-histogram answer for the window: the estimate of
    /// the checkpoint straddling the window boundary (`x_1`), which for an
    /// `(α, β)`-smooth function is a `(1 ± α)`-approximation of the window
    /// value (after the inner estimator's own error).
    pub fn window_estimate(&self) -> f64 {
        self.over_estimate()
    }
}

/// Wire format: window, pruning ratio, clock, the factory (so future
/// checkpoints draw from the same RNG stream), then the live checkpoints
/// oldest-first (start position + inner estimator each).
impl<F> Snapshot for SmoothHistogram<F>
where
    F: EstimatorFactory + Snapshot,
    F::Output: Snapshot,
{
    const TAG: u16 = codec::tag::SMOOTH_HISTOGRAM;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_u64(self.window);
        w.put_f64(self.beta);
        w.put_u64(self.time);
        self.factory.encode_into(w);
        w.put_len(self.checkpoints.len());
        for cp in &self.checkpoints {
            w.put_u64(cp.start);
            cp.estimator.encode_into(w);
        }
    }
}

impl<F> Restore for SmoothHistogram<F>
where
    F: EstimatorFactory + Restore,
    F::Output: Restore,
{
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let window = r.get_u64()?;
        if window == 0 {
            return Err(CodecError::InvalidValue {
                what: "window must be positive",
            });
        }
        let beta = r.get_f64()?;
        if !(beta > 0.0 && beta < 1.0) {
            return Err(CodecError::InvalidValue {
                what: "pruning ratio beta outside (0, 1)",
            });
        }
        let time = r.get_u64()?;
        let factory = F::decode_from(r)?;
        let count = r.get_len(8)?;
        let mut checkpoints = VecDeque::with_capacity(count);
        let mut prev = 0u64;
        for _ in 0..count {
            let start = r.get_u64()?;
            if start <= prev || start > time {
                return Err(CodecError::InvalidValue {
                    what: "checkpoint starts must be strictly increasing and in range",
                });
            }
            prev = start;
            checkpoints.push_back(Checkpoint {
                start,
                estimator: F::Output::decode_from(r)?,
            });
        }
        Ok(Self {
            window,
            beta,
            factory,
            checkpoints,
            time,
        })
    }
}

impl<F: EstimatorFactory> SpaceUsage for SmoothHistogram<F>
where
    F::Output: SpaceUsage,
{
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .checkpoints
                .iter()
                .map(|c| c.estimator.space_bytes() + std::mem::size_of::<Timestamp>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::{default_rng, StreamRng};
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::update::WindowSpec;

    /// An exact F1 (count) estimator used to exercise the histogram logic
    /// without inner-estimator noise.
    #[derive(Debug, Default)]
    struct CountEstimator {
        count: u64,
    }

    impl Estimator for CountEstimator {
        fn update(&mut self, _item: Item) {
            self.count += 1;
        }
        fn estimate(&self) -> f64 {
            self.count as f64
        }
    }

    /// An exact F2 estimator (stores the suffix's frequency vector; test-only).
    #[derive(Debug, Default)]
    struct ExactF2 {
        freqs: FrequencyVector,
    }

    impl Estimator for ExactF2 {
        fn update(&mut self, item: Item) {
            self.freqs.insert(item);
        }
        fn estimate(&self) -> f64 {
            self.freqs.fp(2.0)
        }
    }

    #[test]
    fn count_estimates_sandwich_the_window() {
        let window = 100u64;
        let mut hist = SmoothHistogram::new(window, 0.2, CountEstimator::default);
        for t in 0..1000u64 {
            hist.update(t % 17);
            let active = window.min(t + 1) as f64;
            assert!(
                hist.over_estimate() >= active,
                "over-estimate must cover the window"
            );
            assert!(
                hist.under_estimate() <= active,
                "under-estimate must stay inside"
            );
        }
        // For F1 with beta = 0.2 the sandwich is within a (1 - beta) factor.
        let over = hist.over_estimate();
        let under = hist.under_estimate();
        assert!(
            under >= (1.0 - 0.25) * over,
            "sandwich too loose: {under} vs {over}"
        );
    }

    #[test]
    fn checkpoint_count_is_logarithmic() {
        let mut hist = SmoothHistogram::new(10_000, 0.25, CountEstimator::default);
        for t in 0..50_000u64 {
            hist.update(t);
        }
        let count = hist.checkpoint_count();
        assert!(
            count <= 80,
            "checkpoint count {count} should be O(log W / beta)"
        );
        assert!(count >= 3);
    }

    #[test]
    fn first_two_checkpoints_sandwich_window_start() {
        let window = 500u64;
        let mut hist = SmoothHistogram::new(window, 0.3, CountEstimator::default);
        for t in 0..5_000u64 {
            hist.update(t);
        }
        let starts = hist.checkpoint_starts();
        let window_start = 5_000 - window + 1;
        assert!(
            starts[0] <= window_start,
            "x1 must start at or before the window"
        );
        assert!(starts[1] >= window_start, "x2 must be active");
    }

    #[test]
    fn exact_f2_window_estimate_is_constant_factor() {
        let window = 200u64;
        let mut hist = SmoothHistogram::new(window, 0.05, ExactF2::default);
        let mut rng = default_rng(5);
        let stream: Vec<Item> = (0..3_000).map(|_| rng.gen_range(40)).collect();
        for &x in &stream {
            hist.update(x);
        }
        let truth = FrequencyVector::from_window(&stream, WindowSpec::new(window)).fp(2.0);
        let est = hist.window_estimate();
        assert!(
            est >= truth,
            "window estimate must upper-bound the window F2"
        );
        assert!(
            est <= 2.0 * truth,
            "window estimate too loose: {est} vs {truth}"
        );
    }

    #[test]
    fn stream_shorter_than_window_is_exact_for_counts() {
        let mut hist = SmoothHistogram::new(1_000, 0.2, CountEstimator::default);
        for t in 0..50u64 {
            hist.update(t);
        }
        assert_eq!(hist.over_estimate(), 50.0);
        assert_eq!(hist.under_estimate(), 50.0);
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1)")]
    fn invalid_beta_panics() {
        let _ = SmoothHistogram::new(10, 1.5, CountEstimator::default);
    }

    /// The `VecDeque` checkpoint store must produce exactly the checkpoint
    /// sequence the historical `Vec` implementation produced, at every
    /// step. The reference below replays that implementation verbatim
    /// (`remove(0)` expiry, `remove(i + 1)` compaction) on plain counts.
    #[test]
    fn deque_checkpoints_match_vec_reference_sequence() {
        struct Reference {
            window: u64,
            beta: f64,
            /// (start, count) pairs — a `CountEstimator` per checkpoint.
            checkpoints: Vec<(Timestamp, u64)>,
            time: Timestamp,
        }
        impl Reference {
            fn update(&mut self) {
                self.time += 1;
                self.checkpoints.push((self.time, 0));
                for cp in &mut self.checkpoints {
                    cp.1 += 1;
                }
                let mut i = 0;
                while i + 2 < self.checkpoints.len() {
                    let outer = self.checkpoints[i].1 as f64;
                    let skip_to = self.checkpoints[i + 2].1 as f64;
                    if skip_to >= (1.0 - self.beta) * outer && outer > 0.0 {
                        self.checkpoints.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
                let window_start = (self.time + 1).saturating_sub(self.window).max(1);
                while self.checkpoints.len() >= 2 && self.checkpoints[1].0 < window_start {
                    self.checkpoints.remove(0);
                }
            }
        }
        for (window, beta) in [(50u64, 0.2f64), (500, 0.1), (1_000, 0.35)] {
            let mut hist = SmoothHistogram::new(window, beta, CountEstimator::default);
            let mut reference = Reference {
                window,
                beta,
                checkpoints: Vec::new(),
                time: 0,
            };
            for t in 0..(4 * window) {
                hist.update(t % 13);
                reference.update();
                let expected: Vec<Timestamp> =
                    reference.checkpoints.iter().map(|&(s, _)| s).collect();
                assert_eq!(
                    hist.checkpoint_starts(),
                    expected,
                    "checkpoint sequence diverged at t={t} (W={window}, beta={beta})"
                );
            }
        }
    }
}
