//! # tps-window
//!
//! Sliding-window substrate: the smooth-histogram framework of
//! Braverman–Ostrovsky and the window-restricted `F_p`/`L_p` estimators the
//! paper's sliding-window samplers rely on (Appendix A, Theorem A.5).
//!
//! In the sliding-window model only the `W` most recent updates are active.
//! The smooth histogram maintains a logarithmic number of checkpointed
//! estimator instances whose start times "sandwich" the active window
//! (Figure 1 of the paper); for any `(α, β)`-smooth function the estimate of
//! the instance straddling the window boundary is within a constant factor
//! of the true window value.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod estimate;
pub mod histogram;
pub mod smooth;

pub use estimate::SlidingWindowLpEstimate;
pub use histogram::{EstimatorFactory, SmoothHistogram};
pub use smooth::fp_smoothness;
