//! Offline stand-in for the [criterion](https://docs.rs/criterion) benchmark
//! harness.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the subset of the criterion API that the `tps-bench` bench
//! targets use is vendored here as a plain wall-clock harness. Benches keep
//! the exact same source they would have against real criterion; swapping the
//! `criterion` workspace dependency for the registry crate restores the full
//! statistical machinery with no source changes.
//!
//! Measurement model: each benchmark closure is warmed up for
//! `warm_up_time`, then timed in batches until `measurement_time` elapses
//! and at least `sample_size` samples were collected. The mean, minimum and
//! maximum per-iteration times are reported, plus elements/second when a
//! [`Throughput`] was declared. Machine-readable JSON lines are written to
//! the file named by the `CRITERION_SHIM_JSON` environment variable if set.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (best-effort stand-in for
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Batching hint for [`Bencher::iter_batched`] (API subset). The shim
/// always runs one setup per timed iteration — `PerIteration` semantics,
/// which is a valid (if slower) schedule for the other variants too; only
/// the routine is timed either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// The input is small; real criterion would share one setup across many
    /// iterations.
    SmallInput,
    /// The input is large; real criterion batches a few iterations per
    /// setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier `"{name}/{parameter}"`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Creates an identifier from a bare parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing callback handle.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    warm_up_time: Duration,
    measurement_time: Duration,
    min_samples: usize,
}

impl Bencher<'_> {
    /// Times `routine`, collecting one sample per invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: collect samples until both budgets are met.
        let measure_start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if self.samples.len() >= self.min_samples
                && measure_start.elapsed() >= self.measurement_time
            {
                break;
            }
            // Never loop unboundedly on pathologically fast routines.
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// inside the timed window, so per-iteration construction cost (e.g.
    /// building a large engine) does not pollute the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        let measure_start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.samples.len() >= self.min_samples
                && measure_start.elapsed() >= self.measurement_time
            {
                break;
            }
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }
}

/// A named group of related benchmarks with shared configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            min_samples: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &samples);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            min_samples: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &samples);
        self
    }

    /// Finishes the group (prints a trailing newline, mirroring criterion).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&mut self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id:<40} (no samples)", self.name);
            return;
        }
        let nanos: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        let mean = nanos.iter().sum::<f64>() / nanos.len() as f64;
        let min = nanos.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = nanos.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut line = format!(
            "{}/{id:<40} time: [{} {} {}]",
            self.name,
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 / (mean / 1e9);
            let _ = write!(line, "  thrpt: {:.3} Melem/s", per_sec / 1e6);
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let per_sec = n as f64 / (mean / 1e9);
            let _ = write!(line, "  thrpt: {:.3} MiB/s", per_sec / (1024.0 * 1024.0));
        }
        println!("{line}");
        let elements = match self.throughput {
            Some(Throughput::Elements(n)) => n,
            _ => 0,
        };
        self.criterion.json_rows.push(format!(
            "{{\"group\":\"{}\",\"bench\":\"{id}\",\"mean_ns\":{mean:.1},\
             \"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{},\
             \"elements_per_iter\":{elements}}}",
            self.name,
            samples.len(),
        ));
    }
}

/// The benchmark harness entry point (API subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    json_rows: Vec<String>,
}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Writes collected results as JSON lines if `CRITERION_SHIM_JSON` names
    /// a file; called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
            if !path.is_empty() {
                let body = self.json_rows.join("\n");
                if let Err(e) = std::fs::write(&path, body + "\n") {
                    eprintln!("criterion shim: cannot write {path}: {e}");
                }
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(c.json_rows.len(), 1);
        assert!(c.json_rows[0].contains("\"bench\":\"noop\""));
    }

    #[test]
    fn iter_batched_times_routine_on_fresh_inputs() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
        assert_eq!(c.json_rows.len(), 1);
        assert!(c.json_rows[0].contains("\"bench\":\"batched\""));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
