//! Offline stand-in for the [proptest](https://docs.rs/proptest) framework.
//!
//! The build environment for this workspace has no registry access, so the
//! subset of the proptest API used by `tests/properties.rs` is vendored
//! here: the [`Strategy`](strategy::Strategy) trait with range / tuple /
//! `prop_map` / `collection::vec` / [`any`](arbitrary::any) strategies, the
//! [`proptest!`] test macro and the `prop_assert*` macros, backed by a
//! seeded PRNG instead of proptest's full shrinking machinery. Failing
//! cases report their generated inputs but are not shrunk. Swapping the
//! `proptest` workspace dependency for the registry crate restores real
//! proptest with no source changes to the tests.

pub mod test_runner {
    //! Test-case plumbing: configuration, failure type, and the shim PRNG.

    /// Error returned (via `prop_assert!`) from a failing property body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified, with an explanation.
        Fail(String),
        /// The case was rejected (input did not satisfy preconditions).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-test configuration (API subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// Mirrors real proptest: the `PROPTEST_CASES` environment variable
        /// overrides the built-in default of 256 cases (CI's weekly deep
        /// run sets `PROPTEST_CASES=4096`).
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(256);
            Self { cases }
        }
    }

    /// The deterministic PRNG driving input generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct ShimRng {
        state: u64,
    }

    impl ShimRng {
        /// Seeds from the `PROPTEST_SHIM_SEED` environment variable if set,
        /// otherwise from a fixed seed mixed with the test name, so every
        /// test is deterministic but distinct.
        pub fn from_env(test_name: &str) -> Self {
            let base = std::env::var("PROPTEST_SHIM_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            let mut h = base;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform double in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            // Multiply-shift; bias is irrelevant for test-input generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::ShimRng;

    /// A recipe for generating test inputs (API subset of proptest's
    /// `Strategy`; no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut ShimRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut ShimRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut ShimRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut ShimRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    start + rng.below(span.saturating_add(1).max(1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut ShimRng) -> i64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add(rng.below(span) as i64)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut ShimRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut ShimRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

    /// A strategy wrapping a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut ShimRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] strategy over primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::ShimRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut ShimRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut ShimRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut ShimRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut ShimRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut ShimRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::ShimRng;

    /// A strategy for `Vec`s whose length is drawn from `lengths` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, lengths: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(lengths.start < lengths.end, "empty length range");
        VecStrategy { element, lengths }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lengths: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut ShimRng) -> Vec<S::Value> {
            let span = (self.lengths.end - self.lengths.start) as u64;
            let len = self.lengths.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, returning a
/// [`TestCaseError`](test_runner::TestCaseError) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

/// Declares property tests (API subset of `proptest::proptest!`).
///
/// Each declared function runs `config.cases` times with freshly generated
/// inputs; a failing `prop_assert*` (or an early `Err` return) panics with
/// the case number and the generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut shim_rng = $crate::test_runner::ShimRng::from_env(stringify!($name));
                for case in 0..config.cases {
                    #[allow(unused_imports)]
                    use $crate::strategy::Strategy as _;
                    $(let $arg = ($strat).generate(&mut shim_rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` falsified at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::ShimRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = ShimRng::from_env("ranges_stay_in_bounds");
        for _ in 0..10_000 {
            let x = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
            let v = crate::collection::vec(0u64..10, 1..4).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = ShimRng::from_env("prop_map_and_tuples_compose");
        let strat = (0u64..4, any::<bool>()).prop_map(|(a, b)| if b { a + 100 } else { a });
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!(v < 4 || (100..104).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated inputs respect their strategies.
        #[test]
        fn macro_generates_in_range(x in 1u64..50, v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6, "bad length {}", v.len());
            prop_assert_eq!(v.iter().filter(|&&e| e >= 5).count(), 0);
        }
    }
}
