//! Exponential random variables and anti-rank utilities.
//!
//! The *baseline* perfect `L_p` samplers reproduced from Jayaram–Woodruff
//! (FOCS 2018) scale each coordinate by `1 / E_i^{1/p}` for independent
//! exponentials `E_i` and report the coordinate attaining the maximum. The
//! key distributional fact (Lemma B.3 of the paper, due to Nagaraja) is that
//! the probability index `i` attains the minimum of `E_i / λ_i` is
//! `λ_i / Σ_j λ_j`; [`AntiRanks`] exposes exactly that computation for tests.

use crate::StreamRng;

/// Draws a standard (rate 1) exponential random variable via inverse CDF.
///
/// The value is strictly positive: the uniform draw is nudged away from 0 so
/// `ln` never sees an exact zero.
#[inline]
pub fn exponential<R: StreamRng>(rng: &mut R) -> f64 {
    // u ∈ (0, 1]: complementing the [0,1) draw avoids ln(0).
    let u = 1.0 - rng.next_f64();
    -u.ln()
}

/// Draws an exponential random variable with the given rate `λ > 0`.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
#[inline]
pub fn exponential_with_rate<R: StreamRng>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate must be positive"
    );
    exponential(rng) / rate
}

/// Deterministically derives a per-coordinate standard exponential from a
/// seed and an index, so that repeated updates to the same coordinate see the
/// same variable without storing it (the consistency requirement discussed in
/// the paper's derandomization appendix).
#[inline]
pub fn indexed_exponential(seed: u64, index: u64) -> f64 {
    let word = crate::splitmix::SplitMix64::mix_pair(seed, index);
    const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
    let u = 1.0 - ((word >> 11) as f64 * SCALE);
    -u.ln()
}

/// Anti-rank computations over a collection of scaled exponentials.
///
/// Given weights `λ_1, ..., λ_n`, the variable `E_i / λ_i` (with `E_i`
/// standard exponentials) attains its minimum at index `i` with probability
/// `λ_i / Σ λ_j`. Equivalently, for the `L_p` sampler's scaling
/// `|f_i| / E_i^{1/p}`, the maximum is attained with probability
/// `|f_i|^p / Σ_j |f_j|^p`.
#[derive(Debug, Clone)]
pub struct AntiRanks {
    weights: Vec<f64>,
}

impl AntiRanks {
    /// Creates the helper from non-negative weights (`λ_i`).
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        Self { weights }
    }

    /// The exact probability that index `i` attains the minimum of
    /// `E_i / λ_i` (Lemma B.3). Returns 0 when all weights are zero.
    pub fn min_probability(&self, i: usize) -> f64 {
        let total: f64 = self.weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        self.weights[i] / total
    }

    /// Samples the arg-min of `E_i / λ_i` by explicitly drawing the
    /// exponentials. Returns `None` if every weight is zero.
    pub fn sample_argmin<R: StreamRng>(&self, rng: &mut R) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &w) in self.weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            let value = exponential(rng) / w;
            match best {
                Some((_, b)) if value >= b => {}
                _ => best = Some((i, value)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_rng;

    #[test]
    fn exponential_mean_is_one() {
        let mut rng = default_rng(2);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_with_rate_scales_mean() {
        let mut rng = default_rng(3);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| exponential_with_rate(&mut rng, 4.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let mut rng = default_rng(4);
        let _ = exponential_with_rate(&mut rng, 0.0);
    }

    #[test]
    fn indexed_exponential_is_consistent() {
        let a = indexed_exponential(5, 100);
        let b = indexed_exponential(5, 100);
        let c = indexed_exponential(5, 101);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a > 0.0);
    }

    #[test]
    fn antirank_min_probability_matches_empirical() {
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let helper = AntiRanks::new(weights);
        let mut rng = default_rng(6);
        let trials = 100_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[helper.sample_argmin(&mut rng).unwrap()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let expected = helper.min_probability(i);
            let observed = count as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "index {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn antirank_zero_weights_yield_none() {
        let helper = AntiRanks::new(vec![0.0, 0.0]);
        let mut rng = default_rng(8);
        assert!(helper.sample_argmin(&mut rng).is_none());
        assert_eq!(helper.min_probability(0), 0.0);
    }
}
