//! `p`-stable random variables (Chambers–Mallows–Stuck).
//!
//! Theorem B.10 of the paper speeds up the baseline perfect `L_p` sampler for
//! `p < 1` by replacing the per-duplicate exponentials with a single
//! `p`-stable variable per coordinate (the sum `Σ_j e_j^{-1/p}` converges to
//! a `p`-stable law). We reproduce that baseline, so we need a generator for
//! standard `p`-stable variates.

use crate::StreamRng;
use std::f64::consts::{FRAC_PI_2, PI};

/// Draws a standard symmetric `p`-stable random variable using the
/// Chambers–Mallows–Stuck transform.
///
/// For `p = 2` this is (a scaling of) a Gaussian, for `p = 1` a Cauchy.
/// Valid for `p ∈ (0, 2]`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 2]`.
pub fn symmetric_stable<R: StreamRng>(rng: &mut R, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 2.0, "stability parameter must be in (0, 2]");
    // theta uniform on (-pi/2, pi/2), W standard exponential.
    let theta = (rng.next_f64() - 0.5) * PI;
    let w = {
        let u = 1.0 - rng.next_f64();
        -u.ln()
    };
    if (p - 1.0).abs() < 1e-12 {
        // Cauchy: tan(theta).
        return theta.tan();
    }
    let a = (p * theta).sin() / theta.cos().powf(1.0 / p);
    let b = ((1.0 - p) * theta).cos() / w;
    a * b.powf((1.0 - p) / p)
}

/// Draws a *positive* (totally skewed, β = 1) `p`-stable random variable for
/// `p ∈ (0, 1)`.
///
/// This is the limiting law of normalised sums `n^{-1/p} Σ_j E_j^{-1/p}` of
/// inverse-powered exponentials (the quantity approximated in Theorem B.10),
/// which is supported on the positive reals.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn positive_stable<R: StreamRng>(rng: &mut R, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "positive stable requires p in (0, 1)");
    // Kanter's representation: S = (sin(p·U) / sin(U))^{1/p}
    //                              · (sin((1-p)·U) / W)^{(1-p)/p}
    // with U uniform on (0, π) and W standard exponential.
    let u = rng.next_f64().max(f64::MIN_POSITIVE) * PI;
    let w = {
        let v = 1.0 - rng.next_f64();
        -v.ln()
    };
    let first = ((p * u).sin() / u.sin()).powf(1.0 / p);
    let second = (((1.0 - p) * u).sin() / w).powf((1.0 - p) / p);
    first * second
}

/// Approximates one coordinate's aggregate scaling variable
/// `Σ_{j=1}^{dup} E_j^{-1/p}` for the duplicated baseline sampler, without
/// materialising `dup` exponentials.
///
/// For `p < 1` the sum (scaled by `dup^{-1/p}`) converges to a positive
/// `p`-stable variable; we draw that limit directly and rescale. For `p ≥ 1`
/// the sum is dominated by its expectation and we draw a normal
/// approximation around it (only used by comparator code, never by the truly
/// perfect samplers).
pub fn inverse_power_exponential_sum<R: StreamRng>(rng: &mut R, p: f64, dup: u64) -> f64 {
    assert!(p > 0.0 && p <= 2.0);
    assert!(dup > 0);
    if p < 1.0 {
        (dup as f64).powf(1.0 / p) * positive_stable(rng, p)
    } else {
        // E[E^{-1/p}] = Γ(1 - 1/p) diverges at p = 1; clamp to a heavy-tailed
        // but finite surrogate by summing a modest number of explicit draws.
        let explicit = dup.min(64);
        let mut total = 0.0;
        for _ in 0..explicit {
            let e = {
                let u = 1.0 - rng.next_f64();
                -u.ln()
            };
            total += e.powf(-1.0 / p);
        }
        total * (dup as f64 / explicit as f64)
    }
}

/// The angle constant `π/2` re-exported for doctests and downstream
/// numerical checks.
pub const HALF_PI: f64 = FRAC_PI_2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_rng;

    #[test]
    fn cauchy_median_is_zero() {
        let mut rng = default_rng(10);
        let n = 100_000;
        let negatives = (0..n)
            .filter(|_| symmetric_stable(&mut rng, 1.0) < 0.0)
            .count();
        let frac = negatives as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "fraction below zero {frac}");
    }

    #[test]
    fn gaussian_case_has_light_tails() {
        let mut rng = default_rng(11);
        let n = 50_000;
        let extreme = (0..n)
            .filter(|_| symmetric_stable(&mut rng, 2.0).abs() > 6.0)
            .count();
        // For p=2 the CMS transform yields sqrt(2)·N(0,1); |X|>6 is
        // vanishingly rare.
        assert!(extreme <= 2, "too many extreme draws: {extreme}");
    }

    #[test]
    fn half_stable_is_positive_and_heavy_tailed() {
        let mut rng = default_rng(12);
        let n = 50_000;
        let mut big = 0usize;
        for _ in 0..n {
            let x = positive_stable(&mut rng, 0.5);
            assert!(x > 0.0);
            if x > 100.0 {
                big += 1;
            }
        }
        // A 0.5-stable positive law has tail P[X > t] ~ t^{-1/2}; at t=100
        // that is roughly 8-11%, so "big" must occur reasonably often.
        assert!(big > n / 50, "tail too light: {big}");
    }

    #[test]
    fn symmetric_stable_median_matches_sign_symmetry_for_p_half() {
        let mut rng = default_rng(13);
        let n = 100_000;
        let negatives = (0..n)
            .filter(|_| symmetric_stable(&mut rng, 0.5) < 0.0)
            .count();
        let frac = negatives as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "stability parameter")]
    fn invalid_p_panics() {
        let mut rng = default_rng(14);
        let _ = symmetric_stable(&mut rng, 2.5);
    }

    #[test]
    fn inverse_power_sum_scales_with_duplication() {
        let mut rng = default_rng(15);
        // For p = 0.5, the sum over `dup` terms scales like dup^{1/p} = dup^2
        // in distribution; medians over many draws should reflect the scale
        // difference between dup=4 and dup=16 (factor ~16).
        let draws = 4001;
        let mut small: Vec<f64> = (0..draws)
            .map(|_| inverse_power_exponential_sum(&mut rng, 0.5, 4))
            .collect();
        let mut large: Vec<f64> = (0..draws)
            .map(|_| inverse_power_exponential_sum(&mut rng, 0.5, 16))
            .collect();
        small.sort_by(|a, b| a.partial_cmp(b).unwrap());
        large.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ratio = large[draws / 2] / small[draws / 2];
        assert!(
            ratio > 4.0,
            "median ratio {ratio} should reflect dup^2 scaling"
        );
    }
}
