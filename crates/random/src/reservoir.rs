//! Reservoir sampling.
//!
//! Reservoir sampling (Vitter 1985) is the backbone of the paper's framework:
//! Algorithm 1 is exactly "reservoir-sample one position of the stream and
//! count how many times the sampled item re-appears afterwards". Classic
//! reservoir sampling is itself already a *truly perfect* `L_1` sampler for
//! insertion-only streams, which is the `p = 1` base case of Theorem 1.4.
//!
//! Three variants are provided:
//!
//! * [`ReservoirSampler`] — size-`k` uniform reservoir, one coin per update.
//! * [`SkipReservoirSampler`] — size-1 reservoir using Li's skip-ahead
//!   ("Algorithm L") so that the expected work is `O(log m)` coins total
//!   rather than one per update; used by the ablation benchmarks.
//! * [`WeightedReservoir`] — Efraimidis–Spirakis weighted reservoir (a
//!   baseline for weighted sampling with *a priori known* weights, which the
//!   paper's samplers must do *without*).

use crate::StreamRng;

/// An item held in a reservoir together with the stream position
/// (1-based timestamp) at which it was sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservoirItem<T> {
    /// The sampled value.
    pub value: T,
    /// 1-based position in the stream at which this value was (last) chosen.
    pub timestamp: u64,
}

/// A classic size-`k` uniform reservoir sampler.
///
/// After `m ≥ k` updates, every subset-free position of the stream is present
/// in the reservoir with probability exactly `k / m`; for `k = 1` the single
/// held position is uniform over `[m]`.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    capacity: usize,
    seen: u64,
    items: Vec<ReservoirItem<T>>,
}

impl<T> ReservoirSampler<T> {
    /// Creates a reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Number of stream items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The reservoir's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current reservoir contents.
    pub fn items(&self) -> &[ReservoirItem<T>] {
        &self.items
    }

    /// Rebuilds a reservoir from previously captured state (checkpoint /
    /// restore): `seen` items offered so far, of which `items` are held.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, more than `capacity` items are supplied,
    /// or more items are held than were seen.
    pub fn from_parts(capacity: usize, seen: u64, items: Vec<ReservoirItem<T>>) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        assert!(items.len() <= capacity, "more items than capacity");
        assert!(items.len() as u64 <= seen, "more items held than seen");
        Self {
            capacity,
            seen,
            items,
        }
    }

    /// Offers one stream item. Returns `true` if the item was admitted into
    /// the reservoir (possibly replacing an older item).
    pub fn offer<R: StreamRng>(&mut self, rng: &mut R, value: T) -> bool {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(ReservoirItem {
                value,
                timestamp: self.seen,
            });
            return true;
        }
        // Replace a uniformly random slot with probability capacity / seen.
        let j = rng.gen_range(self.seen);
        if (j as usize) < self.capacity {
            self.items[j as usize] = ReservoirItem {
                value,
                timestamp: self.seen,
            };
            true
        } else {
            false
        }
    }

    /// Returns the single held item for capacity-1 reservoirs, if any.
    pub fn single(&self) -> Option<&ReservoirItem<T>> {
        if self.capacity == 1 {
            self.items.first()
        } else {
            None
        }
    }

    /// Clears the reservoir and the stream-length counter.
    pub fn reset(&mut self) {
        self.seen = 0;
        self.items.clear();
    }

    /// Heap space used by the reservoir in bytes (capacity slots).
    pub fn space_bytes(&self) -> usize {
        self.capacity * std::mem::size_of::<ReservoirItem<T>>() + std::mem::size_of::<Self>()
    }
}

/// A size-1 reservoir using geometric skip-ahead (Li's "Algorithm L").
///
/// Distributionally identical to a size-1 [`ReservoirSampler`], but instead
/// of flipping a coin per update it samples how many future updates to skip,
/// so only `O(log m)` random draws are consumed over a stream of length `m`.
#[derive(Debug, Clone)]
pub struct SkipReservoirSampler<T> {
    seen: u64,
    /// Position (1-based) of the next update that will be admitted.
    next_take: u64,
    item: Option<ReservoirItem<T>>,
}

impl<T> SkipReservoirSampler<T> {
    /// Creates an empty skip-ahead reservoir.
    pub fn new() -> Self {
        Self {
            seen: 0,
            next_take: 1,
            item: None,
        }
    }

    /// Number of stream items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The currently held sample, if any.
    pub fn current(&self) -> Option<&ReservoirItem<T>> {
        self.item.as_ref()
    }

    /// Offers one stream item; returns `true` if it became the new sample.
    pub fn offer<R: StreamRng>(&mut self, rng: &mut R, value: T) -> bool {
        self.seen += 1;
        if self.seen < self.next_take {
            return false;
        }
        // Admit this item.
        self.item = Some(ReservoirItem {
            value,
            timestamp: self.seen,
        });
        // For a size-1 reservoir the acceptance probability at position t is
        // 1/t; the skip length S after accepting at position t satisfies
        // P[S > s] = t / (t + s), i.e. S = floor(t * (1-U)/U) for uniform U.
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        let skip = ((self.seen as f64) * (1.0 - u) / u).floor() as u64;
        self.next_take = self.seen + 1 + skip;
        true
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.seen = 0;
        self.next_take = 1;
        self.item = None;
    }
}

impl<T> Default for SkipReservoirSampler<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Efraimidis–Spirakis weighted reservoir sampling of a single item.
///
/// Each offered item carries an explicit non-negative weight; after the
/// stream ends the held item equals item `i` with probability
/// `w_i / Σ_j w_j`. Exposed as a baseline: the paper's samplers achieve the
/// same guarantee for weights `G(f_i)` that are *not known per update*.
#[derive(Debug, Clone)]
pub struct WeightedReservoir<T> {
    best_key: f64,
    item: Option<T>,
    total_weight: f64,
}

impl<T> WeightedReservoir<T> {
    /// Creates an empty weighted reservoir.
    pub fn new() -> Self {
        Self {
            best_key: f64::NEG_INFINITY,
            item: None,
            total_weight: 0.0,
        }
    }

    /// Offers an item with the given weight; zero-weight items are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn offer<R: StreamRng>(&mut self, rng: &mut R, value: T, weight: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weights must be non-negative"
        );
        if weight == 0.0 {
            return;
        }
        self.total_weight += weight;
        // key = U^{1/w}; equivalently compare ln(U)/w which is numerically
        // safer for small weights.
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        let key = u.ln() / weight;
        if key > self.best_key || self.item.is_none() {
            self.best_key = key;
            self.item = Some(value);
        }
    }

    /// The held item, if any item with positive weight was offered.
    pub fn current(&self) -> Option<&T> {
        self.item.as_ref()
    }

    /// Sum of all offered weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

impl<T> Default for WeightedReservoir<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_rng;

    #[test]
    fn size_one_reservoir_is_uniform_over_positions() {
        let mut rng = default_rng(21);
        let m = 20u64;
        let trials = 60_000;
        let mut counts = vec![0u64; m as usize];
        for _ in 0..trials {
            let mut res = ReservoirSampler::new(1);
            for pos in 0..m {
                res.offer(&mut rng, pos);
            }
            counts[res.single().unwrap().value as usize] += 1;
        }
        let expected = trials as f64 / m as f64;
        for (i, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!((0.85..1.15).contains(&ratio), "position {i} ratio {ratio}");
        }
    }

    #[test]
    fn size_k_reservoir_inclusion_probability() {
        let mut rng = default_rng(22);
        let m = 50u64;
        let k = 5usize;
        let trials = 20_000;
        let mut hit = 0u64;
        for _ in 0..trials {
            let mut res = ReservoirSampler::new(k);
            for pos in 0..m {
                res.offer(&mut rng, pos);
            }
            if res.items().iter().any(|it| it.value == 7) {
                hit += 1;
            }
        }
        let frac = hit as f64 / trials as f64;
        let expected = k as f64 / m as f64;
        assert!(
            (frac - expected).abs() < 0.02,
            "inclusion {frac} vs {expected}"
        );
    }

    #[test]
    fn reservoir_timestamp_tracks_position() {
        let mut rng = default_rng(23);
        let mut res = ReservoirSampler::new(1);
        res.offer(&mut rng, 'a');
        let item = res.single().unwrap();
        assert_eq!(item.timestamp, 1);
        assert_eq!(res.seen(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: ReservoirSampler<u32> = ReservoirSampler::new(0);
    }

    #[test]
    fn skip_reservoir_is_uniform_over_positions() {
        let mut rng = default_rng(24);
        let m = 16u64;
        let trials = 60_000;
        let mut counts = vec![0u64; m as usize];
        for _ in 0..trials {
            let mut res = SkipReservoirSampler::new();
            for pos in 0..m {
                res.offer(&mut rng, pos);
            }
            counts[res.current().unwrap().value as usize] += 1;
        }
        let expected = trials as f64 / m as f64;
        for (i, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!((0.85..1.15).contains(&ratio), "position {i} ratio {ratio}");
        }
    }

    #[test]
    fn weighted_reservoir_matches_weights() {
        let mut rng = default_rng(25);
        let weights = [1.0f64, 2.0, 3.0, 4.0];
        let trials = 80_000;
        let mut counts = [0u64; 4];
        for _ in 0..trials {
            let mut res = WeightedReservoir::new();
            for (i, &w) in weights.iter().enumerate() {
                res.offer(&mut rng, i, w);
            }
            counts[*res.current().unwrap()] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..4 {
            let expected = weights[i] / total;
            let observed = counts[i] as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.015,
                "weight index {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn weighted_reservoir_ignores_zero_weights() {
        let mut rng = default_rng(26);
        let mut res = WeightedReservoir::new();
        res.offer(&mut rng, "zero", 0.0);
        assert!(res.current().is_none());
        res.offer(&mut rng, "one", 1.0);
        assert_eq!(res.current(), Some(&"one"));
    }

    #[test]
    fn reservoir_reset_clears_state() {
        let mut rng = default_rng(27);
        let mut res = ReservoirSampler::new(2);
        res.offer(&mut rng, 1);
        res.offer(&mut rng, 2);
        res.reset();
        assert_eq!(res.seen(), 0);
        assert!(res.items().is_empty());
    }
}
