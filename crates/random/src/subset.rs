//! Uniform random subsets of the universe `[n]`.
//!
//! The truly perfect `F_0` sampler (Algorithm 5 of the paper) draws a uniform
//! random subset `S ⊆ [n]` of size `2√n` *before* seeing the stream and later
//! outputs a uniform element of `S` that actually occurred. Correctness
//! requires `S` to be exactly uniform over size-`|S|` subsets, which is what
//! [`random_subset`] provides (Floyd's algorithm).

use crate::StreamRng;
use std::collections::HashSet;

/// Draws a uniformly random subset of `{0, 1, ..., n-1}` of exactly `k`
/// elements using Robert Floyd's algorithm (O(k) expected work, no
/// rejection over the full universe).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn random_subset<R: StreamRng>(rng: &mut R, n: u64, k: usize) -> HashSet<u64> {
    assert!((k as u64) <= n, "subset size {k} exceeds universe size {n}");
    let mut chosen: HashSet<u64> = HashSet::with_capacity(k);
    // Floyd: for j = n-k .. n-1, pick t uniform in [0, j]; insert t unless
    // already present, in which case insert j.
    let start = n - k as u64;
    for j in start..n {
        let t = rng.gen_range(j + 1);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen
}

/// Samples `k` distinct values from `{0, ..., n-1}` and returns them in a
/// uniformly random order (a random `k`-permutation prefix).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement<R: StreamRng>(rng: &mut R, n: u64, k: usize) -> Vec<u64> {
    assert!((k as u64) <= n, "sample size {k} exceeds universe size {n}");
    let mut out: Vec<u64> = random_subset(rng, n, k).into_iter().collect();
    // Fisher-Yates shuffle for a uniform ordering.
    for i in (1..out.len()).rev() {
        let j = rng.gen_index(i + 1);
        out.swap(i, j);
    }
    out
}

/// Shuffles a slice in place with the Fisher–Yates algorithm.
///
/// Used by the random-order stream generators: a random-order stream is an
/// adversarially chosen frequency vector whose updates arrive in a uniformly
/// random permutation.
pub fn shuffle<T, R: StreamRng>(rng: &mut R, values: &mut [T]) {
    for i in (1..values.len()).rev() {
        let j = rng.gen_index(i + 1);
        values.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_rng;

    #[test]
    fn subset_has_exact_size_and_range() {
        let mut rng = default_rng(31);
        let s = random_subset(&mut rng, 1000, 100);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&x| x < 1000));
    }

    #[test]
    fn subset_full_universe() {
        let mut rng = default_rng(32);
        let s = random_subset(&mut rng, 10, 10);
        assert_eq!(s.len(), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds universe")]
    fn oversized_subset_panics() {
        let mut rng = default_rng(33);
        let _ = random_subset(&mut rng, 5, 6);
    }

    #[test]
    fn subset_membership_is_uniform() {
        let mut rng = default_rng(34);
        let n = 50u64;
        let k = 10usize;
        let trials = 30_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..trials {
            for x in random_subset(&mut rng, n, k) {
                counts[x as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!((0.9..1.1).contains(&ratio), "element {i} ratio {ratio}");
        }
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = default_rng(35);
        let v = sample_without_replacement(&mut rng, 100, 40);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = default_rng(36);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "shuffle should permute");
    }

    #[test]
    fn shuffle_first_position_is_uniform() {
        let mut rng = default_rng(37);
        let trials = 40_000;
        let mut counts = [0u64; 5];
        for _ in 0..trials {
            let mut v = [0u8, 1, 2, 3, 4];
            shuffle(&mut rng, &mut v);
            counts[v[0] as usize] += 1;
        }
        let expected = trials as f64 / 5.0;
        for &c in &counts {
            assert!((c as f64 / expected - 1.0).abs() < 0.1);
        }
    }
}
