//! # tps-random
//!
//! Randomness substrate for the `truly-perfect-samplers` workspace.
//!
//! The truly perfect samplers of Jayaram, Woodruff and Zhou (PODS 2022) are
//! *sampling based* rather than sketching based, and their correctness rests
//! on a small number of randomness primitives:
//!
//! * uniform reservoir sampling over a stream of unknown length
//!   ([`reservoir`]),
//! * uniform random subsets of the universe `[n]` (used by the `F_0`
//!   sampler, [`subset`]),
//! * exponential and `p`-stable random variables (used only by the
//!   *baseline* perfect-but-not-truly-perfect samplers reproduced from prior
//!   work, [`exponential`] and [`stable`]),
//! * cheap hash families standing in for the random oracle in comparator
//!   algorithms ([`hashing`]).
//!
//! All generators are deterministic given a seed so that every experiment in
//! the benchmark harness is reproducible.
//!
//! The crate deliberately exposes its own small [`StreamRng`] trait rather
//! than requiring a specific external RNG everywhere, and carries no
//! external dependencies; `rand` interop can be layered on by implementing
//! `RngCore` in terms of [`StreamRng::next_u64`] and
//! [`Xoshiro256::fill_bytes`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exponential;
pub mod hashing;
pub mod reservoir;
pub mod splitmix;
pub mod stable;
pub mod subset;
pub mod xoshiro;

pub use exponential::{exponential, exponential_with_rate, AntiRanks};
pub use hashing::{KWiseHash, MultiplyShiftHash, TabulationHash, MERSENNE_61};
pub use reservoir::{ReservoirItem, ReservoirSampler, SkipReservoirSampler, WeightedReservoir};
pub use splitmix::SplitMix64;
pub use subset::{random_subset, sample_without_replacement};
pub use xoshiro::Xoshiro256;

/// A minimal random number generator interface used throughout the
/// workspace.
///
/// The trait is intentionally tiny: every algorithm in the paper consumes
/// uniform 64-bit words, uniform reals in `[0, 1)`, bounded integers or
/// Bernoulli trials, and nothing else.
pub trait StreamRng {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform double in the half-open interval `[0, 1)`.
    ///
    /// Uses the upper 53 bits of [`StreamRng::next_u64`], which yields every
    /// representable multiple of 2^-53 with equal probability.
    fn next_f64(&mut self) -> f64 {
        // 2^-53
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's nearly-divisionless unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }
}

/// Creates the workspace's default RNG ([`Xoshiro256`]) from a 64-bit seed.
///
/// The seed is expanded through [`SplitMix64`] as recommended by the
/// xoshiro authors, so that low-entropy seeds (0, 1, 2, ...) still produce
/// well-mixed states.
pub fn default_rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = default_rng(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn gen_range_is_within_bound_and_roughly_uniform() {
        let mut rng = default_rng(13);
        let bound = 10u64;
        let mut counts = [0u64; 10];
        let trials = 100_000;
        for _ in 0..trials {
            let v = rng.gen_range(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        let expected = trials as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!(
                (0.9..1.1).contains(&ratio),
                "bucket {i} count {c} deviates from uniform"
            );
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = default_rng(1);
        assert!(rng.gen_bool(1.0));
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(0.0));
        assert!(!rng.gen_bool(-0.5));
    }

    #[test]
    fn gen_bool_probability_is_respected() {
        let mut rng = default_rng(99);
        let trials = 200_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.01, "empirical frequency {frac}");
    }

    #[test]
    fn default_rng_is_deterministic() {
        let mut a = default_rng(42);
        let mut b = default_rng(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = default_rng(42);
        let mut b = default_rng(43);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
