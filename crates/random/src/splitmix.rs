//! SplitMix64: a tiny, fast, well-mixed 64-bit generator.
//!
//! SplitMix64 is used in two roles in this workspace:
//!
//! 1. seeding the main [`crate::Xoshiro256`] generator (its authors recommend
//!    expanding a user seed through SplitMix64 so that nearby seeds produce
//!    unrelated states), and
//! 2. as a *stateless* mixing function for per-index randomness: several of
//!    the baseline samplers need "the exponential variable attached to
//!    coordinate `i`" to be recomputable on demand without storing it, which
//!    is exactly a hash of `(seed, i)` through the SplitMix64 finalizer.

use crate::StreamRng;

/// The SplitMix64 generator of Steele, Lea and Flood.
///
/// A single 64-bit counter advanced by the golden-ratio increment and passed
/// through a two-round xor-shift-multiply finalizer. Passes BigCrush when
/// used as a 64-bit generator; here we only rely on it being a good mixer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment used by SplitMix64.
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator with the given initial state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Applies the SplitMix64 output function to a single word.
    ///
    /// This is a bijective mixing function; it is used to derive pseudo-random
    /// values for a coordinate index deterministically from a seed.
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(Self::GOLDEN);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministically derives the `index`-th word of the pseudo-random
    /// sequence identified by `seed`, without materialising the sequence.
    ///
    /// Used for "lazy" per-coordinate randomness (e.g. the exponential scaling
    /// variables of the baseline perfect sampler must be consistent every time
    /// coordinate `i` is updated).
    #[inline]
    pub fn mix_pair(seed: u64, index: u64) -> u64 {
        // Two rounds of mixing with distinct odd constants decorrelate the
        // two arguments sufficiently for our purposes (this is the standard
        // "hash the pair" construction, not a cryptographic PRF).
        let a = Self::mix(seed ^ 0x8000_0000_0000_0000 ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        Self::mix(a ^ index ^ seed.rotate_left(32))
    }
}

impl StreamRng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GOLDEN);
        let z = self.state;
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the public-domain reference
        // implementation by Sebastiano Vigna.
        let mut rng = SplitMix64::new(0);
        let expected = [
            0xE220_A839_7B1D_CDAF_u64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn mix_is_deterministic_and_spread() {
        let a = SplitMix64::mix_pair(1, 1);
        let b = SplitMix64::mix_pair(1, 2);
        let c = SplitMix64::mix_pair(2, 1);
        assert_eq!(a, SplitMix64::mix_pair(1, 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn mix_pair_has_no_obvious_collisions() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for seed in 0..64u64 {
            for idx in 0..256u64 {
                seen.insert(SplitMix64::mix_pair(seed, idx));
            }
        }
        assert_eq!(seen.len(), 64 * 256);
    }
}
