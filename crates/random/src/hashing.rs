//! Hash families used as randomness substrates.
//!
//! Three families are provided:
//!
//! * [`MultiplyShiftHash`] — 2-universal multiply-shift hashing, the cheapest
//!   option, used to place sampled items into the shared offsets table that
//!   gives the framework its `O(1)` expected update time (Theorem 3.1).
//! * [`KWiseHash`] — `k`-wise independent polynomial hashing over the
//!   Mersenne prime `2^61 - 1`, used by the CountMin / CountSketch / AMS
//!   substrates which need limited-independence guarantees.
//! * [`TabulationHash`] — simple tabulation hashing, used where a "random
//!   oracle like" hash with strong empirical behaviour is wanted (e.g. the
//!   random-oracle `F_0` sampler of Remark 5.1, which we reproduce only as a
//!   comparator).

use crate::{StreamRng, Xoshiro256};

/// The Mersenne prime 2^61 - 1 used as the field for polynomial hashing.
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// Reduces a 128-bit product modulo the Mersenne prime 2^61 - 1.
#[inline]
fn mod_mersenne61(x: u128) -> u64 {
    // x = hi * 2^61 + lo  ≡  hi + lo (mod 2^61 - 1)
    let lo = (x as u64) & MERSENNE_61;
    let hi = (x >> 61) as u64;
    let mut r = lo + hi;
    if r >= MERSENNE_61 {
        r -= MERSENNE_61;
    }
    r
}

/// A 2-universal multiply-shift hash function mapping `u64` keys to
/// `[0, 2^out_bits)`.
///
/// Uses the Dietzfelbinger et al. scheme: `h(x) = ((a * x + b) >> (64 -
/// out_bits))` with odd `a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplyShiftHash {
    a: u64,
    b: u64,
    out_bits: u32,
}

impl MultiplyShiftHash {
    /// Draws a fresh function with `out_bits` output bits (`1..=64`).
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is zero or larger than 64.
    pub fn new<R: StreamRng>(rng: &mut R, out_bits: u32) -> Self {
        assert!((1..=64).contains(&out_bits), "out_bits must be in 1..=64");
        Self {
            a: rng.next_u64() | 1,
            b: rng.next_u64(),
            out_bits,
        }
    }

    /// Number of output bits.
    pub fn out_bits(&self) -> u32 {
        self.out_bits
    }

    /// Hashes a key into `[0, 2^out_bits)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let v = self.a.wrapping_mul(key).wrapping_add(self.b);
        if self.out_bits == 64 {
            v
        } else {
            v >> (64 - self.out_bits)
        }
    }

    /// Hashes a key into `[0, buckets)` (for arbitrary, not necessarily
    /// power-of-two, bucket counts).
    #[inline]
    pub fn bucket(&self, key: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        // Map the out_bits-bit hash to [0, buckets) with the multiply-shift
        // trick (unbiased enough for bucket placement).
        let h = self.hash(key);
        let width = if self.out_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.out_bits) - 1
        };
        ((h as u128 * buckets as u128) / (width as u128 + 1)) as usize
    }
}

/// A `k`-wise independent hash family based on degree-(k-1) polynomials over
/// the field `GF(2^61 - 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    /// Polynomial coefficients, lowest degree first. Length = independence k.
    coefficients: Vec<u64>,
}

impl KWiseHash {
    /// Draws a fresh `k`-wise independent function.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new<R: StreamRng>(rng: &mut R, k: usize) -> Self {
        assert!(k >= 1, "independence k must be at least 1");
        let coefficients = (0..k).map(|_| rng.gen_range(MERSENNE_61)).collect();
        Self { coefficients }
    }

    /// The independence parameter `k` of this function.
    pub fn independence(&self) -> usize {
        self.coefficients.len()
    }

    /// The polynomial coefficients, lowest degree first (the function's
    /// entire state — two instances with equal coefficients are the same
    /// hash function). Exposed for checkpoint/restore code.
    pub fn coefficients(&self) -> &[u64] {
        &self.coefficients
    }

    /// Rebuilds a function from previously captured coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients` is empty or any coefficient is outside the
    /// field `[0, 2^61 - 1)`.
    pub fn from_coefficients(coefficients: Vec<u64>) -> Self {
        assert!(
            !coefficients.is_empty(),
            "independence k must be at least 1"
        );
        assert!(
            coefficients.iter().all(|&c| c < MERSENNE_61),
            "coefficients must lie in the Mersenne field"
        );
        Self { coefficients }
    }

    /// Evaluates the polynomial at `key`, producing a value in
    /// `[0, 2^61 - 1)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let x = key % MERSENNE_61;
        let mut acc: u64 = 0;
        // Horner evaluation, highest degree first.
        for &c in self.coefficients.iter().rev() {
            acc = mod_mersenne61((acc as u128) * (x as u128) + c as u128);
        }
        acc
    }

    /// Hashes into `[0, buckets)`.
    #[inline]
    pub fn bucket(&self, key: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (self.hash(key) % buckets as u64) as usize
    }

    /// Hashes to a uniform sign in `{-1, +1}` (used by CountSketch / AMS).
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.hash(key) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Hashes into the unit interval `[0, 1)` (used by the random-oracle
    /// min-hash `F_0` sampler comparator).
    #[inline]
    pub fn unit(&self, key: u64) -> f64 {
        self.hash(key) as f64 / MERSENNE_61 as f64
    }
}

/// Simple tabulation hashing over 8 byte-indexed tables.
///
/// Tabulation hashing is 3-independent but behaves like a much stronger hash
/// in practice (Patrascu–Thorup); it is the stand-in for the random oracle of
/// Remark 5.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabulationHash {
    tables: Box<[[u64; 256]; 8]>,
}

impl TabulationHash {
    /// Draws a fresh tabulation hash function (8 tables of 256 words, 16 KiB).
    pub fn new<R: StreamRng>(rng: &mut R) -> Self {
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = rng.next_u64();
            }
        }
        Self { tables }
    }

    /// Creates a tabulation hash deterministically from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        Self::new(&mut rng)
    }

    /// Hashes a 64-bit key to a 64-bit value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let bytes = key.to_le_bytes();
        let mut h = 0u64;
        for (i, &b) in bytes.iter().enumerate() {
            h ^= self.tables[i][b as usize];
        }
        h
    }

    /// Hashes a key into the unit interval `[0, 1)`.
    #[inline]
    pub fn unit(&self, key: u64) -> f64 {
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (self.hash(key) >> 11) as f64 * SCALE
    }

    /// Hashes into `[0, buckets)`.
    #[inline]
    pub fn bucket(&self, key: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        ((self.hash(key) as u128 * buckets as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_rng;

    #[test]
    fn mersenne_reduction_matches_naive() {
        for x in [
            0u128,
            1,
            MERSENNE_61 as u128,
            (MERSENNE_61 as u128) * 17 + 5,
            u128::from(u64::MAX) * 3,
        ] {
            assert_eq!(mod_mersenne61(x) as u128, x % MERSENNE_61 as u128);
        }
    }

    #[test]
    fn multiply_shift_buckets_are_balanced() {
        let mut rng = default_rng(3);
        let h = MultiplyShiftHash::new(&mut rng, 32);
        let buckets = 16;
        let mut counts = vec![0usize; buckets];
        for key in 0..16_000u64 {
            counts[h.bucket(key, buckets)] += 1;
        }
        for &c in &counts {
            assert!(c > 500 && c < 1500, "bucket count {c} badly unbalanced");
        }
    }

    #[test]
    fn kwise_is_deterministic_per_instance() {
        let mut rng = default_rng(11);
        let h = KWiseHash::new(&mut rng, 4);
        assert_eq!(h.hash(12345), h.hash(12345));
        assert_eq!(h.independence(), 4);
    }

    #[test]
    fn kwise_signs_are_balanced() {
        let mut rng = default_rng(17);
        let h = KWiseHash::new(&mut rng, 4);
        let sum: i64 = (0..100_000u64).map(|k| h.sign(k)).sum();
        assert!(sum.abs() < 3_000, "sign sum {sum} too biased");
    }

    #[test]
    fn kwise_pairwise_collision_rate_is_small() {
        let mut rng = default_rng(23);
        let h = KWiseHash::new(&mut rng, 2);
        let buckets = 1024;
        let mut collisions = 0usize;
        for a in 0..200u64 {
            for b in (a + 1)..200u64 {
                if h.bucket(a, buckets) == h.bucket(b, buckets) {
                    collisions += 1;
                }
            }
        }
        // Expected collisions ≈ C(200,2)/1024 ≈ 19.4; allow generous slack.
        assert!(collisions < 80, "too many collisions: {collisions}");
    }

    #[test]
    fn tabulation_unit_values_cover_interval() {
        let h = TabulationHash::from_seed(9);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for key in 0..10_000u64 {
            let u = h.unit(key);
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
        }
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn tabulation_is_seed_deterministic() {
        let a = TabulationHash::from_seed(77);
        let b = TabulationHash::from_seed(77);
        let c = TabulationHash::from_seed(78);
        assert_eq!(a.hash(42), b.hash(42));
        assert_ne!(a.hash(42), c.hash(42));
    }
}
