//! Xoshiro256**: the workspace's default general-purpose PRNG.
//!
//! Chosen because it is small (32 bytes of state), very fast (a handful of
//! ALU ops per word, relevant for the `O(1)` update-time experiments where
//! RNG cost must not dominate) and has excellent statistical quality.

use crate::{splitmix::SplitMix64, StreamRng};

/// The xoshiro256** 1.0 generator of Blackman and Vigna.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the all-zero state is a fixed point
    /// of the transition function).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Self { s }
    }

    /// The full 256-bit internal state, exactly as [`Xoshiro256::from_state`]
    /// would accept it. Together they let checkpoint/restore code capture the
    /// generator's *position* in its stream precisely: restoring the state
    /// and continuing produces the same draw sequence as never stopping.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Seeds the generator from a single 64-bit value by expanding it through
    /// [`SplitMix64`], as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output is never all-zero across four consecutive words
        // for any seed, so `from_state` cannot panic here.
        Self::from_state(s)
    }

    /// Equivalent to calling `next_u64` 2^128 times; used to carve
    /// independent streams out of one seed (one per parallel sampler
    /// instance) without allocating fresh entropy.
    pub fn jump(&mut self) -> Self {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_6F2C_B0B1_F3DB,
            0x39AB_DC45_29B1_661C,
        ];
        let snapshot = self.clone();
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &jump_word in &JUMP {
            for b in 0..64 {
                if (jump_word & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
        snapshot
    }

    /// Derives `count` independent generators from this one by repeated
    /// jumping. The parallel sampler instances of the framework each receive
    /// one of these streams.
    pub fn split(&mut self, count: usize) -> Vec<Xoshiro256> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.jump());
        }
        out
    }
}

impl StreamRng for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Xoshiro256 {
    /// Fills a byte slice with uniform random bytes (the `rand::RngCore`
    /// surface, exposed directly so the crate stays dependency-free in
    /// offline builds — implement `RngCore` by delegating here if `rand`
    /// interop is needed).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&StreamRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = StreamRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn reference_vector() {
        // Reference output for the all-ones-ish state used by the rand_xoshiro
        // test-suite convention: state [1, 2, 3, 4].
        let mut rng = Xoshiro256::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
        ];
        for &e in &expected {
            assert_eq!(StreamRng::next_u64(&mut rng), e);
        }
    }

    #[test]
    fn jump_streams_are_disjoint_prefixes() {
        let mut base = Xoshiro256::seed_from_u64(123);
        let streams = base.split(4);
        let mut prefixes: Vec<Vec<u64>> = streams
            .into_iter()
            .map(|mut s| (0..32).map(|_| StreamRng::next_u64(&mut s)).collect())
            .collect();
        prefixes.sort();
        prefixes.dedup();
        assert_eq!(prefixes.len(), 4, "jumped streams should not collide");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
