//! Truly perfect samplers for random-order streams
//! (Appendix C: Theorem 1.6 / Algorithm 9 for `L_2`, and Theorem 1.7 /
//! Algorithm 10 for integer `p > 2`).
//!
//! In the random-order model the multiset of updates is adversarial but
//! their arrival order is a uniformly random permutation. Collisions between
//! nearby stream positions then carry information about the frequency
//! moments:
//!
//! * **`p = 2`** ([`RandomOrderL2Sampler`]): look at disjoint adjacent
//!   pairs. A pair is two occurrences of item `i` with probability
//!   `f_i(f_i−1)/(m(m−1))`; mixing in a `1/m` chance of keeping the first
//!   element unconditionally "corrects" this to exactly `f_i²/m²`
//!   (Lemma C.2). Timestamps are kept so the sampler also works over sliding
//!   windows.
//! * **integer `p > 2`** ([`RandomOrderLpSampler`]): within blocks of
//!   `m^{1−1/(p−1)}` consecutive elements, `q`-fold collisions for
//!   `q = 1..p` are combined with Stirling-number weights so the expected
//!   number of insertions of item `i` is proportional to `f_i^p`
//!   (Lemmas C.5–C.7). Following Theorem 1.7, the implementation maintains
//!   only the per-block frequency counts and simulates the per-level
//!   insertion counts (with a Poisson draw per item and level, an
//!   approximation that is accurate because each individual tuple's
//!   insertion probability is `O(m^{-(p-1)})`).

use std::collections::HashMap;
use tps_random::{StreamRng, Xoshiro256};
use tps_streams::space::vec_bytes;
use tps_streams::{Item, SampleOutcome, SpaceUsage, StreamSampler, Timestamp, WindowSpec};

/// Draws a Poisson random variable with mean `lambda`.
///
/// Knuth's product-of-uniforms method for small means, normal approximation
/// (rounded and clamped at zero) for large means.
fn poisson<R: StreamRng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let threshold = (-lambda).exp();
        let mut count = 0u64;
        let mut product = 1.0;
        loop {
            product *= rng.next_f64().max(f64::MIN_POSITIVE);
            if product <= threshold {
                return count;
            }
            count += 1;
        }
    }
    // Normal approximation with a Box-Muller draw.
    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (lambda + lambda.sqrt() * z).round().max(0.0) as u64
}

/// Stirling numbers of the second kind `S(p, q)` for `q = 0..=p`
/// (Lemma C.5).
fn stirling_row(p: u32) -> Vec<f64> {
    let mut row = vec![0.0f64; p as usize + 1];
    row[0] = 1.0; // S(0,0) = 1
    for n in 1..=p {
        let mut next = vec![0.0f64; p as usize + 1];
        for (k, value) in next.iter_mut().enumerate().take(n as usize + 1).skip(1) {
            *value = k as f64 * row[k] + row[k - 1];
        }
        row = next;
    }
    row
}

/// The falling factorial `(x)_q = x(x−1)⋯(x−q+1)` as a float.
fn falling(x: u64, q: u32) -> f64 {
    let mut acc = 1.0f64;
    for step in 0..q as u64 {
        if x <= step {
            return 0.0;
        }
        acc *= (x - step) as f64;
    }
    acc
}

/// The truly perfect `L_2` sampler for random-order streams and sliding
/// windows (Algorithm 9 / Theorem 1.6).
#[derive(Debug)]
pub struct RandomOrderL2Sampler {
    window: WindowSpec,
    time: Timestamp,
    /// First element of the current (not yet complete) pair.
    pending: Option<(Item, Timestamp)>,
    /// Sampled (item, timestamp) pairs, capped at `capacity`.
    samples: Vec<(Item, Timestamp)>,
    capacity: usize,
    rng: Xoshiro256,
}

impl RandomOrderL2Sampler {
    /// Creates the sampler for windows of `window` updates. For a plain
    /// (non-windowed) random-order stream pass the stream length as the
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: u64, seed: u64) -> Self {
        let capacity = (4.0 * (window.max(2) as f64).ln()).ceil() as usize + 16;
        Self {
            window: WindowSpec::new(window),
            time: 0,
            pending: None,
            samples: Vec::new(),
            capacity,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Number of currently held (unexpired) samples.
    pub fn held_samples(&self) -> usize {
        self.samples.len()
    }

    fn expire(&mut self) {
        let window = self.window;
        let time = self.time;
        self.samples.retain(|&(_, ts)| window.is_active(ts, time));
    }
}

impl StreamSampler for RandomOrderL2Sampler {
    fn update(&mut self, item: Item) {
        self.time += 1;
        match self.pending.take() {
            None => {
                self.pending = Some((item, self.time));
            }
            Some((first, first_ts)) => {
                // Correction step of Lemma C.2: keep the first element with
                // probability 1/W; otherwise keep it only on a collision.
                let keep = if self.rng.gen_bool(1.0 / self.window.width as f64) {
                    true
                } else {
                    first == item
                };
                if keep {
                    self.samples.push((first, first_ts));
                }
            }
        }
        self.expire();
        if self.samples.len() > 2 * self.capacity {
            // Drop a uniformly random half to respect the space budget.
            while self.samples.len() > self.capacity {
                let idx = self.rng.gen_index(self.samples.len());
                self.samples.swap_remove(idx);
            }
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.time == 0 {
            return SampleOutcome::Empty;
        }
        if self.samples.is_empty() {
            return SampleOutcome::Fail;
        }
        let idx = self.rng.gen_index(self.samples.len());
        SampleOutcome::Index(self.samples[idx].0)
    }
}

impl SpaceUsage for RandomOrderL2Sampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + vec_bytes(&self.samples)
    }
}

/// The truly perfect `L_p` sampler for integer `p > 2` on random-order
/// insertion-only streams (Algorithm 10 / Theorem 1.7), in the
/// frequency-per-block formulation with simulated collision counts.
#[derive(Debug)]
pub struct RandomOrderLpSampler {
    p: u32,
    /// Anticipated stream length `m` (the paper's `W`): needed for the level
    /// weights. The sampler remains correct for other lengths; only its
    /// success probability degrades.
    stream_length: u64,
    block_size: u64,
    stirling: Vec<f64>,
    /// Frequencies within the current (incomplete) block.
    block_counts: HashMap<Item, u64>,
    in_block: u64,
    samples: Vec<Item>,
    capacity: usize,
    time: Timestamp,
    rng: Xoshiro256,
}

impl RandomOrderLpSampler {
    /// Creates the sampler for integer `p ≥ 3` on a random-order stream of
    /// (roughly) `stream_length` updates.
    ///
    /// # Panics
    ///
    /// Panics unless `p ≥ 3` and `stream_length ≥ 2`.
    pub fn new(p: u32, stream_length: u64, seed: u64) -> Self {
        assert!(p >= 3, "use RandomOrderL2Sampler for p = 2");
        assert!(stream_length >= 2, "stream length must be at least 2");
        let exponent = 1.0 - 1.0 / (p as f64 - 1.0);
        let block_size = (stream_length as f64).powf(exponent).ceil().max(p as f64) as u64;
        let capacity = (2.0 * (block_size as f64)).ceil() as usize + 16;
        Self {
            p,
            stream_length,
            block_size,
            stirling: stirling_row(p),
            block_counts: HashMap::new(),
            in_block: 0,
            samples: Vec::new(),
            capacity,
            time: 0,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// The block size `m^{1−1/(p−1)}` used by the sampler.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Processes a completed block: simulate the level-weighted collision
    /// insertions of Algorithm 10 from the block's frequency counts.
    fn flush_block(&mut self) {
        let m = self.stream_length as f64;
        let b = self.block_size;
        for (&item, &count) in &self.block_counts {
            // λ = (B/m²) · Σ_q S(p,q) · (g_j)_q · (m)_q / (B)_q, whose
            // expectation over the random order is (B/m²)·f_j^p; summed over
            // the m/B blocks this is f_j^p/m, matching Lemma C.7.
            let mut weighted = 0.0;
            for q in 1..=self.p {
                let numerator = falling(self.stream_length, q);
                let denominator = falling(b, q);
                if denominator == 0.0 {
                    continue;
                }
                weighted += self.stirling[q as usize] * falling(count, q) * numerator / denominator;
            }
            let lambda = (b as f64 / (m * m)) * weighted;
            let insertions = poisson(&mut self.rng, lambda.min(4.0 * self.capacity as f64));
            for _ in 0..insertions {
                self.samples.push(item);
            }
        }
        self.block_counts.clear();
        self.in_block = 0;
        if self.samples.len() > 2 * self.capacity {
            while self.samples.len() > self.capacity {
                let idx = self.rng.gen_index(self.samples.len());
                self.samples.swap_remove(idx);
            }
        }
    }
}

impl StreamSampler for RandomOrderLpSampler {
    fn update(&mut self, item: Item) {
        self.time += 1;
        *self.block_counts.entry(item).or_insert(0) += 1;
        self.in_block += 1;
        if self.in_block == self.block_size {
            self.flush_block();
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.time == 0 {
            return SampleOutcome::Empty;
        }
        if self.in_block > 0 {
            self.flush_block();
        }
        if self.samples.is_empty() {
            return SampleOutcome::Fail;
        }
        let idx = self.rng.gen_index(self.samples.len());
        SampleOutcome::Index(self.samples[idx])
    }
}

impl SpaceUsage for RandomOrderLpSampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + vec_bytes(&self.samples)
            + tps_streams::space::hashmap_bytes(&self.block_counts)
            + self.stirling.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::default_rng;
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::generators::random_order_stream;
    use tps_streams::stats::SampleHistogram;

    #[test]
    fn stirling_numbers_are_correct() {
        // S(3, ·) = [0, 1, 3, 1]; S(4, ·) = [0, 1, 7, 6, 1].
        assert_eq!(stirling_row(3), vec![0.0, 1.0, 3.0, 1.0]);
        assert_eq!(stirling_row(4), vec![0.0, 1.0, 7.0, 6.0, 1.0]);
    }

    #[test]
    fn stirling_identity_reconstructs_powers() {
        // Σ_q S(p,q)·(x)_q = x^p (Lemma C.5).
        for p in [3u32, 4, 5] {
            let row = stirling_row(p);
            for x in 0..12u64 {
                let sum: f64 = (0..=p).map(|q| row[q as usize] * falling(x, q)).sum();
                assert!(
                    (sum - (x as f64).powi(p as i32)).abs() < 1e-6,
                    "p={p}, x={x}"
                );
            }
        }
    }

    #[test]
    fn falling_factorial_edge_cases() {
        assert_eq!(falling(5, 0), 1.0);
        assert_eq!(falling(5, 3), 60.0);
        assert_eq!(falling(2, 3), 0.0);
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = default_rng(1);
        for &lambda in &[0.5f64, 5.0, 80.0] {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean / lambda - 1.0).abs() < 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn l2_random_order_distribution() {
        let counts = [(1u64, 60u64), (2, 30), (3, 10)];
        let m: u64 = counts.iter().map(|&(_, c)| c).sum();
        let target =
            FrequencyVector::from_counts(&[(1, 60), (2, 30), (3, 10)]).lp_distribution(2.0);
        let mut order_rng = default_rng(77);
        let mut histogram = SampleHistogram::new();
        for seed in 0..6_000u64 {
            let stream = random_order_stream(&mut order_rng, &counts);
            let mut s = RandomOrderL2Sampler::new(m, 60_000 + seed);
            s.update_all(&stream);
            histogram.record(s.sample());
        }
        assert!(
            histogram.fail_rate() < 1.0 / 3.0 + 0.05,
            "fail rate {}",
            histogram.fail_rate()
        );
        let tv = histogram.tv_distance(&target);
        assert!(tv < 0.08, "TV {tv}");
    }

    #[test]
    fn l2_sampler_space_is_logarithmic() {
        let mut s = RandomOrderL2Sampler::new(1_000_000, 5);
        let mut rng = default_rng(3);
        for _ in 0..20_000 {
            s.update(rng.gen_range(100));
        }
        assert!(s.held_samples() <= 2 * ((4.0 * (1_000_000f64).ln()) as usize + 16));
        assert!(s.space_bytes() < 16_384);
    }

    #[test]
    fn l3_random_order_distribution() {
        let counts = [(1u64, 40u64), (2, 20), (3, 10)];
        let m: u64 = counts.iter().map(|&(_, c)| c).sum();
        let target =
            FrequencyVector::from_counts(&[(1, 40), (2, 20), (3, 10)]).lp_distribution(3.0);
        let mut order_rng = default_rng(99);
        let mut histogram = SampleHistogram::new();
        for seed in 0..6_000u64 {
            let stream = random_order_stream(&mut order_rng, &counts);
            let mut s = RandomOrderLpSampler::new(3, m, 70_000 + seed);
            s.update_all(&stream);
            histogram.record(s.sample());
        }
        assert!(
            histogram.fail_rate() < 1.0 / 3.0 + 0.05,
            "fail rate {}",
            histogram.fail_rate()
        );
        let tv = histogram.tv_distance(&target);
        assert!(tv < 0.1, "TV {tv}");
    }

    #[test]
    fn empty_stream_reports_empty() {
        let mut l2 = RandomOrderL2Sampler::new(10, 1);
        assert_eq!(l2.sample(), SampleOutcome::Empty);
        let mut l3 = RandomOrderLpSampler::new(3, 10, 1);
        assert_eq!(l3.sample(), SampleOutcome::Empty);
    }

    #[test]
    #[should_panic(expected = "use RandomOrderL2Sampler")]
    fn p_two_is_rejected_by_lp_sampler() {
        let _ = RandomOrderLpSampler::new(2, 100, 1);
    }
}
