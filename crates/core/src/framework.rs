//! The truly perfect `G`-sampler framework for insertion-only streams
//! (Framework 1.3, Theorem 3.1, Algorithm 2 of the paper).
//!
//! The construction has three moving parts:
//!
//! 1. **Timestamp-based reservoir sampling.** Each of `k` parallel instances
//!    holds one uniformly random stream position (Algorithm 1) together with
//!    the number `c` of occurrences of the sampled item *after* that
//!    position.
//! 2. **Telescoping rejection.** At query time an instance holding item `s`
//!    with suffix count `c` proposes `s` with probability
//!    `(G(c+1) − G(c)) / ζ`. Summed over the `f_s` possible positions, item
//!    `s` is proposed with probability exactly `G(f_s) / (ζ·m)` — so
//!    conditioned on some instance succeeding, the output distribution is
//!    exactly `G(f_i)/F_G`, with zero relative and zero additive error.
//! 3. **A certain normaliser `ζ`.** The rejection step is only valid if
//!    `ζ ≥ G(c+1) − G(c)` with certainty; any *randomised* bound that can
//!    fail would re-introduce additive error. The [`RejectionNormalizer`]
//!    trait abstracts how `ζ` is obtained (a closed-form bound for bounded-
//!    increment measures, a deterministic Misra–Gries bound for `L_p`,
//!    `p > 1`).
//!
//! The reservoir machinery itself — skip-ahead replacement scheduling, the
//! shared suffix-count table giving `O(1)` expected update time, and the
//! amortised batched-update path — lives in the shared
//! [`SkipAheadEngine`](crate::engine::SkipAheadEngine) (one engine per
//! sampler here; one per cohort in [`crate::sliding`]). This module is the
//! adapter that adds the `G`-function plumbing: the rejection normaliser is
//! driven alongside the engine's ingestion, and the query path runs the
//! engine's first-success scan with the telescoping acceptance probability
//! `(G(c+1) − G(c)) / ζ`.

use crate::engine::SkipAheadEngine;
use tps_random::StreamRng;
use tps_sketches::MisraGries;
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::{Item, MeasureFn, MergeableSampler, SampleOutcome, SpaceUsage, StreamSampler};

pub use crate::engine::skip_ahead_replacement;

/// A source of the rejection normaliser `ζ`.
///
/// Implementations must guarantee — with certainty, not merely with high
/// probability — that `ζ ≥ G(x) − G(x−1)` for every frequency `x` that can
/// occur in the stream processed so far.
pub trait RejectionNormalizer {
    /// Observes one stream update (so deterministic summaries can be
    /// maintained).
    fn observe(&mut self, item: Item);

    /// Observes a run of `count` consecutive occurrences of `item`.
    ///
    /// The batch engine run-length-compresses each drained chunk once and
    /// drives the normaliser and the shared suffix-count table from the
    /// same runs; overrides must be exactly equivalent to `count` sequential
    /// [`RejectionNormalizer::observe`] calls.
    fn observe_run(&mut self, item: Item, count: u64) {
        for _ in 0..count {
            self.observe(item);
        }
    }

    /// The current certain bound `ζ` given that `processed` updates have
    /// been seen.
    fn zeta(&self, processed: u64) -> f64;

    /// Merges two normalisers into one whose `ζ` is a certain bound for the
    /// concatenation of the two observed streams (this is what makes
    /// [`TrulyPerfectGSampler`] a
    /// [`MergeableSampler`](tps_streams::MergeableSampler)). Certainty must
    /// be preserved: the merged bound may be looser, never invalid.
    fn merge(self, other: Self) -> Self
    where
        Self: Sized;

    /// Whether [`RejectionNormalizer::merge`] accepts these two instances
    /// (the non-panicking pre-check restored-from-snapshot state is run
    /// through; must be `false` whenever `merge` would panic). Required —
    /// not defaulted — for the same reason as
    /// [`tps_streams::MergeableSampler::merge_compatible`]: a new
    /// normaliser must opt in to the decode-time guard explicitly.
    fn merge_compatible(&self, other: &Self) -> bool;

    /// Memory used by the normaliser.
    fn normalizer_space_bytes(&self) -> usize;
}

/// The closed-form normaliser: `ζ = G.increment_bound(m)` where `m` is the
/// stream length so far.
///
/// Appropriate for measures whose increments are bounded by a constant
/// independent of the frequencies (all the M-estimators of Corollary 3.6 and
/// `L_p` with `p ≤ 1`).
#[derive(Debug, Clone)]
pub struct MeasureNormalizer<G: MeasureFn> {
    g: G,
}

impl<G: MeasureFn> MeasureNormalizer<G> {
    /// Creates the normaliser for a measure.
    pub fn new(g: G) -> Self {
        Self { g }
    }

    /// The measure whose increment bound this normaliser certifies (used
    /// by decode-time configuration cross-checks).
    pub fn measure(&self) -> &G {
        &self.g
    }
}

impl<G: MeasureFn> RejectionNormalizer for MeasureNormalizer<G> {
    fn observe(&mut self, _item: Item) {}

    fn observe_run(&mut self, _item: Item, _count: u64) {}

    fn zeta(&self, processed: u64) -> f64 {
        self.g.increment_bound(processed.max(1))
    }

    /// Stateless: the closed-form bound depends only on the total processed
    /// count, which the engine already sums at merge time.
    fn merge(self, _other: Self) -> Self {
        self
    }

    /// Stateless beyond its measure, which the owning sampler compares
    /// (`G: PartialEq`) — the normaliser itself is always mergeable.
    fn merge_compatible(&self, _other: &Self) -> bool {
        true
    }

    fn normalizer_space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Wire format: the measure only (the closed-form normaliser is stateless
/// beyond its `G`).
impl<G: MeasureFn + Snapshot> Snapshot for MeasureNormalizer<G> {
    const TAG: u16 = codec::tag::MEASURE_NORMALIZER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        self.g.encode_into(w);
    }
}

impl<G: MeasureFn + Restore> Restore for MeasureNormalizer<G> {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        Ok(Self {
            g: G::decode_from(r)?,
        })
    }
}

/// The deterministic Misra–Gries normaliser used by the `L_p` samplers for
/// `p ∈ (1, 2]` (Theorem 3.4): `ζ = p·Z^{p−1}` where
/// `‖f‖_∞ ≤ Z ≤ ‖f‖_∞ + m/(capacity+1)` is certain.
#[derive(Debug, Clone)]
pub struct MisraGriesNormalizer {
    p: f64,
    summary: MisraGries,
}

impl MisraGriesNormalizer {
    /// Creates the normaliser with the given exponent and counter budget.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [1, 2]`.
    pub fn new(p: f64, counters: usize) -> Self {
        assert!(
            (1.0..=2.0).contains(&p),
            "Misra-Gries normaliser requires p in [1,2]"
        );
        Self {
            p,
            summary: MisraGries::new(counters.max(1)),
        }
    }

    /// The current certain upper bound `Z ≥ ‖f‖_∞`.
    pub fn max_frequency_bound(&self) -> u64 {
        self.summary.max_frequency_upper_bound()
    }

    /// The exponent `p` this normaliser certifies bounds for.
    pub fn exponent(&self) -> f64 {
        self.p
    }
}

impl RejectionNormalizer for MisraGriesNormalizer {
    fn observe(&mut self, item: Item) {
        self.summary.update(item);
    }

    fn observe_run(&mut self, item: Item, count: u64) {
        self.summary.update_run(item, count);
    }

    fn zeta(&self, _processed: u64) -> f64 {
        let z = self.max_frequency_bound().max(1) as f64;
        self.p * z.powf(self.p - 1.0)
    }

    /// Misra–Gries summaries merge with additive error bounds
    /// ([`MisraGries::merge`]), so the merged `Z` stays a certain upper
    /// bound on `‖f‖_∞` of the concatenated stream.
    fn merge(self, other: Self) -> Self {
        assert!(
            (self.p - other.p).abs() < 1e-12,
            "merging Misra-Gries normalisers requires equal exponents"
        );
        Self {
            p: self.p,
            summary: tps_streams::MergeableSummary::merge(self.summary, other.summary),
        }
    }

    fn merge_compatible(&self, other: &Self) -> bool {
        (self.p - other.p).abs() < 1e-12 && self.summary.capacity() == other.summary.capacity()
    }

    fn normalizer_space_bytes(&self) -> usize {
        self.summary.space_bytes()
    }
}

/// Wire format: the exponent `p` and the Misra–Gries summary.
impl Snapshot for MisraGriesNormalizer {
    const TAG: u16 = codec::tag::MISRA_GRIES_NORMALIZER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.p);
        self.summary.encode_into(w);
    }
}

impl Restore for MisraGriesNormalizer {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let p = r.get_f64()?;
        if !(1.0..=2.0).contains(&p) {
            return Err(CodecError::InvalidValue {
                what: "Misra-Gries normaliser exponent outside [1, 2]",
            });
        }
        Ok(Self {
            p,
            summary: MisraGries::decode_from(r)?,
        })
    }
}

/// The generic truly perfect `G`-sampler for insertion-only streams: the
/// shared skip-ahead reservoir engine plus a measure `G` and its rejection
/// normaliser.
#[derive(Debug, Clone)]
pub struct TrulyPerfectGSampler<G: MeasureFn, N: RejectionNormalizer> {
    g: G,
    normalizer: N,
    engine: SkipAheadEngine,
}

impl<G: MeasureFn, N: RejectionNormalizer> TrulyPerfectGSampler<G, N> {
    /// Creates a sampler with an explicit number of parallel instances.
    ///
    /// # Panics
    ///
    /// Panics if `instances == 0`.
    pub fn with_instances(g: G, normalizer: N, instances: usize, seed: u64) -> Self {
        Self {
            g,
            normalizer,
            engine: SkipAheadEngine::with_seed(instances, seed),
        }
    }

    /// Number of parallel instances.
    pub fn instance_count(&self) -> usize {
        self.engine.slot_count()
    }

    /// Number of updates processed.
    pub fn processed(&self) -> u64 {
        self.engine.seen()
    }

    /// The measure function being sampled.
    pub fn measure(&self) -> &G {
        &self.g
    }

    /// Read access to the normaliser (used by the ablation experiments).
    pub fn normalizer(&self) -> &N {
        &self.normalizer
    }

    /// The number of distinct items currently tracked by the shared
    /// suffix-count table (a space diagnostic).
    pub fn tracked_items(&self) -> usize {
        self.engine.tracked_items()
    }

    /// One proposal round over all instances; returns the first acceptance.
    ///
    /// Rejection coins are drawn from the engine's RNG, continuing the
    /// update path's draw sequence (first-success aggregation; instances
    /// are i.i.d., so conditioning on which one succeeds does not change
    /// the conditional output distribution).
    fn propose(&mut self) -> SampleOutcome {
        if self.engine.seen() == 0 {
            return SampleOutcome::Empty;
        }
        let zeta = self.normalizer.zeta(self.engine.seen());
        // NaN or non-positive ζ means the normaliser cannot certify any
        // rejection probability: fail rather than emit a biased sample.
        if zeta.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return SampleOutcome::Fail;
        }
        let g = &self.g;
        let accepted = self.engine.first_accepted(|_, c| {
            let accept = (g.value(c + 1) - g.value(c)) / zeta;
            debug_assert!(
                accept <= 1.0 + 1e-9,
                "rejection probability {accept} exceeds 1: the normaliser is not a certain bound"
            );
            accept
        });
        match accepted {
            Some(item) => SampleOutcome::Index(item),
            None => SampleOutcome::Fail,
        }
    }
}

/// Distributional mergeability (the sharded scatter-gather contract, see
/// [`tps_streams::merge`]): the engine draws the combined reservoir from
/// the two inputs weighted by admitted counts, and the normalisers merge
/// into a certain bound for the combined stream. Exact for item-disjoint
/// (hash-partitioned) inputs and for constant-increment measures under any
/// partitioning; callers are responsible for merging samplers built over
/// the same measure `G`.
impl<G: MeasureFn, N: RejectionNormalizer> MergeableSampler for TrulyPerfectGSampler<G, N> {
    fn merge(self, other: Self, rng: &mut dyn StreamRng) -> Self {
        assert_eq!(
            self.instance_count(),
            other.instance_count(),
            "merging G-samplers requires equal instance counts"
        );
        Self {
            g: self.g,
            normalizer: self.normalizer.merge(other.normalizer),
            engine: self.engine.merge(other.engine, rng),
        }
    }

    fn merge_compatible(&self, other: &Self) -> bool {
        self.g == other.g
            && self.instance_count() == other.instance_count()
            && self.normalizer.merge_compatible(&other.normalizer)
    }
}

impl<G: MeasureFn, N: RejectionNormalizer> StreamSampler for TrulyPerfectGSampler<G, N> {
    fn update(&mut self, item: Item) {
        self.engine.update(item);
        self.normalizer.observe(item);
    }

    /// The amortised batch path: the engine splits the batch at scheduled
    /// replacement positions and drains the intervening chunks in one fused
    /// run-length pass that drives the shared suffix-count table and the
    /// rejection normaliser together ([`RejectionNormalizer::observe_run`]).
    /// The resulting state — including the RNG position — is bit-identical
    /// to the per-item loop's (the engine's batch ≡ loop law).
    fn update_batch(&mut self, items: &[Item]) {
        let normalizer = &mut self.normalizer;
        self.engine
            .update_batch_with(items, |item, count| normalizer.observe_run(item, count));
    }

    fn sample(&mut self) -> SampleOutcome {
        self.propose()
    }
}

/// Wire format: measure, normaliser, engine — the sampler's complete
/// state, so restore-then-continue (or restore-then-merge on another
/// machine, the sharded scatter-gather contract) is indistinguishable from
/// never having stopped.
impl<G, N> Snapshot for TrulyPerfectGSampler<G, N>
where
    G: MeasureFn + Snapshot,
    N: RejectionNormalizer + Snapshot,
{
    const TAG: u16 = codec::tag::G_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        self.g.encode_into(w);
        self.normalizer.encode_into(w);
        self.engine.encode_into(w);
    }
}

impl<G, N> Restore for TrulyPerfectGSampler<G, N>
where
    G: MeasureFn + Restore,
    N: RejectionNormalizer + Restore,
{
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        Ok(Self {
            g: G::decode_from(r)?,
            normalizer: N::decode_from(r)?,
            engine: SkipAheadEngine::decode_from(r)?,
        })
    }
}

impl<G: MeasureFn, N: RejectionNormalizer> SpaceUsage for TrulyPerfectGSampler<G, N> {
    fn space_bytes(&self) -> usize {
        // `size_of::<Self>` already covers the engine's inline header, which
        // `engine.space_bytes()` counts again; subtract one copy.
        std::mem::size_of::<Self>() - std::mem::size_of::<SkipAheadEngine>()
            + self.engine.space_bytes()
            + self.normalizer.normalizer_space_bytes()
    }
}

/// The number of parallel instances Theorem 3.1 prescribes for a target
/// failure probability `δ`, given a certain lower bound on the per-instance
/// success probability `F̂_G / (ζ·m)` computed from the measure's worst-case
/// bounds at an anticipated stream length.
pub fn recommended_instances<G: MeasureFn>(g: &G, expected_length: u64, delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let m = expected_length.max(1);
    let zeta = g.increment_bound(m).max(f64::MIN_POSITIVE);
    let fg = g.fg_lower_bound(m).max(f64::MIN_POSITIVE);
    let per_instance = (fg / (zeta * m as f64)).clamp(1e-12, 1.0);
    if per_instance >= 1.0 {
        return 1;
    }
    (delta.ln() / (1.0 - per_instance).ln()).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::stats::SampleHistogram;
    use tps_streams::{Huber, Lp, L1L2};

    fn run_distribution_check<G: MeasureFn + 'static>(
        g: G,
        instances: usize,
        stream: &[Item],
        trials: usize,
        tolerance: f64,
        max_fail_rate: f64,
    ) {
        let truth = FrequencyVector::from_stream(stream);
        let target = truth.g_distribution(&g);
        let mut histogram = SampleHistogram::new();
        for seed in 0..trials as u64 {
            let normalizer = MeasureNormalizer::new(g.clone());
            let mut sampler = TrulyPerfectGSampler::with_instances(
                g.clone(),
                normalizer,
                instances,
                1_000 + seed,
            );
            sampler.update_all(stream);
            histogram.record(sampler.sample());
        }
        assert!(
            histogram.fail_rate() <= max_fail_rate,
            "fail rate {} too high",
            histogram.fail_rate()
        );
        let tv = histogram.tv_distance(&target);
        assert!(
            tv < tolerance,
            "TV distance {tv} exceeds tolerance {tolerance}"
        );
    }

    #[test]
    fn l1_sampler_matches_frequency_distribution() {
        let stream: Vec<Item> = [(1u64, 8u64), (2, 4), (3, 2), (4, 1)]
            .iter()
            .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
            .collect();
        run_distribution_check(Lp::new(1.0), 1, &stream, 6_000, 0.03, 0.0);
    }

    #[test]
    fn huber_sampler_matches_g_distribution() {
        let stream: Vec<Item> = [(10u64, 12u64), (20, 6), (30, 3), (40, 1)]
            .iter()
            .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
            .collect();
        run_distribution_check(Huber::new(2.0), 16, &stream, 6_000, 0.04, 0.2);
    }

    #[test]
    fn l1l2_sampler_matches_g_distribution() {
        let stream: Vec<Item> = [(5u64, 10u64), (6, 5), (7, 1)]
            .iter()
            .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
            .collect();
        run_distribution_check(L1L2, 16, &stream, 6_000, 0.04, 0.2);
    }

    #[test]
    fn empty_stream_reports_empty() {
        let g = Lp::new(1.0);
        let mut sampler = TrulyPerfectGSampler::with_instances(g, MeasureNormalizer::new(g), 4, 7);
        assert_eq!(sampler.sample(), SampleOutcome::Empty);
    }

    #[test]
    fn misra_gries_normalizer_bounds_increments() {
        let mut norm = MisraGriesNormalizer::new(2.0, 8);
        let stream: Vec<Item> = (0..2_000u64)
            .map(|i| if i % 3 == 0 { 1 } else { i })
            .collect();
        for &x in &stream {
            norm.observe(x);
        }
        let truth = FrequencyVector::from_stream(&stream);
        let max_f = truth.l_inf();
        let zeta = norm.zeta(stream.len() as u64);
        // Every achievable increment for G(x) = x^2 is at most 2·‖f‖_∞.
        let largest_increment = (max_f as f64).powi(2) - ((max_f - 1) as f64).powi(2);
        assert!(
            zeta >= largest_increment,
            "zeta {zeta} < largest increment {largest_increment}"
        );
        assert!(norm.max_frequency_bound() >= max_f);
    }

    #[test]
    fn shared_table_is_garbage_collected() {
        let g = Lp::new(1.0);
        let mut sampler = TrulyPerfectGSampler::with_instances(g, MeasureNormalizer::new(g), 8, 9);
        for t in 0..20_000u64 {
            sampler.update(t % 97);
        }
        // At most one tracked item per instance once the stream is long.
        assert!(
            sampler.tracked_items() <= 8,
            "tracked {}",
            sampler.tracked_items()
        );
    }

    #[test]
    fn recommended_instances_scale_with_measure() {
        // Constant-increment measures need O(log 1/δ) instances.
        let huber = recommended_instances(&Huber::new(2.0), 100_000, 0.01);
        assert!(huber <= 80, "Huber instance count {huber}");
        // L_p with p = 0.5 needs about m^{1/2} instances.
        let half = recommended_instances(&Lp::new(0.5), 10_000, 0.5);
        assert!((50..=500).contains(&half), "L_0.5 instance count {half}");
        // More stringent delta needs more instances.
        assert!(
            recommended_instances(&Huber::new(2.0), 100_000, 0.001)
                > recommended_instances(&Huber::new(2.0), 100_000, 0.1)
        );
    }

    #[test]
    fn sampler_never_outputs_absent_items() {
        let g = Lp::new(1.0);
        for seed in 0..200 {
            let mut sampler =
                TrulyPerfectGSampler::with_instances(g, MeasureNormalizer::new(g), 2, seed);
            sampler.update_all(&[11, 22, 33]);
            if let SampleOutcome::Index(i) = sampler.sample() {
                assert!([11, 22, 33].contains(&i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one sampler instance")]
    fn zero_instances_panics() {
        let g = Lp::new(1.0);
        let _ = TrulyPerfectGSampler::with_instances(g, MeasureNormalizer::new(g), 0, 1);
    }
}
