//! Algorithm 1 of the paper: `Sampler` — reservoir-sample one stream
//! position and count how many times the sampled item appears afterwards.
//!
//! A single unit uses `O(log n)` bits (the sampled item, its timestamp, and a
//! counter) and is the building block of every sampler in the framework. The
//! framework ([`crate::framework`]) runs many units in parallel and shares
//! the suffix counting across them; this standalone version keeps its own
//! counter and is used directly where only a handful of units are needed
//! (sliding-window cohorts, tests, and the matrix sampler).

use tps_random::StreamRng;
use tps_streams::{Item, SpaceUsage, Timestamp};

/// The state of one Algorithm-1 sampler unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplerUnit {
    /// The currently held sample, with the 1-based position at which it was
    /// admitted.
    sample: Option<(Item, Timestamp)>,
    /// Number of occurrences of the sampled item *after* its admission.
    suffix_count: u64,
    /// Number of stream updates offered so far.
    seen: u64,
}

impl SamplerUnit {
    /// Creates an empty unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of updates offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The held sample `(item, timestamp)`, if any.
    pub fn sample(&self) -> Option<(Item, Timestamp)> {
        self.sample
    }

    /// The number of occurrences of the sampled item after its admission
    /// (the counter `c` of Algorithm 1).
    pub fn suffix_count(&self) -> u64 {
        self.suffix_count
    }

    /// Processes one stream update (one reservoir coin per update).
    pub fn update<R: StreamRng>(&mut self, rng: &mut R, item: Item) {
        self.seen += 1;
        // Reservoir sampling: replace the held sample with probability 1/seen.
        if rng.gen_range(self.seen) == 0 {
            self.sample = Some((item, self.seen));
            self.suffix_count = 0;
            return;
        }
        if let Some((held, _)) = self.sample {
            if held == item {
                self.suffix_count += 1;
            }
        }
    }

    /// Resets the unit to its initial state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl SpaceUsage for SamplerUnit {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::default_rng;

    #[test]
    fn empty_unit_has_no_sample() {
        let unit = SamplerUnit::new();
        assert_eq!(unit.sample(), None);
        assert_eq!(unit.suffix_count(), 0);
        assert_eq!(unit.seen(), 0);
    }

    #[test]
    fn sampled_position_is_uniform() {
        let mut rng = default_rng(1);
        let m = 12u64;
        let trials = 60_000;
        let mut counts = vec![0u64; m as usize];
        for _ in 0..trials {
            let mut unit = SamplerUnit::new();
            for pos in 0..m {
                unit.update(&mut rng, pos);
            }
            let (item, ts) = unit.sample().unwrap();
            assert_eq!(item, ts - 1, "item encodes its own position in this test");
            counts[item as usize] += 1;
        }
        let expected = trials as f64 / m as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 / expected - 1.0).abs() < 0.12,
                "position {i} sampled {c} times"
            );
        }
    }

    #[test]
    fn suffix_count_matches_occurrences_after_sample() {
        // Deterministic check: replay the stream and verify the counter
        // against a brute-force recount for whatever position was sampled.
        let mut rng = default_rng(2);
        let stream = [5u64, 9, 5, 5, 7, 5, 9, 5];
        for _ in 0..200 {
            let mut unit = SamplerUnit::new();
            for &x in &stream {
                unit.update(&mut rng, x);
            }
            let (item, ts) = unit.sample().unwrap();
            let expected = stream[ts as usize..].iter().filter(|&&x| x == item).count() as u64;
            assert_eq!(unit.suffix_count(), expected);
        }
    }

    #[test]
    fn telescoping_identity_gives_lp_distribution() {
        // The heart of the framework: output the sampled item with
        // probability proportional to G(c+1) - G(c). Empirically this must
        // give the |f_i|^p / F_p distribution. Checked here for p = 2 on a
        // tiny stream so the unit itself is validated end-to-end.
        use std::collections::HashMap;
        let stream = [1u64, 1, 1, 1, 2, 2, 3];
        let p = 2.0f64;
        let zeta = 2.0 * (4.0f64).powf(p - 1.0); // 2·‖f‖_∞^{p-1}
        let mut rng = default_rng(3);
        let mut hits: HashMap<u64, u64> = HashMap::new();
        let trials = 200_000;
        for _ in 0..trials {
            let mut unit = SamplerUnit::new();
            for &x in &stream {
                unit.update(&mut rng, x);
            }
            let (item, _) = unit.sample().unwrap();
            let c = unit.suffix_count() as f64;
            let accept = ((c + 1.0).powf(p) - c.powf(p)) / zeta;
            if rng.gen_bool(accept) {
                *hits.entry(item).or_insert(0) += 1;
            }
        }
        let total: u64 = hits.values().sum();
        let fp = 16.0 + 4.0 + 1.0;
        for (item, expected_mass) in [(1u64, 16.0 / fp), (2, 4.0 / fp), (3, 1.0 / fp)] {
            let observed = *hits.get(&item).unwrap_or(&0) as f64 / total as f64;
            assert!(
                (observed - expected_mass).abs() < 0.02,
                "item {item}: observed {observed}, expected {expected_mass}"
            );
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut rng = default_rng(4);
        let mut unit = SamplerUnit::new();
        unit.update(&mut rng, 1);
        unit.reset();
        assert_eq!(unit, SamplerUnit::new());
    }
}
