//! Truly perfect row sampling for matrix norms
//! (Section 3.2.3, Algorithm 3, Theorem 3.7 of the paper).
//!
//! The stream consists of unit updates to entries of an implicit matrix
//! `M ∈ R^{n×d}`; the goal is to output row `r` with probability
//! `G(m_r)/Σ_s G(m_s)` for a row measure `G : R^d → R≥0`. The construction
//! mirrors the vector framework: reservoir-sample one update `(r, c)`,
//! accumulate the vector `v` of *subsequent* updates to row `r`, and accept
//! with probability `(G(v + e_c) − G(v))/ζ`, which telescopes to `G(m_r)`
//! over the updates of the row.
//!
//! Two standard row measures are provided: the row `L_1` norm (giving
//! `L_{1,1}` sampling) and the row `L_2` norm (giving `L_{1,2}` sampling,
//! the primitive used by adaptive-sampling algorithms).

use tps_random::{StreamRng, Xoshiro256};
use tps_streams::{MatrixSampler, MatrixUpdate, SampleOutcome, SpaceUsage};

/// A non-negative measure on matrix rows with coordinate-increment bound `ζ`.
pub trait RowMeasure: Clone + Send + Sync {
    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// `G(v)` for a non-negative integer row vector.
    fn value(&self, row: &[u64]) -> f64;

    /// A certain bound `ζ ≥ G(v + e_c) − G(v)` for every non-negative `v`
    /// and coordinate `c`.
    fn increment_bound(&self) -> f64;
}

/// The row `L_1` norm: `G(v) = Σ_c v_c` (so `F_G` is the `L_{1,1}` norm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowL1;

impl RowMeasure for RowL1 {
    fn name(&self) -> &'static str {
        "L1,1"
    }

    fn value(&self, row: &[u64]) -> f64 {
        row.iter().map(|&v| v as f64).sum()
    }

    fn increment_bound(&self) -> f64 {
        1.0
    }
}

/// The row `L_2` norm: `G(v) = √(Σ_c v_c²)` (so `F_G` is the `L_{1,2}`
/// norm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowL2;

impl RowMeasure for RowL2 {
    fn name(&self) -> &'static str {
        "L1,2"
    }

    fn value(&self, row: &[u64]) -> f64 {
        row.iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    fn increment_bound(&self) -> f64 {
        // ‖v + e_c‖_2 − ‖v‖_2 ≤ ‖e_c‖_2 = 1 by the triangle inequality.
        1.0
    }
}

/// One instance of Algorithm 3: a reservoir-sampled update and the vector of
/// subsequent updates to its row.
#[derive(Debug, Clone)]
struct RowInstance {
    seen: u64,
    sample: Option<(u64, u64)>,
    /// Updates to the sampled row made strictly after the sampled update.
    suffix: Vec<u64>,
}

impl RowInstance {
    fn new(columns: usize) -> Self {
        Self {
            seen: 0,
            sample: None,
            suffix: vec![0; columns],
        }
    }

    fn update<R: StreamRng>(&mut self, rng: &mut R, update: MatrixUpdate) {
        self.seen += 1;
        if rng.gen_range(self.seen) == 0 {
            self.sample = Some((update.row, update.col));
            self.suffix.iter_mut().for_each(|v| *v = 0);
            return;
        }
        if let Some((row, _)) = self.sample {
            if row == update.row {
                self.suffix[update.col as usize] += 1;
            }
        }
    }
}

/// The truly perfect matrix row sampler (Algorithm 3 / Theorem 3.7).
#[derive(Debug)]
pub struct MatrixRowSampler<G: RowMeasure> {
    g: G,
    columns: usize,
    instances: Vec<RowInstance>,
    rng: Xoshiro256,
    processed: u64,
}

impl<G: RowMeasure> MatrixRowSampler<G> {
    /// Creates a sampler for matrices with `columns` columns using
    /// `instances` parallel instances.
    ///
    /// Theorem 3.7 prescribes `O(ζ·d·m/F̂_G · log 1/δ)` instances; for the
    /// row `L_1` norm `O(log 1/δ)` suffices and for the row `L_2` norm
    /// `O(√d · log 1/δ)`.
    ///
    /// # Panics
    ///
    /// Panics if `columns == 0` or `instances == 0`.
    pub fn new(g: G, columns: usize, instances: usize, seed: u64) -> Self {
        assert!(columns > 0, "matrix must have at least one column");
        assert!(instances > 0, "need at least one instance");
        Self {
            g,
            columns,
            instances: (0..instances).map(|_| RowInstance::new(columns)).collect(),
            rng: Xoshiro256::seed_from_u64(seed),
            processed: 0,
        }
    }

    /// Creates an `L_{1,1}` row sampler with failure probability `delta`.
    pub fn l11(columns: usize, delta: f64, seed: u64) -> MatrixRowSampler<RowL1> {
        assert!(delta > 0.0 && delta < 1.0);
        let instances = (1.0f64 / delta).ln().ceil().max(1.0) as usize * 2;
        MatrixRowSampler::new(RowL1, columns, instances, seed)
    }

    /// Creates an `L_{1,2}` row sampler with failure probability `delta`.
    pub fn l12(columns: usize, delta: f64, seed: u64) -> MatrixRowSampler<RowL2> {
        assert!(delta > 0.0 && delta < 1.0);
        let per_instance = 1.0 / (columns as f64).sqrt();
        let instances = (delta.ln() / (1.0 - per_instance).min(1.0 - 1e-9).ln())
            .ceil()
            .max(1.0) as usize;
        MatrixRowSampler::new(RowL2, columns, instances.max(2), seed)
    }

    /// Number of parallel instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of matrix updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

impl<G: RowMeasure> MatrixSampler for MatrixRowSampler<G> {
    fn update(&mut self, update: MatrixUpdate) {
        assert!(
            (update.col as usize) < self.columns,
            "column {} outside declared width {}",
            update.col,
            self.columns
        );
        self.processed += 1;
        for instance in &mut self.instances {
            instance.update(&mut self.rng, update);
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.processed == 0 {
            return SampleOutcome::Empty;
        }
        let zeta = self.g.increment_bound();
        for idx in 0..self.instances.len() {
            let Some((row, col)) = self.instances[idx].sample else {
                continue;
            };
            let with_sample = {
                let mut v = self.instances[idx].suffix.clone();
                v[col as usize] += 1;
                self.g.value(&v)
            };
            let without = self.g.value(&self.instances[idx].suffix);
            let accept = (with_sample - without) / zeta;
            debug_assert!(accept <= 1.0 + 1e-9, "row-measure increment bound violated");
            if self.rng.gen_bool(accept) {
                return SampleOutcome::Index(row);
            }
        }
        SampleOutcome::Fail
    }
}

impl<G: RowMeasure> SpaceUsage for MatrixRowSampler<G> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .instances
                .iter()
                .map(|i| std::mem::size_of::<RowInstance>() + i.suffix.capacity() * 8)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::frequency::MatrixAccumulator;
    use tps_streams::stats::{tv_distance, SampleHistogram};

    /// A small deterministic matrix stream: row r gets updates spread over
    /// the columns with total count `totals[r]`.
    fn matrix_stream(totals: &[u64], columns: u64) -> Vec<MatrixUpdate> {
        let mut out = Vec::new();
        for (r, &total) in totals.iter().enumerate() {
            for k in 0..total {
                out.push(MatrixUpdate::new(r as u64, k % columns));
            }
        }
        out
    }

    fn run_histogram<G: RowMeasure>(
        updates: &[MatrixUpdate],
        build: impl Fn(u64) -> MatrixRowSampler<G>,
        trials: usize,
    ) -> SampleHistogram {
        let mut histogram = SampleHistogram::new();
        for seed in 0..trials as u64 {
            let mut s = build(seed);
            for &u in updates {
                s.update(u);
            }
            histogram.record(s.sample());
        }
        histogram
    }

    #[test]
    fn l11_sampling_matches_row_mass() {
        let updates = matrix_stream(&[8, 4, 2, 1], 3);
        let mut truth = MatrixAccumulator::new();
        for u in &updates {
            truth.insert(u.row, u.col);
        }
        let target = truth.row_distribution(1);
        let histogram = run_histogram(
            &updates,
            |seed| MatrixRowSampler::<RowL1>::l11(3, 0.05, 6_000 + seed),
            6_000,
        );
        assert_eq!(histogram.fails(), 0, "L1,1 acceptance probability is 1");
        assert!(tv_distance(&histogram.empirical_distribution(), &target) < 0.03);
    }

    #[test]
    fn l12_sampling_matches_row_l2_norms() {
        // Row 0: concentrated (high L2 for its mass); row 1: spread out.
        let mut updates = Vec::new();
        for _ in 0..9 {
            updates.push(MatrixUpdate::new(0, 0));
        }
        for c in 0..9u64 {
            updates.push(MatrixUpdate::new(1, c % 4));
        }
        let mut truth = MatrixAccumulator::new();
        for u in &updates {
            truth.insert(u.row, u.col);
        }
        let target = truth.row_distribution(2);
        let histogram = run_histogram(
            &updates,
            |seed| MatrixRowSampler::<RowL2>::l12(4, 0.05, 8_000 + seed),
            6_000,
        );
        assert!(
            histogram.fail_rate() < 0.1,
            "fail rate {}",
            histogram.fail_rate()
        );
        assert!(
            tv_distance(&histogram.empirical_distribution(), &target) < 0.04,
            "tv {}",
            tv_distance(&histogram.empirical_distribution(), &target)
        );
    }

    #[test]
    fn empty_matrix_reports_empty() {
        let mut s = MatrixRowSampler::<RowL1>::l11(4, 0.1, 1);
        assert_eq!(s.sample(), SampleOutcome::Empty);
    }

    #[test]
    fn row_measures_satisfy_their_increment_bounds() {
        let rows = [vec![0u64, 0, 0], vec![5, 0, 2], vec![100, 100, 100]];
        for row in &rows {
            for c in 0..row.len() {
                let mut bumped = row.clone();
                bumped[c] += 1;
                assert!(RowL1.value(&bumped) - RowL1.value(row) <= RowL1.increment_bound() + 1e-12);
                assert!(RowL2.value(&bumped) - RowL2.value(row) <= RowL2.increment_bound() + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside declared width")]
    fn out_of_range_column_panics() {
        let mut s = MatrixRowSampler::<RowL1>::l11(2, 0.1, 1);
        s.update(MatrixUpdate::new(0, 5));
    }
}
