//! Scatter-gather sharding: parallel ingest across `k` sampler shards with
//! query-time merging.
//!
//! The samplers in this workspace are one-pass and oblivious to how the
//! stream is partitioned, so the single-core ingest ceiling is not a system
//! ceiling: [`ShardedSampler`] routes updates across `k` independent shard
//! instances, feeds each shard's amortised batch path through the
//! persistent worker pool of [`crate::runtime`] (one long-lived thread per
//! shard behind a bounded SPSC ring — no per-batch spawn/join), and answers
//! queries from snapshot-isolated cuts merged through the shards'
//! [`MergeableSampler`] implementation.
//!
//! ## Routing and exactness
//!
//! * [`ShardingStrategy::Hash`] (the default) routes every occurrence of an
//!   item to the same shard. Merged suffix counts are then exact, so the
//!   sharded sampler is **distributionally equivalent** to a single
//!   instance over the interleaved stream for *every* measure `G` (and for
//!   the `F_0` sampler, whose shards must share one seed so their pre-drawn
//!   subsets coincide — see `TrulyPerfectF0Sampler`'s merge docs).
//! * [`ShardingStrategy::RoundRobin`] balances load perfectly regardless of
//!   skew but splits an item's occurrences across shards; it is exact for
//!   constant-increment measures (`L_1`, where acceptance ignores suffix
//!   counts) and an approximation otherwise.
//!
//! ## Query semantics (snapshot isolation)
//!
//! While the runtime is live, [`StreamSampler::sample`] no longer clones
//! live shards. It enqueues a snapshot barrier: each worker emits its
//! shard's PR-4 codec snapshot in-band, so the `k` records form a
//! consistent cut (everything ingested before the query, nothing after).
//! The coordinator restores and fold-merges the records off the ingest
//! path; by the pinned restore-then-merge ≡ in-process-merge law the result
//! is byte-identical to the old clone-and-merge, but workers resume
//! ingesting as soon as their (cheap) serialisation is done instead of
//! stalling behind an `O(total state)` merge.
//!
//! On top of that, [`ShardedSampler::query`] is the typed front door over
//! [`ShardedSampler::merged`]: a
//! [`QueryConsistency::Consistent`] request forces the fresh fold-merge
//! above, while [`QueryConsistency::Cached`] reuses the last consistent
//! fold-merge when it is within the caller's staleness bound — no
//! barrier, no merge, no waiting on ingest. Staleness is measured in
//! in-process *epochs* (one per ingest call); cache hits and misses are
//! counted in [`QueryCacheStats`].
//!
//! ## Construction and configuration
//!
//! The front door is [`ShardedSampler::builder`]: shard count, routing
//! strategy, seed, backpressure policy, parallel cutoff and runtime chunk
//! size as named setters, then [`ShardedSamplerBuilder::build`] with the
//! per-shard factory. Backpressure when a shard's ring fills: block the
//! caller, spill chunks to a coordinator-side queue so ingest calls never
//! block, or shed chunks outright ([`Backpressure::Fail`]) — with
//! [`ShardedSampler::runtime_stats`] exposing the blocked/spilled/dropped
//! counters either way.

use std::cell::UnsafeCell;
use std::sync::Mutex;

use crate::runtime::{RuntimeConfig, RuntimeStats, ShardPool};
use tps_random::Xoshiro256;
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::spsc::Backpressure;
use tps_streams::{
    Item, MergeableSampler, QueryConsistency, QueryOptions, QuerySnapshot, SampleOutcome,
    SignedUpdate, SpaceUsage, StreamSampler, StreamUpdate, TurnstileSampler, UpdateSampler,
};

/// How [`ShardedSampler`] routes updates to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardingStrategy {
    /// Route by a fixed hash of the item: all occurrences of an item land
    /// on one shard, making merged suffix counts — and therefore the merged
    /// output distribution — exact for every measure.
    Hash,
    /// Route cyclically: perfect load balance under any skew, exact for
    /// constant-increment measures only.
    RoundRobin,
}

/// The splitmix64 finalizer: the same mixer the workspace's internal maps
/// hash with, used here to assign items to shards.
#[inline]
fn mix(item: Item) -> u64 {
    let mut z = item.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed hash onto `[0, shards)` with Lemire's multiply-shift range
/// reduction — one widening multiply instead of the 64-bit division a `%`
/// would cost per scattered item.
#[inline]
fn route(hash: u64, shards: usize) -> usize {
    (((hash as u128) * (shards as u128)) >> 64) as usize
}

/// The shard index an item lands on under [`ShardingStrategy::Hash`] with
/// `shards` shards — the routing function itself, exposed so *external*
/// partitioners (e.g. a multi-process ingest service splitting one stream
/// across worker processes) route exactly like an in-process
/// [`ShardedSampler`] and the merged answers line up byte for byte.
#[inline]
pub fn hash_route(item: Item, shards: usize) -> usize {
    route(mix(item), shards)
}

/// Salt XORed into the builder seed to derive the query-time merge RNG.
/// Public for the same reason as [`hash_route`]: an external coordinator
/// that restores per-shard snapshots and fold-merges them in shard order
/// with `Xoshiro256::seed_from_u64(seed ^ MERGE_SEED_SALT)` reproduces an
/// in-process [`ShardedSampler`]'s first merged query byte for byte.
pub const MERGE_SEED_SALT: u64 = 0x5AAD_ED00;

/// Batches smaller than this many items *per shard* are scattered and
/// drained on the calling thread while the runtime is not yet live: below
/// it, the routed work is too small to be worth waking `k` workers for.
/// The sequential path is chunking-equivalent to the runtime one (same
/// routing, same per-shard order), so the cutoff is invisible to sampler
/// semantics. Once the first large batch has started the runtime, all
/// subsequent updates flow through it.
const PARALLEL_MIN_PER_SHARD: usize = 4_096;

/// Items staged per shard before a chunk is shipped to the shard's ring.
/// Coarse enough that ring crossings and reply traffic are amortised away,
/// fine enough that a batch pipelines across workers instead of arriving
/// as one monolith per shard.
const RUNTIME_CHUNK: usize = 32 * 1024;

/// Named-setter construction for [`ShardedSampler`] — the front door that
/// replaced the positional-argument constructor.
///
/// Every knob has a sensible default; only the shard count is mandatory:
///
/// ```
/// use tps_core::sharded::{ShardedSamplerBuilder, ShardingStrategy};
/// use tps_core::lp::TrulyPerfectLpSampler;
/// use tps_streams::spsc::Backpressure;
///
/// let sampler = ShardedSamplerBuilder::new(4)
///     .strategy(ShardingStrategy::Hash)
///     .seed(42)
///     .backpressure(Backpressure::Spill)
///     .build(|shard| TrulyPerfectLpSampler::new(2.0, 512, 0.1, 42 ^ ((shard as u64) << 32)));
/// assert_eq!(sampler.shard_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSamplerBuilder {
    shards: usize,
    strategy: ShardingStrategy,
    seed: u64,
    backpressure: Backpressure,
    parallel_cutoff: usize,
    chunk_len: usize,
}

impl ShardedSamplerBuilder {
    /// Starts a builder for `shards` shard instances. Defaults:
    /// [`ShardingStrategy::Hash`], seed `0`, [`Backpressure::Block`],
    /// a 4096-item-per-shard parallel cutoff and 32Ki-item runtime chunks.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards,
            strategy: ShardingStrategy::Hash,
            seed: 0,
            backpressure: Backpressure::Block,
            parallel_cutoff: PARALLEL_MIN_PER_SHARD,
            chunk_len: RUNTIME_CHUNK,
        }
    }

    /// Routing strategy (see [`ShardingStrategy`] for the exactness
    /// trade-off).
    pub fn strategy(mut self, strategy: ShardingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Seed for the query-time merge coins. Shard seeding stays with the
    /// factory passed to [`Self::build`], which decides whether shards draw
    /// independently (reservoirs) or share a seed (`F_0`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// What ingest does when a shard's ring is full: block, spill to a
    /// coordinator-side queue, or shed the chunk ([`Backpressure::Fail`]).
    pub fn backpressure(mut self, policy: Backpressure) -> Self {
        self.backpressure = policy;
        self
    }

    /// Per-shard batch size below which (pre-runtime) batches are scattered
    /// and drained on the calling thread instead of waking the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `items_per_shard == 0`.
    pub fn parallel_cutoff(mut self, items_per_shard: usize) -> Self {
        assert!(items_per_shard > 0, "parallel cutoff must be positive");
        self.parallel_cutoff = items_per_shard;
        self
    }

    /// Items staged per shard before a chunk ships to that shard's ring.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn chunk_len(mut self, items: usize) -> Self {
        assert!(items > 0, "runtime chunk length must be positive");
        self.chunk_len = items;
        self
    }

    /// Builds an insertion-only sampler, creating shard `idx` as
    /// `factory(idx)`. The factory decides seeding: independent seeds for
    /// the reservoir samplers; one shared seed for `F_0` shards (their
    /// merge requires identical pre-drawn subsets).
    pub fn build<S>(self, factory: impl FnMut(usize) -> S) -> ShardedSampler<S>
    where
        S: MergeableSampler + UpdateSampler<Item> + Clone + Send + Snapshot + Restore + 'static,
    {
        self.assemble(factory)
    }

    /// Builds a sharded *turnstile* sampler over shards that consume
    /// [`SignedUpdate`]s — same routing, staging, runtime and fold-merge
    /// plumbing as [`Self::build`], instantiated for the strict-turnstile
    /// update type. The factory must give every shard the same seed when
    /// the shard type's merge law requires identical pre-drawn structure
    /// (as `StrictTurnstileF0Sampler`'s does).
    pub fn build_turnstile<S>(
        self,
        factory: impl FnMut(usize) -> S,
    ) -> ShardedSampler<S, SignedUpdate>
    where
        S: MergeableSampler
            + UpdateSampler<SignedUpdate>
            + Clone
            + Send
            + Snapshot
            + Restore
            + 'static,
    {
        self.assemble(factory)
    }

    /// The update-type-generic constructor both `build` flavours share.
    fn assemble<S, U: StreamUpdate>(
        self,
        mut factory: impl FnMut(usize) -> S,
    ) -> ShardedSampler<S, U> {
        ShardedSampler {
            runtime: None,
            shards: (0..self.shards)
                .map(|idx| UnsafeCell::new(factory(idx)))
                .collect(),
            strategy: self.strategy,
            cursor: 0,
            scratch: Vec::new(),
            rng: Xoshiro256::seed_from_u64(self.seed ^ MERGE_SEED_SALT),
            processed: 0,
            backpressure: self.backpressure,
            parallel_cutoff: self.parallel_cutoff,
            chunk_len: self.chunk_len,
            epoch: 0,
            cache: None,
            cache_stats: QueryCacheStats::default(),
        }
    }
}

/// Hit/miss counters for [`ShardedSampler::query`]'s cached mode —
/// [`RuntimeStats`]-style plain integers, cheap to read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Cached queries answered from the last consistent fold-merge.
    pub hits: u64,
    /// Queries that forced a fresh fold-merge: every consistent request,
    /// plus cached requests whose staleness bound the cache could not
    /// satisfy.
    pub misses: u64,
}

/// The last consistent fold-merge, kept for cached queries. Transient:
/// never serialised, dropped on clone.
struct MergedCache<S> {
    epoch: u64,
    cut: u64,
    value: S,
}

/// The live half of the runtime: the worker pool plus the per-shard
/// staging buffers of routed-but-unshipped items. Boxed behind a `Mutex`
/// so `&self` accessors can quiesce (ship + flush) through interior
/// mutability while `ShardedSampler` stays `Send`.
struct RuntimeState<U: StreamUpdate> {
    pool: ShardPool<U>,
    staging: Vec<Vec<U>>,
}

impl<U: StreamUpdate> RuntimeState<U> {
    /// Ships every non-empty staging buffer to its ring (order-preserving:
    /// staged items were routed after everything already shipped).
    fn ship_staged(&mut self) {
        for (shard, buffer) in self.staging.iter_mut().enumerate() {
            if !buffer.is_empty() {
                let chunk = std::mem::take(buffer);
                self.pool.send(shard, chunk);
            }
        }
    }

    /// Ships staged items and waits until every worker has applied them.
    fn quiesce(&mut self) {
        self.ship_staged();
        self.pool.flush();
    }
}

/// A scatter-gather front-end over `k` shard instances of a mergeable
/// sampler (see the module docs).
///
/// Generic over the update type `U`: `ShardedSampler<S>` (the default,
/// `U = Item`) hosts insertion-only shards and implements
/// [`StreamSampler`]; `ShardedSampler<S, SignedUpdate>` (built with
/// [`ShardedSamplerBuilder::build_turnstile`]) hosts strict-turnstile
/// shards and implements [`TurnstileSampler`]. The routing, staging,
/// worker-pool and fold-merge plumbing is written once against
/// [`StreamUpdate`]/[`UpdateSampler`] and shared by both instantiations.
pub struct ShardedSampler<S, U: StreamUpdate = Item> {
    /// Declared first so drop order joins the workers *before* the shard
    /// states they point into are dropped.
    runtime: Option<Mutex<RuntimeState<U>>>,
    /// Owned shard states. `UnsafeCell` because, while the runtime is
    /// live, worker `j` mutates shard `j` through a raw pointer; the
    /// coordinator only touches a shard after a completed barrier (see
    /// [`crate::runtime::ShardPool::start`]'s contract). Boxed slice: the
    /// allocation must never move while workers hold pointers into it.
    shards: Box<[UnsafeCell<S>]>,
    strategy: ShardingStrategy,
    /// Round-robin cursor: the shard the next update is routed to.
    cursor: usize,
    /// Transient per-shard scatter buffers for the sequential (pre-runtime)
    /// batch path; never holds data across calls and never serialised.
    scratch: Vec<Vec<U>>,
    /// Coins for the query-time merge draws.
    rng: Xoshiro256,
    processed: u64,
    /// Policy applied when the runtime starts. Serialised since format
    /// v2, so a restored sampler keeps the policy it was built with.
    backpressure: Backpressure,
    /// Per-shard batch size below which (pre-runtime) batches take the
    /// sequential path. Serialised since format v2.
    parallel_cutoff: usize,
    /// Items staged per shard before a chunk ships to its ring.
    /// Serialised since format v2.
    chunk_len: usize,
    /// Ingest generation counter (one per [`Self::ingest`] /
    /// [`Self::ingest_batch`] call): the staleness clock of the query
    /// cache. Transient — never serialised, so a restored sampler starts
    /// at epoch 0 just like it starts with a cold runtime.
    epoch: u64,
    /// The last consistent fold-merge, reused by cached queries.
    /// Transient for the same reason as the runtime: operational state,
    /// not logical state.
    cache: Option<MergedCache<S>>,
    /// Hit/miss counters for the query cache. Transient.
    cache_stats: QueryCacheStats,
}

// `UnsafeCell` suppresses auto-`Send`; shipping the whole front-end to
// another thread is still fine: the boxed slice's allocation (which the
// workers point into) does not move, and `&mut`/owned access to the
// coordinator half is unique by construction.
unsafe impl<S: Send, U: StreamUpdate> Send for ShardedSampler<S, U> {}

impl<S> ShardedSampler<S>
where
    S: MergeableSampler + UpdateSampler<Item> + Clone + Send + Snapshot + Restore + 'static,
{
    /// Creates a sharded sampler with `shards` instances built by
    /// `factory(shard_index)` and every other knob at its default.
    #[deprecated(
        since = "0.2.0",
        note = "use ShardedSampler::builder(shards) and its named setters"
    )]
    pub fn new(
        shards: usize,
        strategy: ShardingStrategy,
        seed: u64,
        factory: impl FnMut(usize) -> S,
    ) -> Self {
        Self::builder(shards)
            .strategy(strategy)
            .seed(seed)
            .build(factory)
    }
}

impl<S, U> ShardedSampler<S, U>
where
    S: MergeableSampler + UpdateSampler<U> + Clone + Send + Snapshot + Restore + 'static,
    U: StreamUpdate,
{
    /// Starts configuring a sharded sampler over `shards` shard instances
    /// (see [`ShardedSamplerBuilder`] for the knobs and their defaults).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn builder(shards: usize) -> ShardedSamplerBuilder {
        ShardedSamplerBuilder::new(shards)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of updates processed across all shards (counted at routing
    /// time, so it includes staged and in-flight items).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The routing strategy.
    pub fn strategy(&self) -> ShardingStrategy {
        self.strategy
    }

    /// The backpressure policy the runtime (will) run with.
    pub fn backpressure(&self) -> Backpressure {
        self.backpressure
    }

    /// Configures what ingest does when a shard's ring is full. Must be
    /// called before the runtime starts (i.e. before the first batch large
    /// enough to cross the parallel cutoff).
    ///
    /// # Panics
    ///
    /// Panics if the worker pool is already running.
    pub fn set_backpressure(&mut self, policy: Backpressure) {
        assert!(
            self.runtime.is_none(),
            "set the backpressure policy before the runtime starts"
        );
        self.backpressure = policy;
    }

    /// Whether the persistent worker pool is live.
    pub fn runtime_active(&self) -> bool {
        self.runtime.is_some()
    }

    /// The per-shard parallel cutoff (items per shard below which a
    /// pre-runtime batch stays on the calling thread).
    pub fn parallel_cutoff(&self) -> usize {
        self.parallel_cutoff
    }

    /// The runtime chunk length (items staged per shard before a chunk
    /// ships to its ring).
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Cumulative pressure/throughput counters of the live runtime —
    /// chunks delivered, ingest calls that blocked, chunks spilled or shed
    /// (see [`RuntimeStats`]). All zeros while the worker pool has not
    /// started; reset when it restarts (clone, restore).
    pub fn runtime_stats(&self) -> RuntimeStats {
        match &self.runtime {
            Some(runtime) => runtime.lock().unwrap().pool.stats(),
            None => RuntimeStats::default(),
        }
    }

    /// Blocks until every routed update has been applied to its shard
    /// (no-op while the runtime is not live). After `flush` returns, reads
    /// through [`Self::shard`] observe the complete stream so far.
    pub fn flush(&mut self) {
        self.quiesce();
    }

    /// Read access to one shard (diagnostics and tests). Quiesces the
    /// runtime first, so the view includes every update routed so far.
    pub fn shard(&self, idx: usize) -> &S {
        self.quiesce();
        // SAFETY: after `quiesce` all rings are empty and every worker is
        // parked; the returned shared borrow keeps `&self` alive, and all
        // command-issuing methods require `&mut self`.
        unsafe { &*self.shards[idx].get() }
    }

    /// The shard index an item is routed to under [`ShardingStrategy::Hash`].
    #[inline]
    pub fn hash_shard_of(&self, item: Item) -> usize {
        route(mix(item), self.shards.len())
    }

    /// Ships staged chunks and waits for every worker to go idle. After
    /// this returns (and until the next command is sent), the coordinator
    /// may access shard states directly.
    fn quiesce(&self) {
        if let Some(runtime) = &self.runtime {
            runtime.lock().unwrap().quiesce();
        }
    }

    /// Direct mutable access to one shard; only sound while the runtime is
    /// not live or fully quiesced.
    fn shard_mut(&mut self, idx: usize) -> &mut S {
        debug_assert!(self.runtime.is_none(), "direct access requires no runtime");
        self.shards[idx].get_mut()
    }

    /// Starts the persistent worker pool over the current shard states.
    fn start_runtime(&mut self) {
        debug_assert!(self.runtime.is_none());
        let ptrs: Vec<*mut S> = self.shards.iter().map(UnsafeCell::get).collect();
        // SAFETY: the pointers target the boxed slice owned by `self`,
        // which is never resized and outlives the pool (`runtime` is
        // declared before `shards`, so the pool joins its workers first on
        // drop; `Self` is only movable as a whole, which does not move the
        // boxed allocation). Coordinator-side access to the pointees only
        // happens behind `quiesce()` barriers, per the contract.
        let pool = unsafe {
            ShardPool::start(
                &ptrs,
                RuntimeConfig {
                    backpressure: self.backpressure,
                    ..RuntimeConfig::default()
                },
            )
        };
        self.runtime = Some(Mutex::new(RuntimeState {
            pool,
            staging: vec![Vec::new(); self.shards.len()],
        }));
    }

    /// Routes `updates` into the live runtime's staging buffers, shipping
    /// each buffer as it reaches [`RUNTIME_CHUNK`]. Per-shard update order
    /// is exactly the loop order, so the engines' batch ≡ loop law carries
    /// over chunk boundaries unchanged.
    fn scatter_to_runtime(&mut self, updates: &[U]) {
        let k = self.shards.len();
        let strategy = self.strategy;
        let chunk_len = self.chunk_len;
        let mut cursor = self.cursor;
        let state = self
            .runtime
            .as_mut()
            .expect("runtime is live")
            .get_mut()
            .unwrap();
        for &update in updates {
            let shard = match strategy {
                ShardingStrategy::Hash => route(mix(update.route_key()), k),
                ShardingStrategy::RoundRobin => {
                    let shard = cursor;
                    cursor += 1;
                    if cursor == k {
                        cursor = 0;
                    }
                    shard
                }
            };
            let buffer = &mut state.staging[shard];
            buffer.push(update);
            if buffer.len() >= chunk_len {
                let mut fresh = state.pool.take_buffer();
                std::mem::swap(buffer, &mut fresh);
                state.pool.send(shard, fresh);
            }
        }
        self.cursor = cursor;
    }

    /// Routes one update to its shard — the kind-generic ingest surface
    /// both stream-model trait impls (and generic callers like the ingest
    /// service's reference run) delegate to.
    pub fn ingest(&mut self, update: U) {
        self.processed += 1;
        self.epoch += 1;
        if self.runtime.is_some() {
            self.scatter_to_runtime(std::slice::from_ref(&update));
            return;
        }
        let shard = match self.strategy {
            ShardingStrategy::Hash => route(mix(update.route_key()), self.shards.len()),
            ShardingStrategy::RoundRobin => {
                let shard = self.cursor;
                self.cursor = (self.cursor + 1) % self.shards.len();
                shard
            }
        };
        self.shard_mut(shard).ingest(update);
    }

    /// Routes a batch of updates: scatter, then either ship to the runtime
    /// or drain sequentially (see the `update_batch` docs on the
    /// [`StreamSampler`] impl). Kind-generic twin of [`Self::ingest`].
    pub fn ingest_batch(&mut self, updates: &[U]) {
        self.processed += updates.len() as u64;
        if updates.is_empty() {
            return;
        }
        self.epoch += 1;
        let k = self.shards.len();
        if k == 1 {
            self.shard_mut(0).ingest_batch(updates);
            return;
        }
        if self.runtime.is_none() && updates.len() >= k * self.parallel_cutoff {
            self.start_runtime();
        }
        if self.runtime.is_some() {
            self.scatter_to_runtime(updates);
            return;
        }
        // Sequential small-batch path: scatter on the calling thread, then
        // drain each shard's sub-batch in stream order. The scratch matrix
        // is transient state, sized lazily so restoring a snapshot never
        // allocates it up front.
        if self.scratch.len() != k {
            self.scratch = vec![Vec::new(); k];
        }
        for buffer in &mut self.scratch {
            buffer.clear();
        }
        let cursor = self.cursor;
        scatter_chunk(updates, &mut self.scratch, self.strategy, cursor);
        if self.strategy == ShardingStrategy::RoundRobin {
            self.cursor = (cursor + updates.len()) % k;
        }
        let scratch = std::mem::take(&mut self.scratch);
        for (shard, buffer) in scratch.iter().enumerate() {
            if !buffer.is_empty() {
                self.shard_mut(shard).ingest_batch(buffer);
            }
        }
        self.scratch = scratch;
    }

    /// Builds a merged sampler answering for the combined stream of all
    /// shards. While the runtime is live this restores the workers'
    /// consistent-cut snapshots and fold-merges those (the shards keep
    /// ingesting in the meantime); otherwise it fold-merges clones. The two
    /// paths agree byte-for-byte by the restore-then-merge ≡
    /// in-process-merge law. Merge coins come from the front-end's own RNG,
    /// so repeated queries draw independent merged states.
    pub fn merged(&mut self) -> S {
        if let Some(runtime) = &mut self.runtime {
            let state = runtime.get_mut().unwrap();
            state.ship_staged();
            let records = state.pool.snapshot_all();
            let mut shards = records
                .iter()
                .map(|bytes| S::restore(bytes).expect("a worker-emitted snapshot always restores"));
            let mut merged = shards.next().expect("at least one shard");
            for shard in shards {
                merged = merged.merge(shard, &mut self.rng);
            }
            merged
        } else {
            let mut shards = self
                .shards
                .iter()
                .map(|cell| unsafe { &*cell.get() }.clone());
            let mut merged = shards.next().expect("at least one shard");
            for shard in shards {
                merged = merged.merge(shard, &mut self.rng);
            }
            merged
        }
    }

    /// The ingest generation this sampler is at: one epoch per
    /// [`Self::ingest`] / [`Self::ingest_batch`] call. This is the clock
    /// [`QueryConsistency::Cached`]'s staleness bound is measured against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Hit/miss counters of the query cache (see [`QueryCacheStats`]).
    pub fn query_cache_stats(&self) -> QueryCacheStats {
        self.cache_stats
    }

    /// The typed query surface over [`Self::merged`] — the in-process
    /// twin of the service's query plane.
    ///
    /// A [`QueryConsistency::Consistent`] request behaves exactly like
    /// [`Self::merged`] (same fold-merge, same merge coins — the two are
    /// byte-identical) and additionally republishes the result into the
    /// query cache. A [`QueryConsistency::Cached`] request is answered
    /// from that cache when the cache's epoch is at most
    /// `max_epochs_stale` ingest calls behind [`Self::epoch`] — without
    /// touching the shards, the runtime, or the merge coins — and
    /// escalates to the consistent path otherwise. Cached answers are
    /// clones of one published merge, so repeated cached queries return
    /// byte-identical samplers.
    pub fn query(&mut self, options: &QueryOptions) -> QuerySnapshot<S> {
        if let QueryConsistency::Cached { max_epochs_stale } = options.consistency {
            if let Some(cache) = &self.cache {
                if self.epoch - cache.epoch <= max_epochs_stale {
                    self.cache_stats.hits += 1;
                    return QuerySnapshot {
                        value: cache.value.clone(),
                        epoch: cache.epoch,
                        cut: cache.cut,
                        cached: true,
                    };
                }
            }
        }
        self.cache_stats.misses += 1;
        let value = self.merged();
        let (epoch, cut) = (self.epoch, self.processed);
        self.cache = Some(MergedCache {
            epoch,
            cut,
            value: value.clone(),
        });
        QuerySnapshot {
            value,
            epoch,
            cut,
            cached: false,
        }
    }
}

/// Scatters one chunk into `k` per-shard buffers. `base` is the chunk's
/// global offset within the batch (plus the round-robin cursor), so cyclic
/// routing reproduces the per-update loop's assignment exactly.
fn scatter_chunk<U: StreamUpdate>(
    chunk: &[U],
    buffers: &mut [Vec<U>],
    strategy: ShardingStrategy,
    base: usize,
) {
    let k = buffers.len();
    // Pre-size for a balanced split plus 50% skew headroom, so growth
    // reallocations stay off the scatter path.
    let hint = chunk.len() / k + chunk.len() / (2 * k) + 8;
    for buffer in buffers.iter_mut() {
        buffer.reserve(hint);
    }
    match strategy {
        ShardingStrategy::Hash => {
            for &update in chunk {
                buffers[route(mix(update.route_key()), k)].push(update);
            }
        }
        ShardingStrategy::RoundRobin => {
            for (offset, &update) in chunk.iter().enumerate() {
                buffers[(base + offset) % k].push(update);
            }
        }
    }
}

impl<S> StreamSampler for ShardedSampler<S>
where
    S: MergeableSampler + UpdateSampler<Item> + Clone + Send + Snapshot + Restore + 'static,
{
    fn update(&mut self, item: Item) {
        self.ingest(item);
    }

    /// The persistent-runtime ingest path.
    ///
    /// While the worker pool is live (or once this batch is large enough —
    /// the configured [`parallel_cutoff`](ShardedSampler::parallel_cutoff)
    /// items per shard — to start it), the coordinator routes items into
    /// per-shard staging buffers and ships each as a
    /// [`chunk_len`](ShardedSampler::chunk_len)-sized chunk onto that
    /// shard's SPSC ring;
    /// workers drain their rings through the engines' amortised
    /// `update_batch`. The call returns as soon as the batch is enqueued —
    /// chunks pipeline across shards with no spawn/join and no barrier per
    /// batch. Use [`ShardedSampler::flush`] (or any query/snapshot) for a
    /// completion barrier.
    ///
    /// Routing is deterministic (hash of the item, or the round-robin
    /// cursor), each shard owns a private RNG, and the engines'
    /// batch ≡ loop law makes multi-chunk draining chunking-invariant — so
    /// sharded batch ingestion ≡ sharded per-item ingestion regardless of
    /// how chunks land on worker threads. Batches below the cutoff (before
    /// the runtime has started) take an equivalent scatter-and-drain path
    /// on the calling thread.
    fn update_batch(&mut self, items: &[Item]) {
        self.ingest_batch(items);
    }

    /// Merges the shards — from snapshot-isolated cuts while the runtime is
    /// live — and queries the merged instance.
    fn sample(&mut self) -> SampleOutcome {
        self.merged().draw()
    }
}

impl<S> TurnstileSampler for ShardedSampler<S, SignedUpdate>
where
    S: MergeableSampler + UpdateSampler<SignedUpdate> + Clone + Send + Snapshot + Restore + 'static,
{
    fn update(&mut self, update: SignedUpdate) {
        self.ingest(update);
    }

    /// Same routed ingest path as the insertion-only impl, over signed
    /// updates: an update is routed by its *coordinate*
    /// ([`StreamUpdate::route_key`]), so under [`ShardingStrategy::Hash`]
    /// every update touching an item lands on one shard and merged
    /// frequencies are exact. For shard types whose merge is linear in the
    /// update stream (the turnstile `F_0` sampler), round-robin routing is
    /// exact too.
    fn update_batch(&mut self, updates: &[SignedUpdate]) {
        self.ingest_batch(updates);
    }

    /// Merges the shards — from snapshot-isolated cuts while the runtime is
    /// live — and queries the merged instance.
    fn sample(&mut self) -> SampleOutcome {
        self.merged().draw()
    }
}

impl<S, U> Clone for ShardedSampler<S, U>
where
    S: MergeableSampler + UpdateSampler<U> + Clone + Send + Snapshot + Restore + 'static,
    U: StreamUpdate,
{
    /// Clones the coordinator state and (quiesced) shard states. The clone
    /// starts without a live runtime and with a cold query cache; its pool
    /// starts lazily at its first large batch.
    fn clone(&self) -> Self {
        self.quiesce();
        Self {
            runtime: None,
            shards: self
                .shards
                .iter()
                .map(|cell| UnsafeCell::new(unsafe { &*cell.get() }.clone()))
                .collect(),
            strategy: self.strategy,
            cursor: self.cursor,
            scratch: Vec::new(),
            rng: self.rng.clone(),
            processed: self.processed,
            backpressure: self.backpressure,
            parallel_cutoff: self.parallel_cutoff,
            chunk_len: self.chunk_len,
            epoch: self.epoch,
            cache: None,
            cache_stats: QueryCacheStats::default(),
        }
    }
}

impl<S, U> std::fmt::Debug for ShardedSampler<S, U>
where
    S: MergeableSampler
        + UpdateSampler<U>
        + Clone
        + Send
        + Snapshot
        + Restore
        + 'static
        + std::fmt::Debug,
    U: StreamUpdate,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.quiesce();
        let shards: Vec<&S> = self
            .shards
            .iter()
            // SAFETY: quiesced above; see `Self::shard`.
            .map(|cell| unsafe { &*cell.get() })
            .collect();
        f.debug_struct("ShardedSampler")
            .field("strategy", &self.strategy)
            .field("cursor", &self.cursor)
            .field("processed", &self.processed)
            .field("epoch", &self.epoch)
            .field("backpressure", &self.backpressure)
            .field("runtime_active", &self.runtime.is_some())
            .field("cached_query", &self.cache.is_some())
            .field("shards", &shards)
            .finish()
    }
}

/// Wire format (v2): the router configuration (strategy, then — new in
/// format version 2 — the backpressure policy, parallel cutoff and runtime
/// chunk length, then round-robin cursor, processed count, merge-coin RNG
/// position) followed by each shard's own snapshot. Worker-pool state is
/// operational, not logical: encoding quiesces the pool and ships only the
/// shard states, and a restored sampler starts with a cold runtime — but,
/// since v2, with the ingest configuration it was built with rather than
/// the defaults (v1 snapshots migrate with the frozen v1 defaults spliced
/// in; see `tps_streams::codec::migrate`).
///
/// Because each shard is itself a complete snapshot of a mergeable
/// sampler, the per-shard records can also be shipped to *different*
/// processes and recombined there through
/// [`MergeableSampler`](tps_streams::MergeableSampler) — restore-then-merge
/// is both the cross-machine scatter-gather path and what the runtime's
/// own snapshot-isolated queries replay in-process.
impl<S, U> Snapshot for ShardedSampler<S, U>
where
    S: MergeableSampler + UpdateSampler<U> + Clone + Send + Snapshot + Restore + 'static,
    U: StreamUpdate,
{
    const TAG: u16 = codec::tag::SHARDED_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        self.quiesce();
        w.put_tag(Self::TAG);
        w.put_u8(match self.strategy {
            ShardingStrategy::Hash => 0,
            ShardingStrategy::RoundRobin => 1,
        });
        w.put_u8(match self.backpressure {
            Backpressure::Block => 0,
            Backpressure::Spill => 1,
            Backpressure::Fail => 2,
        });
        w.put_usize(self.parallel_cutoff);
        w.put_usize(self.chunk_len);
        w.put_usize(self.cursor);
        w.put_u64(self.processed);
        self.rng.encode_into(w);
        w.put_len(self.shards.len());
        for cell in &self.shards {
            // SAFETY: quiesced above; see `Self::shard`.
            unsafe { &*cell.get() }.encode_into(w);
        }
    }
}

impl<S, U> Restore for ShardedSampler<S, U>
where
    S: MergeableSampler + UpdateSampler<U> + Clone + Send + Snapshot + Restore + 'static,
    U: StreamUpdate,
{
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let strategy = match r.get_u8()? {
            0 => ShardingStrategy::Hash,
            1 => ShardingStrategy::RoundRobin,
            _ => {
                return Err(CodecError::InvalidValue {
                    what: "sharding strategy flag must be 0 or 1",
                })
            }
        };
        let backpressure = match r.get_u8()? {
            0 => Backpressure::Block,
            1 => Backpressure::Spill,
            2 => Backpressure::Fail,
            _ => {
                return Err(CodecError::InvalidValue {
                    what: "backpressure flag must be 0, 1 or 2",
                })
            }
        };
        let parallel_cutoff = r.get_usize()?;
        let chunk_len = r.get_usize()?;
        if parallel_cutoff == 0 || chunk_len == 0 {
            return Err(CodecError::InvalidValue {
                what: "parallel cutoff and chunk length must be positive",
            });
        }
        let cursor = r.get_usize()?;
        let processed = r.get_u64()?;
        let rng = Xoshiro256::decode_from(r)?;
        let count = r.get_len(1)?;
        // Shard counts track core counts; the cap leaves an order of
        // magnitude beyond any real host while keeping a hostile length
        // from driving the per-shard decode loop.
        const MAX_SHARDS: usize = 1 << 10;
        if count == 0 || count > MAX_SHARDS {
            return Err(CodecError::InvalidValue {
                what: "shard count out of range",
            });
        }
        if cursor >= count {
            return Err(CodecError::InvalidValue {
                what: "round-robin cursor outside the shard range",
            });
        }
        let mut shards: Vec<S> = Vec::with_capacity(count);
        for _ in 0..count {
            let shard = S::decode_from(r)?;
            // Individually valid shards can still disagree on configuration
            // (exponent, instance count, pre-drawn subsets); the query-time
            // fold-merge asserts on that, so reject it here as a typed
            // error instead of letting restored state panic at the first
            // sample.
            if shards
                .first()
                .is_some_and(|first| !first.merge_compatible(&shard))
            {
                return Err(CodecError::InvalidValue {
                    what: "shards disagree on sampler configuration",
                });
            }
            shards.push(shard);
        }
        Ok(Self {
            runtime: None,
            shards: shards.into_iter().map(UnsafeCell::new).collect(),
            strategy,
            cursor,
            // Sized lazily by the first sequential batch — never inside
            // the decoder.
            scratch: Vec::new(),
            rng,
            processed,
            backpressure,
            parallel_cutoff,
            chunk_len,
            // Like the runtime: operational state restarts cold.
            epoch: 0,
            cache: None,
            cache_stats: QueryCacheStats::default(),
        })
    }
}

impl<S, U> SpaceUsage for ShardedSampler<S, U>
where
    S: MergeableSampler
        + UpdateSampler<U>
        + Clone
        + Send
        + Snapshot
        + Restore
        + 'static
        + SpaceUsage,
    U: StreamUpdate,
{
    fn space_bytes(&self) -> usize {
        self.quiesce();
        std::mem::size_of::<Self>()
            + self
                .shards
                .iter()
                // SAFETY: quiesced above; see `Self::shard`.
                .map(|cell| unsafe { &*cell.get() }.space_bytes())
                .sum::<usize>()
            + self
                .scratch
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<U>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::TrulyPerfectLpSampler;

    fn zipfish_stream(len: usize, universe: u64) -> Vec<Item> {
        (0..len as u64)
            .map(|i| {
                let z = mix(i);
                if z.is_multiple_of(3) {
                    z % 5
                } else {
                    z % universe
                }
            })
            .collect()
    }

    fn sharded_l2(
        shards: usize,
        strategy: ShardingStrategy,
        seed: u64,
    ) -> ShardedSampler<TrulyPerfectLpSampler> {
        ShardedSamplerBuilder::new(shards)
            .strategy(strategy)
            .seed(seed)
            .build(|idx| TrulyPerfectLpSampler::new(2.0, 512, 0.1, seed ^ ((idx as u64) << 32)))
    }

    #[test]
    fn hash_routing_keeps_items_on_one_shard() {
        let mut sharded = sharded_l2(4, ShardingStrategy::Hash, 1);
        let stream = zipfish_stream(5_000, 97);
        sharded.update_batch(&stream);
        assert_eq!(sharded.processed(), 5_000);
        // Every item's full frequency must sit on its hash shard.
        let per_shard: Vec<u64> = (0..4).map(|j| sharded.shard(j).processed()).collect();
        assert_eq!(per_shard.iter().sum::<u64>(), 5_000);
        let mut expected = vec![0u64; 4];
        for &item in &stream {
            expected[sharded.hash_shard_of(item)] += 1;
        }
        assert_eq!(per_shard, expected);
    }

    /// Sharded batch ≡ sharded loop: deterministic routing plus per-shard
    /// batch ≡ loop gives identical states, checked by comparing sample
    /// draws (which also compares the query RNG position).
    #[test]
    fn sharded_batch_equals_sharded_loop() {
        for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
            let stream = zipfish_stream(3_000, 61);
            let mut looped = sharded_l2(3, strategy, 7);
            for &x in &stream {
                looped.update(x);
            }
            let mut batched = sharded_l2(3, strategy, 7);
            for chunk in stream.chunks(271) {
                batched.update_batch(chunk);
            }
            for draw in 0..6 {
                assert_eq!(
                    looped.sample(),
                    batched.sample(),
                    "{strategy:?} diverged at draw {draw}"
                );
            }
        }
    }

    /// The runtime path (one whole-stream batch above the per-shard
    /// parallelism cutoff, for both backpressure policies) and the
    /// sequential small-batch path (many chunks below it) leave identical
    /// states — same shard contents, same query RNG position — for both
    /// routing strategies.
    #[test]
    fn runtime_path_equals_sequential_path_and_loop() {
        let len = 3 * PARALLEL_MIN_PER_SHARD + 1_234;
        let stream = zipfish_stream(len, 61);
        for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
            for backpressure in [Backpressure::Block, Backpressure::Spill] {
                let mut looped = sharded_l2(3, strategy, 21);
                for &x in &stream {
                    looped.update(x);
                }
                let mut sequential = sharded_l2(3, strategy, 21);
                for piece in stream.chunks(501) {
                    sequential.update_batch(piece);
                }
                let mut parallel = sharded_l2(3, strategy, 21);
                parallel.set_backpressure(backpressure);
                parallel.update_batch(&stream);
                assert!(parallel.runtime_active(), "cutoff must start the runtime");
                for draw in 0..6 {
                    let want = looped.sample();
                    assert_eq!(
                        want,
                        parallel.sample(),
                        "{strategy:?}/{backpressure:?} runtime path diverged at draw {draw}"
                    );
                    assert_eq!(
                        want,
                        sequential.sample(),
                        "{strategy:?} sequential path diverged at draw {draw}"
                    );
                }
            }
        }
    }

    /// Queries issued *while* the runtime keeps ingesting match a
    /// quiesce-then-query reference: the snapshot barrier cuts exactly at
    /// the routed prefix, and later batches land on top of the same state.
    #[test]
    fn snapshot_isolated_queries_interleave_with_ingest() {
        let len = 3 * PARALLEL_MIN_PER_SHARD;
        let stream = zipfish_stream(2 * len, 61);
        let (first, second) = stream.split_at(len);
        let mut live = sharded_l2(3, ShardingStrategy::Hash, 33);
        let mut reference = sharded_l2(3, ShardingStrategy::Hash, 33);
        live.update_batch(first);
        assert!(live.runtime_active());
        reference.update_batch(first);
        reference.flush();
        // Query mid-stream: must answer for exactly the prefix.
        assert_eq!(live.sample(), reference.sample());
        live.update_batch(second);
        reference.update_batch(second);
        for draw in 0..4 {
            assert_eq!(live.sample(), reference.sample(), "draw {draw} diverged");
        }
    }

    /// Clones and snapshots taken while the runtime is live observe the
    /// full routed stream (quiesce-on-read), and the clone behaves like an
    /// independent sampler from that point.
    #[test]
    fn clone_and_snapshot_quiesce_the_live_runtime() {
        let len = 2 * PARALLEL_MIN_PER_SHARD;
        let stream = zipfish_stream(len, 97);
        let mut live = sharded_l2(2, ShardingStrategy::Hash, 5);
        live.update_batch(&stream);
        assert!(live.runtime_active());
        let mut cloned = live.clone();
        assert!(!cloned.runtime_active());
        assert_eq!(cloned.processed(), live.processed());
        let bytes = live.snapshot();
        let mut restored: ShardedSampler<TrulyPerfectLpSampler> =
            ShardedSampler::restore(&bytes).unwrap();
        for draw in 0..4 {
            let want = live.sample();
            assert_eq!(want, cloned.sample(), "clone diverged at draw {draw}");
            assert_eq!(want, restored.sample(), "restore diverged at draw {draw}");
        }
    }

    #[test]
    fn round_robin_balances_exactly() {
        let mut sharded = sharded_l2(4, ShardingStrategy::RoundRobin, 3);
        sharded.update_batch(&zipfish_stream(1_000, 13));
        for j in 0..4 {
            assert_eq!(sharded.shard(j).processed(), 250);
        }
    }

    #[test]
    fn empty_sharded_sampler_reports_empty() {
        let mut sharded = sharded_l2(4, ShardingStrategy::Hash, 9);
        assert_eq!(sharded.sample(), SampleOutcome::Empty);
    }

    #[test]
    fn merged_seen_covers_the_whole_stream() {
        let mut sharded = sharded_l2(5, ShardingStrategy::Hash, 11);
        sharded.update_batch(&zipfish_stream(4_321, 37));
        assert_eq!(sharded.merged().processed(), 4_321);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = sharded_l2(0, ShardingStrategy::Hash, 1);
    }

    /// The deprecated positional constructor is a thin wrapper: it builds
    /// the same sampler (same snapshot bytes) as the builder with matching
    /// settings — the pin that keeps pre-builder goldens valid.
    #[test]
    #[allow(deprecated)]
    fn deprecated_new_equals_builder() {
        let factory =
            |idx: usize| TrulyPerfectLpSampler::new(2.0, 512, 0.1, 7 ^ ((idx as u64) << 32));
        let mut via_new = ShardedSampler::new(3, ShardingStrategy::RoundRobin, 7, factory);
        let mut via_builder = ShardedSamplerBuilder::new(3)
            .strategy(ShardingStrategy::RoundRobin)
            .seed(7)
            .build(factory);
        let stream = zipfish_stream(2_000, 31);
        via_new.update_batch(&stream);
        via_builder.update_batch(&stream);
        assert_eq!(via_new.snapshot(), via_builder.snapshot());
    }

    /// The ingest configuration survives the snapshot round trip (new in
    /// format v2): policy, cutoff and chunk length come back, and the
    /// builder's routing helper agrees with the public `hash_route`.
    #[test]
    fn ingest_config_round_trips_through_snapshots() {
        let mut sampler = ShardedSamplerBuilder::new(2)
            .seed(3)
            .backpressure(Backpressure::Fail)
            .parallel_cutoff(1_000)
            .chunk_len(2_048)
            .build(|idx| TrulyPerfectLpSampler::new(2.0, 512, 0.1, 3 ^ ((idx as u64) << 32)));
        sampler.update_batch(&zipfish_stream(500, 13));
        let restored: ShardedSampler<TrulyPerfectLpSampler> =
            ShardedSampler::restore(&sampler.snapshot()).unwrap();
        assert_eq!(restored.backpressure(), Backpressure::Fail);
        assert_eq!(restored.parallel_cutoff(), 1_000);
        assert_eq!(restored.chunk_len(), 2_048);
        for item in [0u64, 1, 99, u64::MAX] {
            assert_eq!(sampler.hash_shard_of(item), hash_route(item, 2));
        }
    }

    /// `runtime_stats` observes the live pool: chunks flow once the
    /// runtime starts, and a cold sampler reports all zeros.
    #[test]
    fn runtime_stats_observe_the_pool() {
        let mut sampler = sharded_l2(2, ShardingStrategy::Hash, 17);
        assert_eq!(sampler.runtime_stats(), RuntimeStats::default());
        sampler.update_batch(&zipfish_stream(2 * PARALLEL_MIN_PER_SHARD, 61));
        assert!(sampler.runtime_active());
        sampler.flush();
        let stats = sampler.runtime_stats();
        assert!(stats.chunks > 0, "runtime ingest must count chunks");
        assert_eq!(stats.dropped_chunks, 0);
        assert_eq!(stats.spilled_pending, 0);
    }

    /// A consistent `query()` is `merged()` by another name: same merged
    /// snapshot bytes, same merge-coin consumption, so the two paths stay
    /// interchangeable draw for draw.
    #[test]
    fn consistent_query_equals_merged() {
        let stream = zipfish_stream(3_000, 61);
        let mut via_merged = sharded_l2(3, ShardingStrategy::Hash, 13);
        let mut via_query = sharded_l2(3, ShardingStrategy::Hash, 13);
        via_merged.update_batch(&stream);
        via_query.update_batch(&stream);
        let merged = via_merged.merged();
        let snap = via_query.query(&QueryOptions::consistent());
        assert!(!snap.cached);
        assert_eq!(snap.cut, 3_000);
        assert_eq!(snap.value.snapshot(), merged.snapshot());
        // Both consumed the same coins: the next draws still agree.
        for draw in 0..4 {
            assert_eq!(
                via_merged.sample(),
                via_query.sample(),
                "coin streams diverged at draw {draw}"
            );
        }
    }

    /// A cached query within its staleness bound is a pure cache read:
    /// byte-identical to the consistent merge that filled the cache, no
    /// merge coins consumed, and the hit is counted.
    #[test]
    fn cached_query_serves_the_published_merge_without_coins() {
        let stream = zipfish_stream(2_000, 61);
        let mut live = sharded_l2(2, ShardingStrategy::Hash, 23);
        let mut reference = sharded_l2(2, ShardingStrategy::Hash, 23);
        live.update_batch(&stream);
        reference.update_batch(&stream);
        let published = live.query(&QueryOptions::consistent());
        let _ = reference.query(&QueryOptions::consistent());
        // Repeated cached reads answer from the same published merge.
        for round in 0..3 {
            let hit = live.query(&QueryOptions::cached(0));
            assert!(hit.cached, "round {round} missed a warm cache");
            assert_eq!(hit.epoch, published.epoch);
            assert_eq!(hit.cut, published.cut);
            assert_eq!(hit.value.snapshot(), published.value.snapshot());
        }
        assert_eq!(live.query_cache_stats().hits, 3);
        assert_eq!(live.query_cache_stats().misses, 1);
        // The cache reads drew no merge coins: the next consistent query
        // matches a reference that never queried the cache.
        assert_eq!(
            live.query(&QueryOptions::consistent()).value.snapshot(),
            reference
                .query(&QueryOptions::consistent())
                .value
                .snapshot()
        );
    }

    /// A cache staler than the caller's bound escalates to the consistent
    /// path; a tolerant bound keeps serving the old cut and reports its
    /// (older) epoch honestly.
    #[test]
    fn stale_cache_escalates_within_the_bound() {
        let stream = zipfish_stream(2_000, 61);
        let (first, second) = stream.split_at(1_000);
        let mut sampler = sharded_l2(2, ShardingStrategy::Hash, 29);
        sampler.update_batch(first);
        let published = sampler.query(&QueryOptions::consistent());
        // One more ingest call moves the live epoch past the cache.
        sampler.update_batch(second);
        assert_eq!(sampler.epoch(), published.epoch + 1);
        // Tolerating one epoch of lag still hits, pinned to the old cut.
        let lagged = sampler.query(&QueryOptions::cached(1));
        assert!(lagged.cached);
        assert_eq!(lagged.cut, 1_000);
        assert!(
            sampler.epoch() - lagged.epoch <= 1,
            "staleness bound violated"
        );
        // Demanding the current epoch escalates: fresh cut, full stream.
        let fresh = sampler.query(&QueryOptions::cached(0));
        assert!(!fresh.cached, "stale cache served past its bound");
        assert_eq!(fresh.cut, 2_000);
        assert_eq!(fresh.epoch, sampler.epoch());
        // And the escalation republished: cached(0) now hits.
        assert!(sampler.query(&QueryOptions::cached(0)).cached);
    }

    /// Epoch, cache and counters are operational state: a snapshot round
    /// trip resets them (like the runtime), while the logical sampler
    /// state is untouched.
    #[test]
    fn query_cache_is_transient_across_snapshots() {
        let mut sampler = sharded_l2(2, ShardingStrategy::Hash, 31);
        sampler.update_batch(&zipfish_stream(1_500, 37));
        let _ = sampler.query(&QueryOptions::consistent());
        assert!(sampler.query(&QueryOptions::cached(0)).cached);
        let restored: ShardedSampler<TrulyPerfectLpSampler> =
            ShardedSampler::restore(&sampler.snapshot()).unwrap();
        assert_eq!(restored.epoch(), 0);
        assert_eq!(restored.query_cache_stats(), QueryCacheStats::default());
        // A restored sampler has no cache to serve: cached(anything) must
        // escalate to a fresh consistent merge.
        let mut restored = restored;
        assert!(!restored.query(&QueryOptions::cached(u64::MAX)).cached);
    }

    // ----- turnstile instantiation: the same plumbing hosts signed shards -

    use crate::turnstile::StrictTurnstileF0Sampler;

    /// A strict stream: inserts with a deterministic sprinkling of
    /// insert-then-delete pairs, so every prefix keeps counts ≥ 0.
    fn signed_stream(len: usize, universe: u64) -> Vec<SignedUpdate> {
        let mut out = Vec::with_capacity(len * 2);
        for i in 0..len as u64 {
            let item = mix(i) % universe;
            out.push(SignedUpdate { item, delta: 1 });
            if i.is_multiple_of(3) {
                out.push(SignedUpdate { item, delta: 1 });
                out.push(SignedUpdate { item, delta: -1 });
            }
        }
        out
    }

    fn sharded_turnstile(
        shards: usize,
        strategy: ShardingStrategy,
        seed: u64,
    ) -> ShardedSampler<StrictTurnstileF0Sampler, SignedUpdate> {
        // One shared seed across shards: the turnstile merge law requires
        // identical pre-drawn subsets (same reason as the F0 kind).
        ShardedSamplerBuilder::new(shards)
            .strategy(strategy)
            .seed(seed)
            .build_turnstile(|_idx| StrictTurnstileF0Sampler::new(512, seed))
    }

    /// Sharded turnstile batch ≡ loop ≡ runtime path, for both routing
    /// strategies (round-robin is exact here: the turnstile merge is
    /// linear, so any partitioning works).
    #[test]
    fn sharded_turnstile_paths_agree() {
        let stream = signed_stream(3 * PARALLEL_MIN_PER_SHARD, 509);
        for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
            let mut looped = sharded_turnstile(3, strategy, 19);
            for &u in &stream {
                looped.update(u);
            }
            let mut batched = sharded_turnstile(3, strategy, 19);
            for chunk in stream.chunks(407) {
                batched.update_batch(chunk);
            }
            let mut parallel = sharded_turnstile(3, strategy, 19);
            parallel.update_batch(&stream);
            assert!(parallel.runtime_active(), "cutoff must start the runtime");
            for draw in 0..4 {
                let want = looped.sample();
                assert_eq!(
                    want,
                    batched.sample(),
                    "{strategy:?} batch path diverged at draw {draw}"
                );
                assert_eq!(
                    want,
                    parallel.sample(),
                    "{strategy:?} runtime path diverged at draw {draw}"
                );
            }
        }
    }

    /// The sharded turnstile sampler answers exactly like one unsharded
    /// instance over the interleaved stream: merging is linear (syndromes
    /// and membership counters add), so the shard cut is invisible — the
    /// merged snapshot is byte-identical, not just distributionally right.
    #[test]
    fn sharded_turnstile_equals_single_instance() {
        let stream = signed_stream(4_000, 389);
        let mut single = StrictTurnstileF0Sampler::new(512, 77);
        single.update_batch(&stream);
        let mut sharded = sharded_turnstile(4, ShardingStrategy::Hash, 77);
        sharded.update_batch(&stream);
        let merged = sharded.merged();
        assert_eq!(
            merged.snapshot(),
            single.snapshot(),
            "merged turnstile shards drifted from the single instance"
        );
        assert_eq!(sharded.sample(), single.sample());
    }

    /// Snapshot round trip of the sharded turnstile front-end: restore
    /// continues byte-identically (same draws) as the uninterrupted
    /// original.
    #[test]
    fn sharded_turnstile_snapshot_round_trips() {
        let stream = signed_stream(3_000, 257);
        let mut sampler = sharded_turnstile(3, ShardingStrategy::Hash, 5);
        sampler.update_batch(&stream);
        let bytes = sampler.snapshot();
        let mut restored: ShardedSampler<StrictTurnstileF0Sampler, SignedUpdate> =
            ShardedSampler::restore(&bytes).unwrap();
        for draw in 0..4 {
            assert_eq!(
                sampler.sample(),
                restored.sample(),
                "restored sharded turnstile diverged at draw {draw}"
            );
        }
    }
}
