//! Scatter-gather sharding: parallel ingest across `k` sampler shards with
//! query-time merging.
//!
//! The samplers in this workspace are one-pass and oblivious to how the
//! stream is partitioned, so the single-core ingest ceiling is not a system
//! ceiling: [`ShardedSampler`] routes updates across `k` independent shard
//! instances, drives each shard's amortised batch path on its own
//! `std::thread` worker during [`StreamSampler::update_batch`], and answers
//! queries from a merged instance built through the shards'
//! [`MergeableSampler`] implementation.
//!
//! ## Routing and exactness
//!
//! * [`ShardingStrategy::Hash`] (the default) routes every occurrence of an
//!   item to the same shard. Merged suffix counts are then exact, so the
//!   sharded sampler is **distributionally equivalent** to a single
//!   instance over the interleaved stream for *every* measure `G` (and for
//!   the `F_0` sampler, whose shards must share one seed so their pre-drawn
//!   subsets coincide — see `TrulyPerfectF0Sampler`'s merge docs).
//! * [`ShardingStrategy::RoundRobin`] balances load perfectly regardless of
//!   skew but splits an item's occurrences across shards; it is exact for
//!   constant-increment measures (`L_1`, where acceptance ignores suffix
//!   counts) and an approximation otherwise.
//!
//! Queries clone and fold-merge the shards (`O(k · state)`); the intended
//! regime is the streaming one where updates outnumber queries by orders of
//! magnitude.

use tps_random::Xoshiro256;
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::{Item, MergeableSampler, SampleOutcome, SpaceUsage, StreamSampler};

/// How [`ShardedSampler`] routes updates to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardingStrategy {
    /// Route by a fixed hash of the item: all occurrences of an item land
    /// on one shard, making merged suffix counts — and therefore the merged
    /// output distribution — exact for every measure.
    Hash,
    /// Route cyclically: perfect load balance under any skew, exact for
    /// constant-increment measures only.
    RoundRobin,
}

/// The splitmix64 finalizer: the same mixer the workspace's internal maps
/// hash with, used here to assign items to shards.
#[inline]
fn mix(item: Item) -> u64 {
    let mut z = item.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed hash onto `[0, shards)` with Lemire's multiply-shift range
/// reduction — one widening multiply instead of the 64-bit division a `%`
/// would cost per scattered item. Scatter workers each pay this per item
/// of their chunk, so it sits on the parallel critical path.
#[inline]
fn route(hash: u64, shards: usize) -> usize {
    (((hash as u128) * (shards as u128)) >> 64) as usize
}

/// Batches smaller than this many items *per shard* are scattered and
/// drained on the calling thread: below it, spawning `2k` scoped workers
/// costs more than the routed work itself. The sequential path is
/// chunking-equivalent to the parallel one (same routing, same per-shard
/// order), so the cutoff is invisible to sampler semantics.
const PARALLEL_MIN_PER_SHARD: usize = 4_096;

/// A scatter-gather front-end over `k` shard instances of a mergeable
/// sampler (see the module docs).
#[derive(Debug, Clone)]
pub struct ShardedSampler<S> {
    shards: Vec<S>,
    strategy: ShardingStrategy,
    /// Round-robin cursor: the shard the next update is routed to.
    cursor: usize,
    /// `k × k` scatter buffers in row-major `[worker][shard]` order, reused
    /// across batches: scatter worker `w` fills row `w`, ingest worker `j`
    /// drains column `j` in row order (which preserves stream order, so the
    /// engines' batch ≡ loop law applies per shard).
    buffers: Vec<Vec<Item>>,
    /// Coins for the query-time merge draws.
    rng: Xoshiro256,
    processed: u64,
}

impl<S: MergeableSampler + Clone + Send> ShardedSampler<S> {
    /// Creates a sharded sampler with `shards` instances built by
    /// `factory(shard_index)`. The factory decides seeding: independent
    /// seeds for the reservoir samplers; one shared seed for `F_0` shards
    /// (their merge requires identical pre-drawn subsets).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(
        shards: usize,
        strategy: ShardingStrategy,
        seed: u64,
        mut factory: impl FnMut(usize) -> S,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards: (0..shards).map(&mut factory).collect(),
            strategy,
            cursor: 0,
            buffers: vec![Vec::new(); shards * shards],
            rng: Xoshiro256::seed_from_u64(seed ^ 0x5AAD_ED00),
            processed: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of updates processed across all shards.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The routing strategy.
    pub fn strategy(&self) -> ShardingStrategy {
        self.strategy
    }

    /// Read access to one shard (diagnostics and tests).
    pub fn shard(&self, idx: usize) -> &S {
        &self.shards[idx]
    }

    /// The shard index an item is routed to under [`ShardingStrategy::Hash`].
    #[inline]
    pub fn hash_shard_of(&self, item: Item) -> usize {
        route(mix(item), self.shards.len())
    }

    /// Builds a merged sampler answering for the combined stream of all
    /// shards, by fold-merging clones (the shards keep ingesting
    /// afterwards). Merge coins come from the front-end's own RNG, so
    /// repeated queries draw independent merged states.
    pub fn merged(&mut self) -> S {
        let mut shards = self.shards.iter().cloned();
        let mut merged = shards.next().expect("at least one shard");
        for shard in shards {
            merged = merged.merge(shard, &mut self.rng);
        }
        merged
    }
}

/// Scatters one positional chunk into `k` per-shard buffers. `base` is the
/// chunk's global offset within the batch (plus the round-robin cursor),
/// so cyclic routing reproduces the per-item loop's assignment exactly.
fn scatter_chunk(
    chunk: &[Item],
    buffers: &mut [Vec<Item>],
    strategy: ShardingStrategy,
    base: usize,
) {
    let k = buffers.len();
    // Pre-size for a balanced split plus 50% skew headroom, so growth
    // reallocations stay off the scatter path.
    let hint = chunk.len() / k + chunk.len() / (2 * k) + 8;
    for buffer in buffers.iter_mut() {
        buffer.reserve(hint);
    }
    match strategy {
        ShardingStrategy::Hash => {
            for &item in chunk {
                buffers[route(mix(item), k)].push(item);
            }
        }
        ShardingStrategy::RoundRobin => {
            for (offset, &item) in chunk.iter().enumerate() {
                buffers[(base + offset) % k].push(item);
            }
        }
    }
}

impl<S: MergeableSampler + Clone + Send> StreamSampler for ShardedSampler<S> {
    fn update(&mut self, item: Item) {
        self.processed += 1;
        let shard = match self.strategy {
            ShardingStrategy::Hash => self.hash_shard_of(item),
            ShardingStrategy::RoundRobin => {
                let shard = self.cursor;
                self.cursor = (self.cursor + 1) % self.shards.len();
                shard
            }
        };
        self.shards[shard].update(item);
    }

    /// The two-phase parallel ingest path.
    ///
    /// **Phase 1 (parallel scatter):** the batch is cut into `k` positional
    /// chunks; worker `w` partitions chunk `w` into `k` per-shard buffers
    /// (row `w` of the `k × k` buffer matrix). No sequential scatter pass
    /// remains on the critical path — with enough cores it costs one
    /// `1/k`-sized scan instead of a full one.
    ///
    /// **Phase 2 (parallel ingest):** worker `j` drains column `j` — the
    /// sub-batches destined for shard `j`, in chunk order, which is stream
    /// order — through shard `j`'s amortised `update_batch`.
    ///
    /// Routing is deterministic (hash of the item, or the round-robin
    /// cursor plus the item's position) and each shard owns a private RNG,
    /// and the engines' batch ≡ loop law makes multi-slice draining
    /// chunking-invariant — so sharded batch ingestion ≡ sharded per-item
    /// ingestion regardless of thread scheduling. Batches too small to
    /// amortise thread spawns ([`PARALLEL_MIN_PER_SHARD`] items per shard)
    /// take an equivalent scatter-and-drain path on the calling thread.
    fn update_batch(&mut self, items: &[Item]) {
        self.processed += items.len() as u64;
        if items.is_empty() {
            return;
        }
        let k = self.shards.len();
        if k == 1 {
            self.shards[0].update_batch(items);
            return;
        }
        // The scatter matrix is transient state, sized lazily so that
        // restoring a snapshot never performs a `k²` allocation up front
        // (a decoder must not let a linear-size input drive a quadratic
        // allocation); the first batch after a restore pays it here, once.
        if self.buffers.len() != k * k {
            self.buffers = vec![Vec::new(); k * k];
        }
        for buffer in &mut self.buffers {
            buffer.clear();
        }
        let cursor = self.cursor;
        let strategy = self.strategy;
        if items.len() < k * PARALLEL_MIN_PER_SHARD {
            scatter_chunk(items, &mut self.buffers[..k], strategy, cursor);
            if strategy == ShardingStrategy::RoundRobin {
                self.cursor = (cursor + items.len()) % k;
            }
            for (shard, buffer) in self.shards.iter_mut().zip(&self.buffers) {
                if !buffer.is_empty() {
                    shard.update_batch(buffer);
                }
            }
            return;
        }
        let chunk_len = items.len().div_ceil(k);
        std::thread::scope(|scope| {
            for (w, (chunk, row)) in items
                .chunks(chunk_len)
                .zip(self.buffers.chunks_mut(k))
                .enumerate()
            {
                scope.spawn(move || scatter_chunk(chunk, row, strategy, cursor + w * chunk_len));
            }
        });
        if strategy == ShardingStrategy::RoundRobin {
            self.cursor = (cursor + items.len()) % k;
        }
        let buffers = &self.buffers;
        std::thread::scope(|scope| {
            for (j, shard) in self.shards.iter_mut().enumerate() {
                scope.spawn(move || {
                    for row in 0..k {
                        let buffer = &buffers[row * k + j];
                        if !buffer.is_empty() {
                            shard.update_batch(buffer);
                        }
                    }
                });
            }
        });
    }

    /// Merges the shards and queries the merged instance.
    fn sample(&mut self) -> SampleOutcome {
        self.merged().sample()
    }
}

/// Wire format: the router configuration (strategy, round-robin cursor,
/// merge-coin RNG position, processed count) followed by each shard's own
/// snapshot. The transient scatter buffers are not shipped; the first
/// batch after a restore re-sizes them lazily.
///
/// Because each shard is itself a complete snapshot of a mergeable
/// sampler, the per-shard records can also be shipped to *different*
/// processes and recombined there through
/// [`MergeableSampler`](tps_streams::MergeableSampler) — restore-then-merge
/// is the cross-machine scatter-gather path this format exists for.
impl<S: MergeableSampler + Clone + Send + Snapshot> Snapshot for ShardedSampler<S> {
    const TAG: u16 = codec::tag::SHARDED_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_u8(match self.strategy {
            ShardingStrategy::Hash => 0,
            ShardingStrategy::RoundRobin => 1,
        });
        w.put_usize(self.cursor);
        w.put_u64(self.processed);
        self.rng.encode_into(w);
        w.put_len(self.shards.len());
        for shard in &self.shards {
            shard.encode_into(w);
        }
    }
}

impl<S: MergeableSampler + Clone + Send + Restore> Restore for ShardedSampler<S> {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let strategy = match r.get_u8()? {
            0 => ShardingStrategy::Hash,
            1 => ShardingStrategy::RoundRobin,
            _ => {
                return Err(CodecError::InvalidValue {
                    what: "sharding strategy flag must be 0 or 1",
                })
            }
        };
        let cursor = r.get_usize()?;
        let processed = r.get_u64()?;
        let rng = Xoshiro256::decode_from(r)?;
        let count = r.get_len(1)?;
        // The shard count sizes the `k²` scatter matrix on the first
        // post-restore batch, so the payload-length bound alone (one byte
        // per shard) is not enough — a linear-size snapshot must not drive
        // a quadratic allocation. Shard counts track core counts; the cap
        // leaves an order of magnitude beyond any real host.
        const MAX_SHARDS: usize = 1 << 10;
        if count == 0 || count > MAX_SHARDS {
            return Err(CodecError::InvalidValue {
                what: "shard count out of range",
            });
        }
        if cursor >= count {
            return Err(CodecError::InvalidValue {
                what: "round-robin cursor outside the shard range",
            });
        }
        let mut shards: Vec<S> = Vec::with_capacity(count);
        for _ in 0..count {
            let shard = S::decode_from(r)?;
            // Individually valid shards can still disagree on configuration
            // (exponent, instance count, pre-drawn subsets); the query-time
            // fold-merge asserts on that, so reject it here as a typed
            // error instead of letting restored state panic at the first
            // sample.
            if shards
                .first()
                .is_some_and(|first| !first.merge_compatible(&shard))
            {
                return Err(CodecError::InvalidValue {
                    what: "shards disagree on sampler configuration",
                });
            }
            shards.push(shard);
        }
        Ok(Self {
            // Sized lazily by the first `update_batch` — never `count²`
            // inside the decoder.
            buffers: Vec::new(),
            shards,
            strategy,
            cursor,
            rng,
            processed,
        })
    }
}

impl<S: SpaceUsage> SpaceUsage for ShardedSampler<S> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .shards
                .iter()
                .map(SpaceUsage::space_bytes)
                .sum::<usize>()
            + self
                .buffers
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<Item>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::TrulyPerfectLpSampler;

    fn zipfish_stream(len: usize, universe: u64) -> Vec<Item> {
        (0..len as u64)
            .map(|i| {
                let z = mix(i);
                if z.is_multiple_of(3) {
                    z % 5
                } else {
                    z % universe
                }
            })
            .collect()
    }

    fn sharded_l2(
        shards: usize,
        strategy: ShardingStrategy,
        seed: u64,
    ) -> ShardedSampler<TrulyPerfectLpSampler> {
        ShardedSampler::new(shards, strategy, seed, |idx| {
            TrulyPerfectLpSampler::new(2.0, 512, 0.1, seed ^ ((idx as u64) << 32))
        })
    }

    #[test]
    fn hash_routing_keeps_items_on_one_shard() {
        let mut sharded = sharded_l2(4, ShardingStrategy::Hash, 1);
        let stream = zipfish_stream(5_000, 97);
        sharded.update_batch(&stream);
        assert_eq!(sharded.processed(), 5_000);
        // Every item's full frequency must sit on its hash shard.
        let per_shard: Vec<u64> = (0..4).map(|j| sharded.shard(j).processed()).collect();
        assert_eq!(per_shard.iter().sum::<u64>(), 5_000);
        let mut expected = vec![0u64; 4];
        for &item in &stream {
            expected[sharded.hash_shard_of(item)] += 1;
        }
        assert_eq!(per_shard, expected);
    }

    /// Sharded batch ≡ sharded loop: deterministic routing plus per-shard
    /// batch ≡ loop gives identical states, checked by comparing sample
    /// draws (which also compares the query RNG position).
    #[test]
    fn sharded_batch_equals_sharded_loop() {
        for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
            let stream = zipfish_stream(3_000, 61);
            let mut looped = sharded_l2(3, strategy, 7);
            for &x in &stream {
                looped.update(x);
            }
            let mut batched = sharded_l2(3, strategy, 7);
            for chunk in stream.chunks(271) {
                batched.update_batch(chunk);
            }
            for draw in 0..6 {
                assert_eq!(
                    looped.sample(),
                    batched.sample(),
                    "{strategy:?} diverged at draw {draw}"
                );
            }
        }
    }

    /// The threaded path (one whole-stream batch above the per-shard
    /// parallelism cutoff) and the sequential small-batch path (many
    /// chunks below it) leave identical states — same shard contents, same
    /// query RNG position — for both routing strategies.
    #[test]
    fn parallel_path_equals_sequential_path_and_loop() {
        let len = 3 * PARALLEL_MIN_PER_SHARD + 1_234;
        let stream = zipfish_stream(len, 61);
        assert!(len >= 3 * PARALLEL_MIN_PER_SHARD, "must cross the cutoff");
        for strategy in [ShardingStrategy::Hash, ShardingStrategy::RoundRobin] {
            let mut parallel = sharded_l2(3, strategy, 21);
            parallel.update_batch(&stream);
            let mut sequential = sharded_l2(3, strategy, 21);
            for piece in stream.chunks(501) {
                sequential.update_batch(piece);
            }
            let mut looped = sharded_l2(3, strategy, 21);
            for &x in &stream {
                looped.update(x);
            }
            for draw in 0..6 {
                let expected = looped.sample();
                assert_eq!(
                    expected,
                    parallel.sample(),
                    "{strategy:?} parallel path diverged at draw {draw}"
                );
                assert_eq!(
                    expected,
                    sequential.sample(),
                    "{strategy:?} sequential path diverged at draw {draw}"
                );
            }
        }
    }

    #[test]
    fn round_robin_balances_exactly() {
        let mut sharded = sharded_l2(4, ShardingStrategy::RoundRobin, 3);
        sharded.update_batch(&zipfish_stream(1_000, 13));
        for j in 0..4 {
            assert_eq!(sharded.shard(j).processed(), 250);
        }
    }

    #[test]
    fn empty_sharded_sampler_reports_empty() {
        let mut sharded = sharded_l2(4, ShardingStrategy::Hash, 9);
        assert_eq!(sharded.sample(), SampleOutcome::Empty);
    }

    #[test]
    fn merged_seen_covers_the_whole_stream() {
        let mut sharded = sharded_l2(5, ShardingStrategy::Hash, 11);
        sharded.update_batch(&zipfish_stream(4_321, 37));
        assert_eq!(sharded.merged().processed(), 4_321);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = sharded_l2(0, ShardingStrategy::Hash, 1);
    }
}
