//! The skip-ahead reservoir engine — the single audited core behind every
//! timestamp-based truly perfect sampler in this workspace.
//!
//! The paper uses one mechanism twice: Algorithm 1 reservoirs that schedule
//! their *next* replacement with the skip-ahead distribution (instead of
//! flipping a coin per update) and reconstruct suffix counts through a
//! shared [`SuffixCountTable`]. The insertion-only framework (Theorem 3.1)
//! runs one such engine for the whole stream; the sliding-window samplers
//! (Section 4) run one per cohort. [`SkipAheadEngine`] owns that machinery
//! exactly once:
//!
//! * the slot array (held item + suffix-count offset + admission position),
//! * the min-heap replacement schedule,
//! * the shared suffix-count table and its reference counts (so a stream
//!   update touches one hash-table entry no matter how many slots track the
//!   item, and counters are garbage-collected when the last slot moves off
//!   an item),
//! * the engine's private RNG (consumed *only* by skip-ahead reschedules
//!   and, for adapters that opt in via [`SkipAheadEngine::first_accepted`],
//!   by rejection coins), and
//! * both ingestion paths: the per-item [`SkipAheadEngine::update`] and the
//!   fused run-length batch path, related by the **batch ≡ loop law** —
//!   any chunking of the stream through the batch path leaves the engine
//!   (RNG position included) in exactly the per-item loop's state.
//!
//! [`crate::framework::TrulyPerfectGSampler`] and the cohorts inside
//! [`crate::sliding`] are thin adapters over this type: the framework adds
//! `G`-function plumbing and the rejection normaliser, the cohorts add
//! window bookkeeping (epoch starts, activity checks, cohort retirement).
//! The batch ≡ loop invariant itself lives — and is audited — here.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tps_random::{StreamRng, Xoshiro256};
use tps_sketches::exact_counter::SuffixCountTable;
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::hashmap_bytes;
use tps_streams::{FastHashMap, Item, SpaceUsage, Timestamp};

/// Per-slot state: the held item (if any), the offset into the shared
/// suffix-count table captured at admission, and the engine-local position
/// (1-based) of the admitted update.
///
/// The offset convention matches Algorithm 1: the shared counter is bumped
/// for the current occurrence *before* the slot captures its offset, so the
/// occurrence that caused the admission is never part of the reconstructed
/// suffix count.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    item: Option<Item>,
    offset: u64,
    admitted_at: Timestamp,
}

/// A candidate proposal read out of the engine: one held slot, with its
/// suffix count reconstructed from the shared table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The item the slot holds.
    pub item: Item,
    /// Occurrences of the item seen by this engine *after* the admission.
    pub suffix_count: u64,
    /// Engine-local (1-based) position of the update that was admitted.
    /// Adapters with a notion of global time translate it themselves (a
    /// cohort started at stream position `start` admits global position
    /// `start − 1 + admitted_at`).
    pub admitted_at: Timestamp,
}

/// How a batch drain consumes replacement-free chunks and boundary items
/// (the items that wake a slot and take the per-item path).
trait BatchSink {
    /// Consumes one replacement-free chunk (the engine's `seen` is advanced
    /// by the caller after this returns).
    fn chunk(&mut self, table: &mut SuffixCountTable, chunk: &[Item]);
    /// Notes one boundary item, already fed through the per-item path.
    fn boundary(&mut self, item: Item);
}

/// The plain drain: chunks go straight to the shared table (which
/// short-circuits when nothing is tracked).
struct PlainSink;

impl BatchSink for PlainSink {
    fn chunk(&mut self, table: &mut SuffixCountTable, chunk: &[Item]) {
        table.update_batch(chunk);
    }

    fn boundary(&mut self, _item: Item) {}
}

/// The observing drain: chunks are run-length-compressed once, driving the
/// shared table and the observer from the same runs; boundary items are
/// reported as runs of length 1.
struct ObserverSink<F: FnMut(Item, u64)>(F);

impl<F: FnMut(Item, u64)> BatchSink for ObserverSink<F> {
    fn chunk(&mut self, table: &mut SuffixCountTable, chunk: &[Item]) {
        tps_streams::for_each_run(chunk, |item, count| {
            table.update_run(item, count);
            (self.0)(item, count);
        });
    }

    fn boundary(&mut self, item: Item) {
        (self.0)(item, 1);
    }
}

/// The shared skip-ahead reservoir engine (see the module docs).
#[derive(Debug, Clone)]
pub struct SkipAheadEngine {
    slots: Vec<Slot>,
    /// Min-heap of (next replacement position, slot index), positions local
    /// to this engine. Invariant outside `update`: every scheduled position
    /// is strictly greater than `seen`.
    schedule: BinaryHeap<Reverse<(Timestamp, usize)>>,
    table: SuffixCountTable,
    /// Number of slots currently holding each tracked item, for garbage
    /// collecting the shared table.
    references: FastHashMap<Item, u32>,
    rng: Xoshiro256,
    /// Number of updates this engine has seen.
    seen: u64,
    /// Scratch for multi-slot wakeups (transient, never serialised): due
    /// slot indices are collected here so their skip-ahead reschedules can
    /// be drawn in one batched RNG pass.
    wake_buf: Vec<usize>,
}

impl SkipAheadEngine {
    /// Creates an engine with `slots` parallel reservoir slots drawing from
    /// `rng`. Every slot is scheduled to admit the first update.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize, rng: Xoshiro256) -> Self {
        assert!(slots > 0, "need at least one sampler instance");
        let schedule = (0..slots)
            .map(|idx| Reverse((1u64, idx)))
            .collect::<BinaryHeap<_>>();
        Self {
            slots: vec![Slot::default(); slots],
            schedule,
            table: SuffixCountTable::new(),
            references: FastHashMap::default(),
            rng,
            seen: 0,
            wake_buf: Vec::new(),
        }
    }

    /// Creates an engine seeding its RNG from `seed`.
    pub fn with_seed(slots: usize, seed: u64) -> Self {
        Self::new(slots, Xoshiro256::seed_from_u64(seed))
    }

    /// Number of reservoir slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of updates processed by this engine.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The number of distinct items currently tracked by the shared
    /// suffix-count table (a space diagnostic).
    pub fn tracked_items(&self) -> usize {
        self.table.tracked()
    }

    /// The engine's RNG, for adapters whose query path shares the update
    /// path's draw sequence (the insertion-only framework does; the
    /// sliding-window samplers draw rejection coins from a manager-level
    /// RNG instead and never touch this one at query time).
    pub fn rng_mut(&mut self) -> &mut Xoshiro256 {
        &mut self.rng
    }

    /// Moves slot `idx` onto `item`, maintaining the reference counts and
    /// the shared table's tracked set.
    fn switch_sample(&mut self, idx: usize, item: Item) {
        // Release the previous sample's reference.
        if let Some(old) = self.slots[idx].item {
            if let Some(count) = self.references.get_mut(&old) {
                *count -= 1;
                if *count == 0 {
                    self.references.remove(&old);
                    self.table.untrack(old);
                }
            }
        }
        // Acquire the new sample. The shared counter was already updated for
        // the current occurrence (if tracked), so the captured offset always
        // excludes it and the reconstructed suffix count matches Algorithm 1.
        *self.references.entry(item).or_insert(0) += 1;
        let offset = self.table.track(item);
        self.slots[idx] = Slot {
            item: Some(item),
            offset,
            admitted_at: self.seen,
        };
    }

    /// Processes one stream update: one shared-table touch, then wakes every
    /// slot scheduled to replace its sample at this position (rescheduling
    /// each with one skip-ahead draw).
    pub fn update(&mut self, item: Item) {
        self.seen += 1;
        // Shared suffix counting: one hash-table touch per update.
        self.table.update(item);
        // Hot path: no slot is due at this position (skip-ahead makes
        // replacements `O(k log m)` over the whole stream, so this peek is
        // the only per-update schedule work).
        if self
            .schedule
            .peek()
            .is_some_and(|&Reverse((when, _))| when == self.seen)
        {
            self.wake_due_slots(item);
        }
    }

    /// The outlined replacement path: pops every slot due at `seen`, moves
    /// them all onto `item`, then draws their skip-ahead reschedules in one
    /// batched RNG pass. The RNG sequence is identical to the historical
    /// interleaved pop/draw loop — `switch_sample` consumes no randomness,
    /// the due set is fixed before any draw (rescheduled positions are
    /// strictly `> seen`, so a push can never join the current wake), and
    /// draws happen in heap-pop order.
    #[cold]
    fn wake_due_slots(&mut self, item: Item) {
        let mut wakes = std::mem::take(&mut self.wake_buf);
        wakes.clear();
        while let Some(&Reverse((when, idx))) = self.schedule.peek() {
            if when != self.seen {
                break;
            }
            self.schedule.pop();
            wakes.push(idx);
        }
        for &idx in &wakes {
            self.switch_sample(idx, item);
        }
        for &idx in &wakes {
            let next = skip_ahead_replacement(&mut self.rng, self.seen);
            self.schedule.push(Reverse((next, idx)));
        }
        self.wake_buf = wakes;
    }

    /// The amortised batch path.
    ///
    /// Skip-ahead rescheduling already guarantees that replacements are rare
    /// (`O(k log m)` over the whole stream); the batch path capitalises on
    /// that by splitting the batch at the scheduled replacement positions
    /// and draining every intervening chunk in one fused pass: the chunk is
    /// run-length-compressed once and each run drives the shared
    /// suffix-count table ([`SuffixCountTable::update_run`]) with a single
    /// hash-table touch — no heap peeks, no per-item bookkeeping, one
    /// `seen` add per chunk. Only the items that actually trigger a
    /// replacement take the per-item path. The resulting state — including
    /// the RNG position, which is touched only at replacements — is
    /// bit-identical to the per-item loop's.
    pub fn update_batch(&mut self, items: &[Item]) {
        self.drain_chunks(items, &mut PlainSink);
    }

    /// The batch path with an observer: `observe_run(item, count)` is
    /// invoked once per maximal run of the batch (boundary items that take
    /// the per-item path are reported as runs of length 1), in stream
    /// order, with `Σ count = items.len()`. The insertion-only framework
    /// hooks its rejection normaliser in here so one fused pass drives the
    /// table and the normaliser together; observers must be exactly
    /// equivalent to per-item replay (the
    /// [`crate::framework::RejectionNormalizer`] contract).
    pub fn update_batch_with<F>(&mut self, items: &[Item], observe_run: F)
    where
        F: FnMut(Item, u64),
    {
        self.drain_chunks(items, &mut ObserverSink(observe_run));
    }

    /// The shared batch skeleton: replacement-free chunks go to the sink in
    /// one piece; each item that wakes a slot goes through the per-item
    /// path and is reported to the sink as a boundary.
    fn drain_chunks<S: BatchSink>(&mut self, items: &[Item], sink: &mut S) {
        let mut idx = 0;
        while idx < items.len() {
            let remaining = items.len() - idx;
            // Invariant: every scheduled position is `> self.seen`, so the
            // item at batch offset `j` (engine position `seen + j + 1`)
            // triggers a replacement iff a schedule entry equals that
            // position.
            let safe = match self.schedule.peek() {
                Some(&Reverse((when, _))) => ((when - self.seen - 1) as usize).min(remaining),
                None => remaining,
            };
            if safe > 0 {
                let chunk = &items[idx..idx + safe];
                sink.chunk(&mut self.table, chunk);
                self.seen += chunk.len() as u64;
                idx += safe;
            }
            if idx < items.len() && safe < remaining {
                // This item wakes at least one slot: per-item path.
                self.update(items[idx]);
                sink.boundary(items[idx]);
                idx += 1;
            }
        }
    }

    /// The held candidates in slot order, suffix counts reconstructed from
    /// the shared table. Empty slots (possible only before the first
    /// update) are skipped.
    pub fn candidates(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.slots.iter().filter_map(move |slot| {
            let item = slot.item?;
            Some(Candidate {
                item,
                suffix_count: self.table.suffix_count(item, slot.offset),
                admitted_at: slot.admitted_at,
            })
        })
    }

    /// Merges two engines into one whose slots are distributed as if a
    /// single engine had processed `self`'s stream followed by `other`'s
    /// (the concatenation `A ∘ B`).
    ///
    /// Each merged slot is drawn independently: `self`'s slot wins with
    /// probability `seen_A / (seen_A + seen_B)`, `other`'s otherwise —
    /// exactly the probability that a uniform position of `A ∘ B` falls in
    /// `A`. Conditioned on the winning side, the slot already holds a
    /// uniform position of that side's stream, so every merged slot holds a
    /// uniform position of the combined stream. Admission positions from
    /// `other` are shifted by `seen_A` into concatenation coordinates, and
    /// each slot's next replacement is redrawn from the skip-ahead
    /// distribution at `seen_A + seen_B` (for a reservoir that has seen `m`
    /// updates, the next replacement satisfies `P[next > m + s] =
    /// m / (m + s)` regardless of its history, so the redraw leaves the
    /// forward process exactly as sequential ingestion would).
    ///
    /// Suffix counts carry over verbatim: a merged slot's suffix count is
    /// whatever its source engine had accumulated. This makes the merge
    /// **exact when the two streams are item-disjoint** (hash-partitioned
    /// sharding: every occurrence of a slot's item was seen by its own
    /// engine) and an under-count otherwise — occurrences of an `A`-slot's
    /// item inside `B` are invisible to `A`. Constant-increment measures
    /// (`L_1`) never read suffix counts, so for them any partitioning is
    /// exact. See `tps_streams::merge` for the taxonomy.
    ///
    /// The merged engine keeps `self`'s RNG (reschedule draws included);
    /// the weighted slot coins come from `rng`. Merging with an engine that
    /// has seen nothing returns the other input unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the engines have different slot counts.
    pub fn merge(self, other: Self, rng: &mut dyn StreamRng) -> Self {
        self.merge_inner(other, rng, true)
    }

    /// Like [`SkipAheadEngine::merge`], but for engines sharing one clock
    /// (two streams observed position-for-position in parallel, e.g. the
    /// lockstep sliding-window cohorts): admission positions are **not**
    /// shifted, because position `t` of either input names the same shared
    /// tick. Slots are still drawn weighted by seen counts, so each merged
    /// slot holds a uniform one of the `seen_A + seen_B` update instances.
    /// The result is a query-time snapshot — keep ingesting the inputs (or
    /// their clones), not the merged engine, since later updates would
    /// admit at combined-count positions that no longer name shared ticks.
    ///
    /// # Panics
    ///
    /// Panics if the engines have different slot counts.
    pub fn merge_lockstep(self, other: Self, rng: &mut dyn StreamRng) -> Self {
        self.merge_inner(other, rng, false)
    }

    /// The shared merge body; `shift` selects concatenation coordinates
    /// (`other`'s positions offset by `self.seen`) versus a shared clock.
    fn merge_inner(mut self, other: Self, rng: &mut dyn StreamRng, shift: bool) -> Self {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "merging engines requires equal slot counts"
        );
        if other.seen == 0 {
            return self;
        }
        if self.seen == 0 {
            return other;
        }
        let total = self.seen + other.seen;
        // Every slot is held once an engine has seen at least one update,
        // so both candidate lists are full and slot-aligned.
        let ours: Vec<Candidate> = self.candidates().collect();
        let theirs: Vec<Candidate> = other.candidates().collect();
        debug_assert_eq!(ours.len(), self.slots.len());
        debug_assert_eq!(theirs.len(), other.slots.len());
        let chosen: Vec<Candidate> = ours
            .iter()
            .zip(&theirs)
            .map(|(a, b)| {
                if rng.gen_range(total) < self.seen {
                    *a
                } else {
                    Candidate {
                        item: b.item,
                        suffix_count: b.suffix_count,
                        admitted_at: if shift {
                            self.seen + b.admitted_at
                        } else {
                            b.admitted_at
                        },
                    }
                }
            })
            .collect();
        // Rebuild the shared table: one counter per distinct chosen item,
        // set to the largest suffix count any slot needs, with per-slot
        // offsets making `suffix_count(item, offset)` reconstruct exactly.
        let mut max_suffix: FastHashMap<Item, u64> = FastHashMap::default();
        for c in &chosen {
            let entry = max_suffix.entry(c.item).or_insert(0);
            *entry = (*entry).max(c.suffix_count);
        }
        let mut table = SuffixCountTable::new();
        let mut references: FastHashMap<Item, u32> = FastHashMap::default();
        for (&item, &suffix) in &max_suffix {
            table.track(item);
            table.update_run(item, suffix);
        }
        for c in &chosen {
            *references.entry(c.item).or_insert(0) += 1;
        }
        self.slots = chosen
            .iter()
            .map(|c| Slot {
                item: Some(c.item),
                offset: max_suffix[&c.item] - c.suffix_count,
                admitted_at: c.admitted_at,
            })
            .collect();
        self.table = table;
        self.references = references;
        self.seen = total;
        self.schedule = (0..self.slots.len())
            .map(|idx| Reverse((skip_ahead_replacement(&mut self.rng, total), idx)))
            .collect();
        self
    }

    /// First-success aggregation over the slots, drawing rejection coins
    /// from the engine's RNG: scans the slots in order, accepts each held
    /// item with `accept_probability(item, suffix_count)`, and returns the
    /// first acceptance. Because slots are i.i.d., conditioning on which
    /// slot succeeds does not change the conditional output distribution.
    pub fn first_accepted<F>(&mut self, mut accept_probability: F) -> Option<Item>
    where
        F: FnMut(Item, u64) -> f64,
    {
        for idx in 0..self.slots.len() {
            let Slot { item, offset, .. } = self.slots[idx];
            let Some(item) = item else { continue };
            let c = self.table.suffix_count(item, offset);
            let accept = accept_probability(item, c);
            if self.rng.gen_bool(accept) {
                return Some(item);
            }
        }
        None
    }
}

/// Wire format: `seen`, the slot array, the replacement schedule (sorted —
/// a `BinaryHeap`'s pop order depends only on the element *set*, so the
/// canonical sorted encoding restores identical forward behaviour), the
/// shared suffix-count table, and the exact RNG position. The per-item
/// reference counts are derived from the slots on restore rather than
/// shipped.
impl Snapshot for SkipAheadEngine {
    const TAG: u16 = codec::tag::SKIP_AHEAD_ENGINE;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_u64(self.seen);
        w.put_len(self.slots.len());
        for slot in &self.slots {
            match slot.item {
                Some(item) => {
                    w.put_u8(1);
                    w.put_u64(item);
                }
                None => w.put_u8(0),
            }
            w.put_u64(slot.offset);
            w.put_u64(slot.admitted_at);
        }
        // Invariant: exactly one schedule entry per slot.
        let mut entries: Vec<(Timestamp, usize)> =
            self.schedule.iter().map(|&Reverse(e)| e).collect();
        entries.sort_unstable();
        debug_assert_eq!(entries.len(), self.slots.len());
        for (when, idx) in entries {
            w.put_u64(when);
            w.put_usize(idx);
        }
        self.table.encode_into(w);
        self.rng.encode_into(w);
    }
}

impl Restore for SkipAheadEngine {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let seen = r.get_u64()?;
        // Each slot costs ≥ 17 bytes here plus 16 schedule bytes later.
        let slot_count = r.get_len(17)?;
        if slot_count == 0 {
            return Err(CodecError::InvalidValue {
                what: "engine needs at least one slot",
            });
        }
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            let item = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_u64()?),
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "slot held flag must be 0 or 1",
                    })
                }
            };
            let offset = r.get_u64()?;
            let admitted_at = r.get_u64()?;
            match item {
                Some(_) => {
                    if admitted_at == 0 || admitted_at > seen {
                        return Err(CodecError::InvalidValue {
                            what: "slot admission position outside the seen range",
                        });
                    }
                }
                None => {
                    if offset != 0 || admitted_at != 0 || seen > 0 {
                        // Every slot admits the first update, so empty slots
                        // exist only in a pristine engine.
                        return Err(CodecError::InvalidValue {
                            what: "empty slot in an engine that has seen updates",
                        });
                    }
                }
            }
            slots.push(Slot {
                item,
                offset,
                admitted_at,
            });
        }
        let mut entries = Vec::with_capacity(slot_count);
        let mut idx_seen = vec![false; slot_count];
        let mut prev: Option<(Timestamp, usize)> = None;
        for _ in 0..slot_count {
            let when = r.get_u64()?;
            let idx = r.get_usize()?;
            if idx >= slot_count || std::mem::replace(&mut idx_seen[idx], true) {
                return Err(CodecError::InvalidValue {
                    what: "schedule must name each slot exactly once",
                });
            }
            // The engine invariant outside `update`: every scheduled
            // position is strictly in the future.
            if when <= seen {
                return Err(CodecError::InvalidValue {
                    what: "scheduled replacement not in the future",
                });
            }
            if prev.is_some_and(|p| p >= (when, idx)) {
                return Err(CodecError::InvalidValue {
                    what: "schedule entries not sorted",
                });
            }
            prev = Some((when, idx));
            entries.push(Reverse((when, idx)));
        }
        let table = SuffixCountTable::decode_from(r)?;
        let rng = Xoshiro256::decode_from(r)?;
        // Rebuild the reference counts from the slots and cross-check the
        // table: the tracked set must be exactly the held-item set, and each
        // slot's offset must not exceed its item's shared count (otherwise
        // suffix counts would silently saturate).
        let mut references: FastHashMap<Item, u32> = FastHashMap::default();
        for slot in &slots {
            if let Some(item) = slot.item {
                *references.entry(item).or_insert(0) += 1;
            }
        }
        let counts: FastHashMap<Item, u64> = table.entries().collect();
        if counts.len() != references.len() {
            return Err(CodecError::InvalidValue {
                what: "suffix table tracks a different item set than the slots hold",
            });
        }
        for slot in &slots {
            let Some(item) = slot.item else { continue };
            match counts.get(&item) {
                Some(&count) if slot.offset <= count => {}
                _ => {
                    return Err(CodecError::InvalidValue {
                        what: "slot offset exceeds its item's shared count",
                    })
                }
            }
        }
        Ok(Self {
            slots,
            schedule: entries.into_iter().collect(),
            table,
            references,
            rng,
            seen,
            wake_buf: Vec::new(),
        })
    }
}

impl SpaceUsage for SkipAheadEngine {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.schedule.len() * std::mem::size_of::<Reverse<(Timestamp, usize)>>()
            + self.table.space_bytes()
            + hashmap_bytes(&self.references)
            + self.wake_buf.capacity() * std::mem::size_of::<usize>()
    }
}

/// Draws the position of a reservoir's next replacement after holding a
/// sample admitted at position `t`: `P[next > t + s] = t / (t + s)`, the
/// skip-ahead distribution that gives Algorithm 1 its `O(1)` expected
/// update time (`O(log m)` reschedules per reservoir over a length-`m`
/// stream).
pub fn skip_ahead_replacement<R: StreamRng>(rng: &mut R, t: Timestamp) -> Timestamp {
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    let skip = ((t as f64) * (1.0 - u) / u).floor();
    // Saturate to avoid overflow on astronomically unlikely draws.
    let skip = if skip.is_finite() {
        skip.min(1e18) as u64
    } else {
        1_000_000_000_000_000_000
    };
    t + 1 + skip
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_state_fingerprint(engine: &SkipAheadEngine) -> (u64, Vec<(Item, u64, u64)>, u64) {
        let candidates: Vec<(Item, u64, u64)> = engine
            .candidates()
            .map(|c| (c.item, c.suffix_count, c.admitted_at))
            .collect();
        (engine.seen(), candidates, engine.tracked_items() as u64)
    }

    fn skewed_stream(len: usize, universe: u64) -> Vec<Item> {
        (0..len as u64)
            .map(|i| {
                let z = i
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                if z % 3 == 0 {
                    z % 4
                } else {
                    z % universe
                }
            })
            .collect()
    }

    /// The engine-level batch ≡ loop law: any chunking leaves exactly the
    /// per-item loop's state, RNG position included (checked by draining
    /// the RNGs after ingestion).
    #[test]
    fn batch_equals_loop_including_rng_position() {
        let stream = skewed_stream(5_000, 97);
        for chunk_size in [1usize, 7, 64, 1_000, 5_000] {
            let mut looped = SkipAheadEngine::with_seed(8, 99);
            for &x in &stream {
                looped.update(x);
            }
            let mut batched = SkipAheadEngine::with_seed(8, 99);
            for chunk in stream.chunks(chunk_size) {
                batched.update_batch(chunk);
            }
            assert_eq!(
                engine_state_fingerprint(&looped),
                engine_state_fingerprint(&batched),
                "chunk size {chunk_size}"
            );
            for _ in 0..32 {
                assert_eq!(
                    looped.rng_mut().next_u64(),
                    batched.rng_mut().next_u64(),
                    "RNG position diverged (chunk size {chunk_size})"
                );
            }
        }
    }

    /// The observer variant reports every update exactly once, as ordered
    /// runs summing to the batch length, and leaves the same state as the
    /// plain batch path.
    #[test]
    fn update_batch_with_reports_complete_ordered_runs() {
        let stream = skewed_stream(3_000, 31);
        let mut plain = SkipAheadEngine::with_seed(4, 7);
        plain.update_batch(&stream);
        let mut observed = SkipAheadEngine::with_seed(4, 7);
        let mut replayed: Vec<Item> = Vec::new();
        observed.update_batch_with(&stream, |item, count| {
            for _ in 0..count {
                replayed.push(item);
            }
        });
        assert_eq!(replayed, stream, "observer must see every update in order");
        assert_eq!(
            engine_state_fingerprint(&plain),
            engine_state_fingerprint(&observed)
        );
        for _ in 0..32 {
            assert_eq!(plain.rng_mut().next_u64(), observed.rng_mut().next_u64());
        }
    }

    /// Suffix counts reconstructed through the shared table agree with
    /// naive per-slot counting for every candidate, at several points.
    #[test]
    fn candidates_report_exact_suffix_counts() {
        let stream = skewed_stream(4_000, 53);
        let mut engine = SkipAheadEngine::with_seed(6, 11);
        // Per-slot naive counters, positionally aligned with `candidates()`
        // (every slot admits at position 1, so the slot order is stable and
        // fully held from the first update on).
        let mut naive: Vec<(Item, u64)> = Vec::new();
        for (t, &item) in stream.iter().enumerate() {
            engine.update(item);
            let held: Vec<Candidate> = engine.candidates().collect();
            naive = held
                .iter()
                .enumerate()
                .map(|(k, c)| {
                    if c.admitted_at == (t + 1) as u64 {
                        // (Re-)admitted on this very update: the admitted
                        // occurrence is excluded from the suffix.
                        (c.item, 0)
                    } else {
                        let (prev_item, prev_count) = naive[k];
                        assert_eq!(prev_item, c.item, "slot {k} changed without re-admission");
                        (c.item, prev_count + u64::from(c.item == item))
                    }
                })
                .collect();
            if t % 997 == 0 || t + 1 == stream.len() {
                for (c, &(slot_item, count)) in held.iter().zip(naive.iter()) {
                    assert_eq!(c.item, slot_item);
                    assert_eq!(c.suffix_count, count, "at t={t}");
                }
            }
        }
    }

    /// The shared table never tracks more items than there are slots once
    /// every slot holds something, and admission positions are monotone
    /// plausible (1-based, ≤ seen).
    #[test]
    fn table_is_garbage_collected_and_admissions_are_in_range() {
        let mut engine = SkipAheadEngine::with_seed(8, 3);
        for t in 0..20_000u64 {
            engine.update(t % 97);
        }
        assert!(
            engine.tracked_items() <= 8,
            "tracked {}",
            engine.tracked_items()
        );
        for c in engine.candidates() {
            assert!(c.admitted_at >= 1 && c.admitted_at <= engine.seen());
        }
    }

    /// `first_accepted` consumes one RNG draw per held slot scanned (the
    /// coin for the accepted slot included), preserving the framework's
    /// draw sequence.
    #[test]
    fn first_accepted_scans_in_slot_order() {
        let mut engine = SkipAheadEngine::with_seed(4, 5);
        for &x in &[9u64, 9, 9, 9] {
            engine.update(x);
        }
        // All slots hold item 9; accept-with-certainty returns it and
        // consumes exactly one draw.
        let mut twin = SkipAheadEngine::with_seed(4, 5);
        for &x in &[9u64, 9, 9, 9] {
            twin.update(x);
        }
        assert_eq!(engine.first_accepted(|_, _| 1.0), Some(9));
        twin.rng_mut().gen_bool(1.0); // mirror the single coin
        for _ in 0..8 {
            assert_eq!(engine.rng_mut().next_u64(), twin.rng_mut().next_u64());
        }
        // Reject-with-certainty scans everything and returns None.
        assert_eq!(
            SkipAheadEngine::with_seed(4, 5).first_accepted(|_, _| 0.0),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one sampler instance")]
    fn zero_slots_panics() {
        let _ = SkipAheadEngine::with_seed(0, 1);
    }

    /// Structural merge law on item-disjoint streams: the merged engine's
    /// `seen` is the sum, every merged candidate equals one parent's
    /// candidate (admission position translated into concatenation
    /// coordinates), and its suffix count is exactly the number of
    /// occurrences of the item after that position in the concatenated
    /// stream.
    #[test]
    fn merge_translates_candidates_and_suffix_counts_exactly() {
        // Disjoint item ranges: evens to A, odds to B.
        let stream_a: Vec<Item> = skewed_stream(2_000, 40).iter().map(|&x| 2 * x).collect();
        let stream_b: Vec<Item> = skewed_stream(1_500, 40)
            .iter()
            .map(|&x| 2 * x + 1)
            .collect();
        let mut a = SkipAheadEngine::with_seed(6, 1);
        a.update_batch(&stream_a);
        let mut b = SkipAheadEngine::with_seed(6, 2);
        b.update_batch(&stream_b);
        let parents: Vec<(Item, u64, u64)> = a
            .candidates()
            .map(|c| (c.item, c.suffix_count, c.admitted_at))
            .chain(b.candidates().map(|c| {
                (
                    c.item,
                    c.suffix_count,
                    stream_a.len() as u64 + c.admitted_at,
                )
            }))
            .collect();
        let mut coins = Xoshiro256::seed_from_u64(7);
        let merged = a.merge(b, &mut coins);
        assert_eq!(
            merged.seen(),
            (stream_a.len() + stream_b.len()) as u64,
            "merged seen must be the sum"
        );
        let concat: Vec<Item> = stream_a.iter().chain(&stream_b).copied().collect();
        let candidates: Vec<Candidate> = merged.candidates().collect();
        assert_eq!(candidates.len(), 6, "all slots stay held through a merge");
        for c in &candidates {
            assert!(
                parents.contains(&(c.item, c.suffix_count, c.admitted_at)),
                "merged candidate {c:?} not drawn from either parent"
            );
            let exact = concat[c.admitted_at as usize..]
                .iter()
                .filter(|&&x| x == c.item)
                .count() as u64;
            assert_eq!(
                c.suffix_count, exact,
                "suffix count wrong for disjoint-stream merge"
            );
        }
        assert!(merged.tracked_items() <= merged.slot_count());
    }

    /// Weighted slot selection: over many seeds the fraction of merged
    /// slots drawn from the larger engine approaches its share of the
    /// combined stream.
    #[test]
    fn merge_weights_slots_by_seen_counts() {
        let long: Vec<Item> = vec![1; 3_000];
        let short: Vec<Item> = vec![2; 1_000];
        let mut from_long = 0usize;
        let mut slots = 0usize;
        for seed in 0..200u64 {
            let mut a = SkipAheadEngine::with_seed(8, seed);
            a.update_batch(&long);
            let mut b = SkipAheadEngine::with_seed(8, 1_000 + seed);
            b.update_batch(&short);
            let mut coins = Xoshiro256::seed_from_u64(2_000 + seed);
            let merged = a.merge(b, &mut coins);
            for c in merged.candidates() {
                slots += 1;
                if c.item == 1 {
                    from_long += 1;
                }
            }
        }
        let share = from_long as f64 / slots as f64;
        assert!(
            (0.70..0.80).contains(&share),
            "long-stream share {share} should be near 0.75"
        );
    }

    /// Merging with an engine that has seen nothing is the identity (in
    /// either direction), and the merged engine keeps ingesting correctly.
    #[test]
    fn merge_with_empty_engine_is_identity() {
        let stream = skewed_stream(500, 13);
        let mut fed = SkipAheadEngine::with_seed(4, 3);
        fed.update_batch(&stream);
        let fingerprint = engine_state_fingerprint(&fed);
        let mut coins = Xoshiro256::seed_from_u64(9);
        let merged = fed.merge(SkipAheadEngine::with_seed(4, 4), &mut coins);
        assert_eq!(engine_state_fingerprint(&merged), fingerprint);
        let mut coins = Xoshiro256::seed_from_u64(10);
        let merged = SkipAheadEngine::with_seed(4, 5).merge(merged, &mut coins);
        assert_eq!(engine_state_fingerprint(&merged), fingerprint);
        let mut grown = merged;
        grown.update_batch(&stream);
        assert_eq!(grown.seen(), 2 * stream.len() as u64);
        for c in grown.candidates() {
            assert!(c.admitted_at >= 1 && c.admitted_at <= grown.seen());
        }
    }

    #[test]
    #[should_panic(expected = "equal slot counts")]
    fn merge_rejects_mismatched_slot_counts() {
        let mut a = SkipAheadEngine::with_seed(4, 1);
        let mut b = SkipAheadEngine::with_seed(5, 2);
        a.update(1);
        b.update(2);
        let mut coins = Xoshiro256::seed_from_u64(3);
        let _ = a.merge(b, &mut coins);
    }
}
