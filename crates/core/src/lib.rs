//! # tps-core — Truly Perfect Samplers for Data Streams and Sliding Windows
//!
//! A Rust implementation of the samplers of Jayaram, Woodruff and Zhou,
//! *"Truly Perfect Samplers for Data Streams and Sliding Windows"*
//! (PODS 2022, arXiv:2108.12017).
//!
//! A `G`-sampler outputs a coordinate `i` of the stream's frequency vector
//! `f` with probability `(1 ± ε)·G(f_i)/Σ_j G(f_j) ± γ`. It is *perfect* when
//! `ε = 0` and `γ = 1/poly(n)`, and **truly perfect** when `ε = γ = 0`: the
//! conditional output distribution equals the target exactly. Truly perfect
//! samplers compose cleanly (no bias accumulation across repeated use), leak
//! nothing beyond the sampled index (perfect security), and stay correct
//! under adaptive re-querying.
//!
//! ## What this crate provides
//!
//! * [`engine`] — the skip-ahead reservoir engine shared by every
//!   timestamp-based sampler: reservoir slots, the skip-ahead replacement
//!   schedule, the shared suffix-count table (`O(1)` expected update time)
//!   and the amortised batch ingestion path, audited in one place.
//! * [`framework`] — the generic truly perfect `G`-sampler for insertion-only
//!   streams (Framework 1.3 / Theorem 3.1): a [`engine::SkipAheadEngine`]
//!   plus a telescoping rejection step driven by a certain normaliser `ζ`.
//! * [`lp`] — truly perfect `L_p` samplers for `p ∈ (0, 2]`
//!   (Theorems 1.4, 3.3–3.5), using a deterministic Misra–Gries normaliser
//!   for `p > 1`.
//! * [`mestimators`] — truly perfect samplers for the `L_1–L_2`, Fair, Huber
//!   (Corollary 3.6) and Tukey (Theorem 5.4) M-estimators.
//! * [`matrix`] — truly perfect row samplers for matrix norms
//!   (Theorem 3.7).
//! * [`sliding`] — sliding-window truly perfect `G`- and `L_p`-samplers
//!   (Theorem 4.1, Corollary 4.2, Algorithm 6).
//! * [`f0`] — truly perfect `F_0` (support) samplers (Theorem 5.2,
//!   Corollary 5.3) and the random-oracle comparator (Remark 5.1).
//! * [`random_order`] — collision-based truly perfect `L_2` and integer
//!   `p > 2` samplers for random-order streams (Theorems 1.6, 1.7).
//! * [`perfect_baselines`] — the *non*-truly-perfect comparators: a
//!   duplication/exponential-scaling perfect sampler in the style of
//!   Jayaram–Woodruff (FOCS 2018) and a configurable γ-additive reference
//!   sampler, used by the separation experiments.
//! * [`turnstile`] — the strict-turnstile multi-pass samplers (Theorem 1.5,
//!   Theorem D.3) and the equality-reduction harness behind the turnstile
//!   lower bound (Theorem 1.2).
//! * [`composition`] — the composition / privacy-drift harness from the
//!   paper's motivation: measuring how sampling error accumulates across
//!   many independent runs.
//! * [`sharded`] — the scatter-gather front-end: hash- or round-robin-
//!   partitioned parallel ingest across `k` shard instances, answered by
//!   query-time merging (`tps_streams::MergeableSampler`).
//! * [`runtime`] — the persistent sharded runtime underneath [`sharded`]:
//!   one long-lived worker thread per shard behind a bounded SPSC command
//!   ring, with configurable backpressure and consistent-cut snapshot
//!   barriers for snapshot-isolated queries.
//!
//! ## Quick example
//!
//! ```
//! use tps_core::lp::TrulyPerfectLpSampler;
//! use tps_streams::{SampleOutcome, StreamSampler};
//!
//! // A truly perfect L2 sampler over a universe of 1024 items.
//! let mut sampler = TrulyPerfectLpSampler::new(2.0, 1024, 0.05, 42);
//! for item in [3u64, 3, 3, 7, 7, 11] {
//!     sampler.update(item);
//! }
//! match sampler.sample() {
//!     SampleOutcome::Index(i) => println!("sampled coordinate {i}"),
//!     SampleOutcome::Empty => println!("empty stream"),
//!     SampleOutcome::Fail => println!("this run failed; retry with a fresh instance"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod composition;
pub mod engine;
pub mod f0;
pub mod framework;
pub mod lp;
pub mod matrix;
pub mod mestimators;
pub mod perfect_baselines;
pub mod random_order;
pub mod runtime;
pub mod sampler_unit;
pub mod sharded;
pub mod sliding;
pub mod turnstile;

pub use engine::SkipAheadEngine;
pub use framework::{MeasureNormalizer, RejectionNormalizer, TrulyPerfectGSampler};
pub use lp::TrulyPerfectLpSampler;
pub use runtime::RuntimeStats;
pub use sampler_unit::SamplerUnit;
pub use sharded::{
    hash_route, QueryCacheStats, ShardedSampler, ShardedSamplerBuilder, ShardingStrategy,
};
pub use turnstile::StrictTurnstileF0Sampler;
// The typed query surface is defined once in `tps_streams` and re-exported
// here so in-process callers of `ShardedSampler::query` need only this
// crate.
pub use tps_streams::{QueryConsistency, QueryOptions, QuerySnapshot};
