//! Composition / drift experiments (the motivation in Section 1 of the
//! paper).
//!
//! When a sampler is re-run on many successive portions of a stream (one per
//! minute of network traffic, one per shard of a distributed database, …),
//! per-run error composes. For a truly perfect sampler the only error is
//! multinomial sampling noise, which grows like `√s` over `s` portions; for
//! a `(0, γ, δ)` sampler the additive bias `γ` accumulates linearly, and the
//! joint distribution of the samples drifts arbitrarily far from the truth.
//! This module measures that drift so the E4 experiment (and the
//! `composition_drift` example) can put numbers on the paper's argument.

use tps_streams::frequency::FrequencyVector;
use tps_streams::stats::{expected_sampling_tv, SampleHistogram};
use tps_streams::{Item, StreamSampler};

/// The measured drift of repeated sampling across stream portions.
#[derive(Debug, Clone)]
pub struct CompositionReport {
    /// Total-variation distance between the empirical sample distribution
    /// and the exact target, per portion.
    pub per_portion_tv: Vec<f64>,
    /// Running sum of the per-portion TV distances — an upper bound proxy
    /// for the joint-distribution drift, the quantity the paper's
    /// motivation discusses.
    pub cumulative_drift: Vec<f64>,
    /// The expected per-portion TV distance of an *exact* sampler with the
    /// same number of draws (pure multinomial noise), for reference.
    pub expected_noise: Vec<f64>,
    /// Observed failure rate across all portions.
    pub fail_rate: f64,
}

impl CompositionReport {
    /// The final cumulative drift after all portions.
    pub fn total_drift(&self) -> f64 {
        self.cumulative_drift.last().copied().unwrap_or(0.0)
    }

    /// The final cumulative noise floor.
    pub fn total_noise_floor(&self) -> f64 {
        self.expected_noise.iter().sum()
    }

    /// The ratio of measured drift to the noise floor: ≈ 1 for a truly
    /// perfect sampler, and growing with the number of portions for a
    /// sampler with additive bias.
    pub fn drift_ratio(&self) -> f64 {
        let noise = self.total_noise_floor();
        if noise <= 0.0 {
            return 0.0;
        }
        self.total_drift() / noise
    }
}

/// Runs the composition experiment: for each portion, draw
/// `samples_per_portion` outcomes from *fresh, independent* sampler
/// instances produced by `factory` (seeded distinctly per draw), and compare
/// against the portion's exact target distribution given by `target_of`.
pub fn run_composition<S, F, T>(
    portions: &[Vec<Item>],
    samples_per_portion: usize,
    mut factory: F,
    target_of: T,
) -> CompositionReport
where
    S: StreamSampler,
    F: FnMut(u64) -> S,
    T: Fn(&FrequencyVector) -> std::collections::HashMap<Item, f64>,
{
    let mut per_portion_tv = Vec::with_capacity(portions.len());
    let mut cumulative_drift = Vec::with_capacity(portions.len());
    let mut expected_noise = Vec::with_capacity(portions.len());
    let mut running = 0.0;
    let mut fails = 0u64;
    let mut draws = 0u64;
    for (portion_idx, portion) in portions.iter().enumerate() {
        let truth = FrequencyVector::from_stream(portion);
        let target = target_of(&truth);
        let mut histogram = SampleHistogram::new();
        for draw in 0..samples_per_portion {
            let seed = (portion_idx as u64) << 32 | draw as u64;
            let mut sampler = factory(seed);
            sampler.update_all(portion);
            histogram.record(sampler.sample());
        }
        fails += histogram.fails();
        draws += histogram.total_draws();
        let tv = histogram.tv_distance(&target);
        running += tv;
        per_portion_tv.push(tv);
        cumulative_drift.push(running);
        expected_noise.push(expected_sampling_tv(&target, histogram.successes().max(1)));
    }
    CompositionReport {
        per_portion_tv,
        cumulative_drift,
        expected_noise,
        fail_rate: if draws == 0 {
            0.0
        } else {
            fails as f64 / draws as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::TrulyPerfectLpSampler;
    use crate::perfect_baselines::BiasedReferenceSampler;
    use tps_random::default_rng;
    use tps_streams::generators::{split_into_portions, zipfian_stream};

    fn portions() -> Vec<Vec<Item>> {
        let mut rng = default_rng(1);
        let stream = zipfian_stream(&mut rng, 32, 4_000, 1.0);
        split_into_portions(&stream, 8)
    }

    #[test]
    fn truly_perfect_sampler_stays_at_the_noise_floor() {
        let report = run_composition(
            &portions(),
            400,
            |seed| TrulyPerfectLpSampler::new(1.0, 32, 0.1, seed),
            |truth| truth.lp_distribution(1.0),
        );
        assert_eq!(report.fail_rate, 0.0);
        // Drift should be explained by multinomial noise (ratio near 1).
        let ratio = report.drift_ratio();
        assert!(ratio < 1.6, "truly perfect drift ratio {ratio} too large");
    }

    #[test]
    fn biased_sampler_drifts_linearly() {
        let gamma = 0.25;
        let report = run_composition(
            &portions(),
            400,
            |seed| {
                BiasedReferenceSampler::new(
                    TrulyPerfectLpSampler::new(1.0, 32, 0.1, seed),
                    gamma,
                    // Bias towards the lightest Zipf item so the injected
                    // error is clearly visible above the noise floor.
                    31,
                    seed ^ 0xABCD,
                )
            },
            |truth| truth.lp_distribution(1.0),
        );
        // Per-portion TV should sit near the injected bias, so cumulative
        // drift is ≈ portions·γ·(1 − mass of the bias target).
        let ratio = report.drift_ratio();
        assert!(
            ratio > 2.0,
            "biased drift ratio {ratio} should clearly exceed the noise floor"
        );
        assert!(
            report.total_drift() > 0.5 * gamma * report.per_portion_tv.len() as f64 * 0.5,
            "cumulative drift {} too small",
            report.total_drift()
        );
    }

    #[test]
    fn report_accessors_are_consistent() {
        let report = CompositionReport {
            per_portion_tv: vec![0.1, 0.2],
            cumulative_drift: vec![0.1, 0.3],
            expected_noise: vec![0.05, 0.05],
            fail_rate: 0.0,
        };
        assert!((report.total_drift() - 0.3).abs() < 1e-12);
        assert!((report.total_noise_floor() - 0.1).abs() < 1e-12);
        assert!((report.drift_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_portions_produce_empty_report() {
        let report = run_composition(
            &[],
            10,
            |seed| TrulyPerfectLpSampler::new(1.0, 8, 0.1, seed),
            |truth| truth.lp_distribution(1.0),
        );
        assert!(report.per_portion_tv.is_empty());
        assert_eq!(report.total_drift(), 0.0);
    }
}
