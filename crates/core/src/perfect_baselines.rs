//! Baseline samplers that are *not* truly perfect, reproduced for the
//! separation experiments.
//!
//! The paper's headline claims are comparative: truly perfect samplers have
//! `γ = 0` additive error and `O(1)` update time, whereas the prior perfect
//! samplers of Jayaram–Woodruff (FOCS 2018) pay `γ = 1/poly(n)` *and* an
//! update time that grows polynomially with the accuracy exponent `c` in
//! `γ = n^{-c}` (they duplicate every coordinate `n^c` times before
//! sketching). Two baselines reproduce these weaknesses in a controlled way:
//!
//! * [`ExponentialScalingSampler`] — the duplication + exponential-scaling +
//!   sketch-argmax mechanism. Its `duplication` parameter plays the role of
//!   `n^c`: update time is `Θ(duplication · sketch_rows)` per stream update,
//!   and its output distribution carries a small additive error coming from
//!   the finite duplication and the sketch noise.
//! * [`BiasedReferenceSampler`] — an adversarially simple `(0, γ, δ)`
//!   sampler: it wraps any truly perfect sampler and injects exactly `γ`
//!   additive error towards a designated coordinate. This is the worst case
//!   allowed by Definition 1.1 and is what the composition (E4) and
//!   equality-attack (E9) experiments feed on.

use std::collections::HashSet;
use tps_random::{exponential::indexed_exponential, KWiseHash, StreamRng, Xoshiro256};
use tps_streams::space::{hashset_bytes, vec_bytes};
use tps_streams::{Item, SampleOutcome, SpaceUsage, StreamSampler};

/// A small CountSketch over real-valued updates, private to the baseline
/// (the shared [`tps_sketches::CountSketch`] is integer-valued).
#[derive(Debug, Clone)]
struct FloatCountSketch {
    rows: usize,
    cols: usize,
    table: Vec<f64>,
    bucket_hashes: Vec<KWiseHash>,
    sign_hashes: Vec<KWiseHash>,
}

impl FloatCountSketch {
    fn new<R: StreamRng>(rng: &mut R, rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            table: vec![0.0; rows * cols],
            bucket_hashes: (0..rows).map(|_| KWiseHash::new(rng, 2)).collect(),
            sign_hashes: (0..rows).map(|_| KWiseHash::new(rng, 4)).collect(),
        }
    }

    fn update(&mut self, key: u64, weight: f64) {
        for r in 0..self.rows {
            let c = self.bucket_hashes[r].bucket(key, self.cols);
            let s = self.sign_hashes[r].sign(key) as f64;
            self.table[r * self.cols + c] += s * weight;
        }
    }

    fn estimate(&self, key: u64) -> f64 {
        let mut row_estimates: Vec<f64> = (0..self.rows)
            .map(|r| {
                let c = self.bucket_hashes[r].bucket(key, self.cols);
                self.sign_hashes[r].sign(key) as f64 * self.table[r * self.cols + c]
            })
            .collect();
        row_estimates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        row_estimates[self.rows / 2]
    }

    fn space_bytes(&self) -> usize {
        vec_bytes(&self.table)
            + (self.bucket_hashes.len() + self.sign_hashes.len()) * std::mem::size_of::<KWiseHash>()
    }
}

/// The duplication + exponential-scaling perfect `L_p` sampler baseline
/// (after Jayaram–Woodruff; Algorithms 7–8 of the paper reproduce the same
/// mechanism for `p < 1`).
///
/// Every stream update to coordinate `i` is expanded into `duplication`
/// updates to virtual coordinates `(i, j)`, each scaled by
/// `1/E_{i,j}^{1/p}` for a per-coordinate exponential variable derived
/// deterministically from the seed, and fed to a CountSketch. At query time
/// the sampler reports the coordinate whose duplicated, scaled estimate is
/// largest. The output distribution approaches `|f_i|^p/F_p` as
/// `duplication → ∞` and the sketch grows; for finite parameters it carries
/// a small additive error — which is exactly the property the experiments
/// measure.
#[derive(Debug)]
pub struct ExponentialScalingSampler {
    p: f64,
    duplication: usize,
    sketch: FloatCountSketch,
    observed: HashSet<Item>,
    scaling_seed: u64,
    processed: u64,
}

impl ExponentialScalingSampler {
    /// Creates the baseline with the given duplication factor (the `n^c`
    /// knob of the original algorithm) and sketch width.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 2]` and `duplication ≥ 1`.
    pub fn new(p: f64, duplication: usize, sketch_cols: usize, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 2.0, "p must be in (0, 2]");
        assert!(duplication >= 1, "duplication factor must be at least 1");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        Self {
            p,
            duplication,
            sketch: FloatCountSketch::new(&mut rng, 5, sketch_cols.max(8)),
            observed: HashSet::new(),
            scaling_seed: seed ^ 0xD0D0_CACA_0000_0001,
            processed: 0,
        }
    }

    /// The duplication factor (per-update work multiplier).
    pub fn duplication(&self) -> usize {
        self.duplication
    }

    fn scaled_weight(&self, item: Item, duplicate: usize) -> f64 {
        let e = indexed_exponential(self.scaling_seed, item * 1_000_003 + duplicate as u64);
        1.0 / e.powf(1.0 / self.p)
    }
}

impl StreamSampler for ExponentialScalingSampler {
    fn update(&mut self, item: Item) {
        self.processed += 1;
        self.observed.insert(item);
        // The Θ(duplication) work per update is the point of this baseline.
        for j in 0..self.duplication {
            let key = item * self.duplication as u64 + j as u64;
            let weight = self.scaled_weight(item, j);
            self.sketch.update(key, weight);
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.processed == 0 {
            return SampleOutcome::Empty;
        }
        let mut best: Option<(Item, f64)> = None;
        for &item in &self.observed {
            for j in 0..self.duplication {
                let key = item * self.duplication as u64 + j as u64;
                let estimate = self.sketch.estimate(key).abs();
                if best.map(|(_, b)| estimate > b).unwrap_or(true) {
                    best = Some((item, estimate));
                }
            }
        }
        match best {
            Some((item, _)) => SampleOutcome::Index(item),
            None => SampleOutcome::Fail,
        }
    }
}

impl SpaceUsage for ExponentialScalingSampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.sketch.space_bytes() + hashset_bytes(&self.observed)
    }
}

/// A `(0, γ, δ)`-sampler with *exactly* `γ` additive error: with probability
/// `γ` the wrapped sampler's answer is replaced by a fixed designated
/// coordinate. Definition 1.1 permits this behaviour for any
/// `γ ≥ 1/poly(n)` sampler; the composition and equality-attack experiments
/// use it as the worst-case representative of "perfect but not truly
/// perfect".
#[derive(Debug)]
pub struct BiasedReferenceSampler<S: StreamSampler> {
    inner: S,
    gamma: f64,
    bias_target: Item,
    rng: Xoshiro256,
}

impl<S: StreamSampler> BiasedReferenceSampler<S> {
    /// Wraps `inner`, redirecting each successful sample to `bias_target`
    /// with probability `gamma`.
    ///
    /// # Panics
    ///
    /// Panics unless `γ ∈ [0, 1)`.
    pub fn new(inner: S, gamma: f64, bias_target: Item, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0,1)");
        Self {
            inner,
            gamma,
            bias_target,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// The injected additive error `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl<S: StreamSampler> StreamSampler for BiasedReferenceSampler<S> {
    fn update(&mut self, item: Item) {
        self.inner.update(item);
    }

    fn sample(&mut self) -> SampleOutcome {
        match self.inner.sample() {
            SampleOutcome::Index(i) => {
                if self.rng.gen_bool(self.gamma) {
                    SampleOutcome::Index(self.bias_target)
                } else {
                    SampleOutcome::Index(i)
                }
            }
            other => other,
        }
    }
}

impl<S: StreamSampler + SpaceUsage> SpaceUsage for BiasedReferenceSampler<S> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.inner.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::TrulyPerfectLpSampler;
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::stats::SampleHistogram;

    fn skewed_stream() -> Vec<Item> {
        [(1u64, 9u64), (2, 3), (3, 1)]
            .iter()
            .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
            .collect()
    }

    #[test]
    fn exponential_scaling_sampler_tracks_l2_distribution_roughly() {
        let stream = skewed_stream();
        let target = FrequencyVector::from_stream(&stream).lp_distribution(2.0);
        let mut histogram = SampleHistogram::new();
        for seed in 0..3_000u64 {
            let mut s = ExponentialScalingSampler::new(2.0, 32, 64, 90_000 + seed);
            s.update_all(&stream);
            histogram.record(s.sample());
        }
        assert_eq!(histogram.fails(), 0);
        let tv = histogram.tv_distance(&target);
        // Close to the target but NOT statistically exact: the point of the
        // baseline is the residual bias, so accept a wide band here.
        assert!(tv < 0.2, "TV {tv} unexpectedly large even for the baseline");
    }

    #[test]
    fn update_cost_scales_with_duplication() {
        // Not a timing test (that is the bench's job): verify the per-update
        // sketch work is Θ(duplication) by construction via the sketch state
        // touched.
        let mut cheap = ExponentialScalingSampler::new(2.0, 4, 32, 1);
        let mut costly = ExponentialScalingSampler::new(2.0, 64, 32, 1);
        cheap.update(5);
        costly.update(5);
        assert_eq!(cheap.duplication(), 4);
        assert_eq!(costly.duplication(), 64);
    }

    #[test]
    fn biased_sampler_has_measurable_additive_error() {
        let stream = skewed_stream();
        let gamma = 0.2;
        let target = FrequencyVector::from_stream(&stream).lp_distribution(1.0);
        let mut histogram = SampleHistogram::new();
        for seed in 0..8_000u64 {
            let inner = TrulyPerfectLpSampler::new(1.0, 16, 0.1, seed);
            let mut biased = BiasedReferenceSampler::new(inner, gamma, 3, 100_000 + seed);
            biased.update_all(&stream);
            histogram.record(biased.sample());
        }
        let tv = histogram.tv_distance(&target);
        // The injected error shows up as ~γ·(1 - p_target(3)) in TV.
        let expected_bias = gamma * (1.0 - target[&3]);
        assert!(
            (tv - expected_bias).abs() < 0.05,
            "TV {tv} should be near the injected bias {expected_bias}"
        );
    }

    #[test]
    fn zero_gamma_wrapper_is_transparent() {
        let stream = skewed_stream();
        let target = FrequencyVector::from_stream(&stream).lp_distribution(1.0);
        let mut histogram = SampleHistogram::new();
        for seed in 0..4_000u64 {
            let inner = TrulyPerfectLpSampler::new(1.0, 16, 0.1, seed);
            let mut wrapped = BiasedReferenceSampler::new(inner, 0.0, 3, seed);
            wrapped.update_all(&stream);
            histogram.record(wrapped.sample());
        }
        assert!(histogram.tv_distance(&target) < 0.03);
    }

    #[test]
    fn empty_stream_reports_empty() {
        let mut s = ExponentialScalingSampler::new(1.0, 4, 16, 1);
        assert_eq!(s.sample(), SampleOutcome::Empty);
    }
}
