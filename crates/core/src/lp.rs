//! Truly perfect `L_p` samplers for insertion-only streams
//! (Theorems 1.4 and 3.3–3.5 of the paper).
//!
//! The target distribution is `Pr[i] = |f_i|^p / F_p`. Two regimes:
//!
//! * **`p ∈ (0, 1]`** (Theorem 3.5): the increment `x^p − (x−1)^p` is at most
//!   1, so the closed-form normaliser `ζ = 1` works and
//!   `O(m^{1−p} log 1/δ)` parallel instances suffice.
//! * **`p ∈ [1, 2]`** (Theorem 3.4): increments grow like `p·‖f‖_∞^{p−1}`,
//!   so the sampler carries a single deterministic Misra–Gries summary with
//!   `⌈n^{1−1/p}⌉` counters. The certain bound
//!   `‖f‖_∞ ≤ Z ≤ ‖f‖_∞ + m/n^{1−1/p}` yields `ζ = p·Z^{p−1}` and an
//!   acceptance probability of at least `Ω(n^{−(1−1/p)})` per instance, so
//!   `O(n^{1−1/p} log 1/δ)` instances suffice — and the normaliser is
//!   deterministic, so no additive error is introduced.
//!
//! For `p = 1` both regimes degenerate to plain reservoir sampling
//! (`ζ = 1`, one instance), matching the classical fact that reservoir
//! sampling is already a truly perfect `L_1` sampler.

use crate::framework::{
    recommended_instances, MeasureNormalizer, MisraGriesNormalizer, TrulyPerfectGSampler,
};
use tps_random::StreamRng;
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::{Item, Lp, MergeableSampler, SampleOutcome, SpaceUsage, StreamSampler};

/// Which normaliser the sampler is running with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    /// `p ≤ 1`: constant increment bound.
    Fractional,
    /// `p ∈ (1, 2]`: Misra–Gries bound on `‖f‖_∞`.
    MisraGries,
}

/// A truly perfect `L_p` sampler for insertion-only streams.
#[derive(Debug, Clone)]
pub struct TrulyPerfectLpSampler {
    p: f64,
    flavor: Flavor,
    fractional: Option<TrulyPerfectGSampler<Lp, MeasureNormalizer<Lp>>>,
    heavy: Option<TrulyPerfectGSampler<Lp, MisraGriesNormalizer>>,
}

impl TrulyPerfectLpSampler {
    /// Creates a truly perfect `L_p` sampler for `p ∈ [1, 2]` over the
    /// universe `[0, n)` with failure probability at most `delta`.
    ///
    /// Space is `O(n^{1−1/p}·polylog)` as in Theorem 1.4; the universe size
    /// `n` is needed to size the instance pool and the Misra–Gries summary.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [1, 2]`, `n ≥ 1` and `δ ∈ (0, 1)`.
    pub fn new(p: f64, n: u64, delta: f64, seed: u64) -> Self {
        assert!(
            (1.0..=2.0).contains(&p),
            "use `fractional` for p < 1 (got p = {p})"
        );
        assert!(n >= 1, "universe must be non-empty");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let exponent = 1.0 - 1.0 / p;
        let pool = (n as f64).powf(exponent).ceil().max(1.0);
        // Per-instance success probability is at least 1/(4·n^{1-1/p})
        // (Theorem 3.4); (1 - q)^k ≤ δ with q = 1/(4·pool). For p = 1 the
        // acceptance probability is exactly 1, so a single instance
        // (classical reservoir sampling) suffices.
        let q = if p == 1.0 {
            1.0
        } else {
            (1.0 / (4.0 * pool)).min(1.0)
        };
        let instances = if q >= 1.0 {
            1
        } else {
            (delta.ln() / (1.0 - q).ln()).ceil().max(1.0) as usize
        };
        let counters = pool as usize;
        let g = Lp::new(p);
        let normalizer = MisraGriesNormalizer::new(p, counters);
        let sampler = TrulyPerfectGSampler::with_instances(g, normalizer, instances, seed);
        Self {
            p,
            flavor: Flavor::MisraGries,
            fractional: None,
            heavy: Some(sampler),
        }
    }

    /// Creates a truly perfect `L_p` sampler for `p ∈ (0, 1]` sized for
    /// streams of (roughly) `expected_length` updates, with failure
    /// probability at most `delta` at that length (Theorem 3.5; space
    /// `O(m^{1−p} log n)`).
    ///
    /// The sampler remains *correct* for any stream length — only the
    /// failure probability degrades if the stream is much longer than
    /// anticipated.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (0, 1]` and `δ ∈ (0, 1)`.
    pub fn fractional(p: f64, expected_length: u64, delta: f64, seed: u64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "fractional sampler requires p in (0,1] (got p = {p})"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let g = Lp::new(p);
        let instances = recommended_instances(&g, expected_length, delta);
        let normalizer = MeasureNormalizer::new(g);
        let sampler = TrulyPerfectGSampler::with_instances(g, normalizer, instances, seed);
        Self {
            p,
            flavor: Flavor::Fractional,
            fractional: Some(sampler),
            heavy: None,
        }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of parallel sampler instances (the dominant space term).
    pub fn instance_count(&self) -> usize {
        match self.flavor {
            Flavor::Fractional => self.fractional.as_ref().unwrap().instance_count(),
            Flavor::MisraGries => self.heavy.as_ref().unwrap().instance_count(),
        }
    }

    /// Number of updates processed.
    pub fn processed(&self) -> u64 {
        match self.flavor {
            Flavor::Fractional => self.fractional.as_ref().unwrap().processed(),
            Flavor::MisraGries => self.heavy.as_ref().unwrap().processed(),
        }
    }
}

/// Merge by delegating to the underlying `G`-sampler of the matching
/// regime (see [`TrulyPerfectGSampler`]'s merge semantics: exact for
/// hash-partitioned shards; exact for `p = 1` under any partitioning).
impl MergeableSampler for TrulyPerfectLpSampler {
    fn merge(self, other: Self, rng: &mut dyn StreamRng) -> Self {
        assert!(
            (self.p - other.p).abs() < 1e-12 && self.flavor == other.flavor,
            "merging Lp samplers requires equal exponents"
        );
        match self.flavor {
            Flavor::Fractional => Self {
                p: self.p,
                flavor: self.flavor,
                fractional: Some(
                    self.fractional
                        .unwrap()
                        .merge(other.fractional.unwrap(), rng),
                ),
                heavy: None,
            },
            Flavor::MisraGries => Self {
                p: self.p,
                flavor: self.flavor,
                fractional: None,
                heavy: Some(self.heavy.unwrap().merge(other.heavy.unwrap(), rng)),
            },
        }
    }

    fn merge_compatible(&self, other: &Self) -> bool {
        if (self.p - other.p).abs() >= 1e-12 || self.flavor != other.flavor {
            return false;
        }
        match self.flavor {
            Flavor::Fractional => match (&self.fractional, &other.fractional) {
                (Some(a), Some(b)) => a.merge_compatible(b),
                _ => false,
            },
            Flavor::MisraGries => match (&self.heavy, &other.heavy) {
                (Some(a), Some(b)) => a.merge_compatible(b),
                _ => false,
            },
        }
    }
}

impl StreamSampler for TrulyPerfectLpSampler {
    fn update(&mut self, item: Item) {
        match self.flavor {
            Flavor::Fractional => self.fractional.as_mut().unwrap().update(item),
            Flavor::MisraGries => self.heavy.as_mut().unwrap().update(item),
        }
    }

    /// Resolves the `p`-regime once per batch (instead of once per item)
    /// and hands the whole slice to the framework, which drains it through
    /// the shared [`crate::engine::SkipAheadEngine`] batch path.
    fn update_batch(&mut self, items: &[Item]) {
        match self.flavor {
            Flavor::Fractional => self.fractional.as_mut().unwrap().update_batch(items),
            Flavor::MisraGries => self.heavy.as_mut().unwrap().update_batch(items),
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        match self.flavor {
            Flavor::Fractional => self.fractional.as_mut().unwrap().sample(),
            Flavor::MisraGries => self.heavy.as_mut().unwrap().sample(),
        }
    }
}

/// Wire format: the exponent, a regime flag, and the underlying
/// `G`-sampler of the active regime.
impl Snapshot for TrulyPerfectLpSampler {
    const TAG: u16 = codec::tag::LP_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.p);
        match self.flavor {
            Flavor::Fractional => {
                w.put_u8(0);
                self.fractional
                    .as_ref()
                    .expect("fractional regime")
                    .encode_into(w);
            }
            Flavor::MisraGries => {
                w.put_u8(1);
                self.heavy
                    .as_ref()
                    .expect("Misra-Gries regime")
                    .encode_into(w);
            }
        }
    }
}

impl Restore for TrulyPerfectLpSampler {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let p = r.get_f64()?;
        match r.get_u8()? {
            0 => {
                if !(p > 0.0 && p <= 1.0) {
                    return Err(CodecError::InvalidValue {
                        what: "fractional Lp sampler requires p in (0, 1]",
                    });
                }
                let inner: TrulyPerfectGSampler<Lp, MeasureNormalizer<Lp>> =
                    TrulyPerfectGSampler::decode_from(r)?;
                // The exponent travels in three places (sampler, measure,
                // normaliser's measure copy — identical bits in any live
                // state); a crafted snapshot must not smuggle in a
                // disagreeing copy, or the restored sampler would silently
                // target a different distribution than it reports.
                if inner.measure().p().to_bits() != p.to_bits()
                    || inner.normalizer().measure().p().to_bits() != p.to_bits()
                {
                    return Err(CodecError::InvalidValue {
                        what: "Lp sampler, measure and normaliser disagree on the exponent",
                    });
                }
                Ok(Self {
                    p,
                    flavor: Flavor::Fractional,
                    fractional: Some(inner),
                    heavy: None,
                })
            }
            1 => {
                if !(1.0..=2.0).contains(&p) {
                    return Err(CodecError::InvalidValue {
                        what: "Misra-Gries Lp sampler requires p in [1, 2]",
                    });
                }
                let inner: TrulyPerfectGSampler<Lp, MisraGriesNormalizer> =
                    TrulyPerfectGSampler::decode_from(r)?;
                if inner.measure().p().to_bits() != p.to_bits()
                    || inner.normalizer().exponent().to_bits() != p.to_bits()
                {
                    return Err(CodecError::InvalidValue {
                        what: "Lp sampler, measure and normaliser disagree on the exponent",
                    });
                }
                Ok(Self {
                    p,
                    flavor: Flavor::MisraGries,
                    fractional: None,
                    heavy: Some(inner),
                })
            }
            _ => Err(CodecError::InvalidValue {
                what: "Lp regime flag must be 0 or 1",
            }),
        }
    }
}

impl SpaceUsage for TrulyPerfectLpSampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + match self.flavor {
                Flavor::Fractional => self.fractional.as_ref().unwrap().space_bytes(),
                Flavor::MisraGries => self.heavy.as_ref().unwrap().space_bytes(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::stats::SampleHistogram;

    fn stream_from(counts: &[(Item, u64)]) -> Vec<Item> {
        counts
            .iter()
            .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
            .collect()
    }

    fn check_lp_distribution(
        p: f64,
        counts: &[(Item, u64)],
        build: impl Fn(u64) -> TrulyPerfectLpSampler,
        trials: usize,
        tolerance: f64,
        max_fail: f64,
    ) {
        let stream = stream_from(counts);
        let truth = FrequencyVector::from_stream(&stream);
        let target = truth.lp_distribution(p);
        let mut histogram = SampleHistogram::new();
        for seed in 0..trials as u64 {
            let mut sampler = build(seed);
            sampler.update_all(&stream);
            histogram.record(sampler.sample());
        }
        assert!(
            histogram.fail_rate() <= max_fail,
            "p={p}: fail rate {} exceeds {max_fail}",
            histogram.fail_rate()
        );
        let tv = histogram.tv_distance(&target);
        assert!(
            tv < tolerance,
            "p={p}: TV distance {tv} exceeds {tolerance}"
        );
    }

    #[test]
    fn l2_sampler_matches_quadratic_distribution() {
        let counts = [(1u64, 10u64), (2, 5), (3, 2), (4, 1)];
        check_lp_distribution(
            2.0,
            &counts,
            |seed| TrulyPerfectLpSampler::new(2.0, 64, 0.05, 500 + seed),
            5_000,
            0.04,
            0.05,
        );
    }

    #[test]
    fn l1_5_sampler_matches_distribution() {
        let counts = [(7u64, 9u64), (8, 3), (9, 1)];
        check_lp_distribution(
            1.5,
            &counts,
            |seed| TrulyPerfectLpSampler::new(1.5, 32, 0.05, 900 + seed),
            5_000,
            0.04,
            0.05,
        );
    }

    #[test]
    fn l1_sampler_is_reservoir_sampling() {
        let counts = [(1u64, 6u64), (2, 3), (3, 1)];
        check_lp_distribution(
            1.0,
            &counts,
            |seed| TrulyPerfectLpSampler::new(1.0, 16, 0.1, 1_300 + seed),
            5_000,
            0.03,
            0.0,
        );
        // p = 1 needs a single instance.
        assert_eq!(
            TrulyPerfectLpSampler::new(1.0, 1_000_000, 0.3, 1).instance_count(),
            1
        );
    }

    #[test]
    fn half_sampler_matches_sqrt_distribution() {
        let counts = [(1u64, 16u64), (2, 4), (3, 1)];
        check_lp_distribution(
            0.5,
            &counts,
            |seed| TrulyPerfectLpSampler::fractional(0.5, 21, 0.05, 1_700 + seed),
            5_000,
            0.04,
            0.05,
        );
    }

    #[test]
    fn instance_count_grows_like_n_to_one_minus_inv_p() {
        let small = TrulyPerfectLpSampler::new(2.0, 256, 0.1, 1).instance_count();
        let large = TrulyPerfectLpSampler::new(2.0, 4096, 0.1, 1).instance_count();
        let ratio = large as f64 / small as f64;
        // n^{1/2} scaling: ratio should be near (4096/256)^{1/2} = 4.
        assert!((2.5..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn empty_stream_reports_empty() {
        let mut sampler = TrulyPerfectLpSampler::new(2.0, 10, 0.1, 3);
        assert_eq!(sampler.sample(), SampleOutcome::Empty);
        let mut frac = TrulyPerfectLpSampler::fractional(0.5, 100, 0.1, 3);
        assert_eq!(frac.sample(), SampleOutcome::Empty);
    }

    #[test]
    fn only_present_items_are_sampled() {
        for seed in 0..100 {
            let mut sampler = TrulyPerfectLpSampler::new(2.0, 100, 0.2, seed);
            sampler.update_all(&[42, 42, 17]);
            if let SampleOutcome::Index(i) = sampler.sample() {
                assert!(i == 42 || i == 17);
            }
        }
    }

    #[test]
    #[should_panic(expected = "use `fractional`")]
    fn new_rejects_small_p() {
        let _ = TrulyPerfectLpSampler::new(0.5, 10, 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1]")]
    fn fractional_rejects_large_p() {
        let _ = TrulyPerfectLpSampler::fractional(1.5, 10, 0.1, 1);
    }
}
