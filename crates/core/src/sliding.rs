//! Truly perfect samplers for the sliding-window model
//! (Section 4: Algorithm 4 / Theorem 4.1 / Corollary 4.2, and Algorithm 6 /
//! the sliding-window part of Theorem 1.4).
//!
//! In the sliding-window model only the `W` most recent updates are active.
//! The construction keeps *cohorts* of Algorithm-1 sampler units, starting a
//! fresh cohort every `W` updates and retaining the two most recent ones.
//! At query time the older of the two cohorts has seen every active update
//! (its suffix has length at most `2W`), so:
//!
//! * a unit whose sampled timestamp falls inside the window is a uniform
//!   sample of the window's positions (conditioned on being active, which
//!   happens with probability at least 1/2), and
//! * all occurrences counted after that timestamp are themselves active, so
//!   the usual telescoping rejection step applies unchanged.
//!
//! Each cohort *is* one [`SkipAheadEngine`](crate::engine::SkipAheadEngine)
//! — the same skip-ahead + shared-suffix-table core the insertion-only
//! framework runs — plus the window bookkeeping this module owns: the
//! cohort's global start position (to translate engine-local admission
//! positions into stream timestamps), cohort birth/retirement at epoch
//! boundaries, and the activity filter at query time. The engine's batch ≡
//! loop law therefore carries over verbatim; this module only has to split
//! batches at cohort-epoch boundaries.
//!
//! For bounded-increment measures (the M-estimators of Corollary 4.2) the
//! rejection normaliser is the closed-form `ζ`; for `L_p` with `p ∈ (1, 2]`
//! (Algorithm 6) it is `p·F^{p−1}` where `F` is the sliding-window `L_p`
//! norm estimate maintained by a smooth histogram
//! ([`tps_window::SlidingWindowLpEstimate`], Theorem A.5). The estimate is
//! randomized, so — exactly as in the paper — the `L_p` variant's guarantee
//! is conditioned on the estimator's high-probability correctness event,
//! while the M-estimator variant is unconditionally truly perfect.

use crate::engine::SkipAheadEngine;
use tps_random::{StreamRng, Xoshiro256};
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::{
    Item, MeasureFn, SampleOutcome, SlidingWindowSampler, SpaceUsage, Timestamp, WindowSpec,
};
use tps_window::SlidingWindowLpEstimate;

/// A cohort of Algorithm-1 sampler units all started at the same stream
/// position: one shared skip-ahead engine plus the global start offset
/// needed to translate engine-local admission positions into stream
/// timestamps.
///
/// The engine's RNG is split off the manager's at creation. Each cohort
/// owning its own draw sequence keeps replacements *per cohort*
/// independent of how updates are grouped across cohorts, which is what
/// lets the batch path process one cohort at a time and still satisfy the
/// batch ≡ loop law.
#[derive(Debug)]
struct Cohort {
    /// 1-based stream position of the first update this cohort has seen.
    start: Timestamp,
    engine: SkipAheadEngine,
}

impl Cohort {
    fn new(start: Timestamp, size: usize, rng: Xoshiro256) -> Self {
        Self {
            start,
            engine: SkipAheadEngine::new(size, rng),
        }
    }

    /// Global stream position of an engine-local admission position.
    fn global_timestamp(&self, admitted_at: Timestamp) -> Timestamp {
        self.start - 1 + admitted_at
    }
}

/// Shared cohort management for both sliding-window samplers.
#[derive(Debug)]
struct CohortManager {
    window: WindowSpec,
    per_cohort: usize,
    cohorts: Vec<Cohort>,
    time: Timestamp,
    rng: Xoshiro256,
}

impl CohortManager {
    fn new(window: u64, per_cohort: usize, seed: u64) -> Self {
        Self {
            window: WindowSpec::new(window),
            per_cohort,
            cohorts: Vec::new(),
            time: 0,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Starts a fresh cohort if the *next* update opens a new epoch
    /// (positions 1, W+1, 2W+1, …), keeping only the two most recent.
    fn maybe_start_cohort(&mut self) {
        if self.time.is_multiple_of(self.window.width) {
            let cohort_rng = Xoshiro256::seed_from_u64(self.rng.next_u64());
            self.cohorts
                .push(Cohort::new(self.time + 1, self.per_cohort, cohort_rng));
            if self.cohorts.len() > 2 {
                self.cohorts.remove(0);
            }
        }
    }

    fn update(&mut self, item: Item) {
        self.maybe_start_cohort();
        self.time += 1;
        for cohort in &mut self.cohorts {
            cohort.engine.update(item);
        }
    }

    /// Batch path: split the batch at cohort-epoch boundaries (at most one
    /// per `W` updates) and hand each intervening run to the cohorts'
    /// engines in one amortised call.
    fn update_batch(&mut self, items: &[Item]) {
        let width = self.window.width;
        let mut idx = 0;
        while idx < items.len() {
            self.maybe_start_cohort();
            // Updates until the next epoch boundary (the boundary item
            // itself starts the next chunk).
            let until_boundary = (width - self.time % width) as usize;
            let end = (idx + until_boundary).min(items.len());
            let chunk = &items[idx..end];
            self.time += chunk.len() as u64;
            for cohort in &mut self.cohorts {
                cohort.engine.update_batch(chunk);
            }
            idx = end;
        }
    }

    /// Merges two lockstep cohort managers (equal window, per-cohort unit
    /// count and clock) cohort by cohort: the cohorts are positionally
    /// aligned because both managers birthed them at the same epoch
    /// boundaries, so each pair of engines merges through the shared-clock
    /// [`SkipAheadEngine::merge_lockstep`] path — admission positions name
    /// the same global ticks on both sides and are preserved verbatim, so
    /// the activity filter keeps working on the merged cohorts.
    ///
    /// # Panics
    ///
    /// Panics unless windows, unit counts and clocks are all equal.
    fn merge(mut self, mut other: Self) -> Self {
        assert_eq!(
            self.window.width, other.window.width,
            "merging sliding samplers requires equal windows"
        );
        assert_eq!(
            self.per_cohort, other.per_cohort,
            "merging sliding samplers requires equal per-cohort unit counts"
        );
        assert_eq!(
            self.time, other.time,
            "merging sliding samplers requires lockstep clocks"
        );
        let mine = std::mem::take(&mut self.cohorts);
        let theirs = std::mem::take(&mut other.cohorts);
        assert_eq!(mine.len(), theirs.len());
        self.cohorts = mine
            .into_iter()
            .zip(theirs)
            .map(|(a, b)| {
                assert_eq!(a.start, b.start, "cohort epochs diverged");
                Cohort {
                    start: a.start,
                    engine: a.engine.merge_lockstep(b.engine, &mut self.rng),
                }
            })
            .collect();
        self
    }

    /// The cohort that has seen every active update: the most recent cohort
    /// whose start is at or before the window start.
    fn covering_cohort(&self) -> Option<&Cohort> {
        let window_start = self.window.earliest_active(self.time);
        self.cohorts.iter().rev().find(|c| c.start <= window_start)
    }

    /// Active `(item, suffix_count)` pairs of the covering cohort's units.
    fn active_candidates(&self) -> Vec<(Item, u64)> {
        let Some(cohort) = self.covering_cohort() else {
            return Vec::new();
        };
        cohort
            .engine
            .candidates()
            .filter_map(|c| {
                if self
                    .window
                    .is_active(cohort.global_timestamp(c.admitted_at), self.time)
                {
                    Some((c.item, c.suffix_count))
                } else {
                    None
                }
            })
            .collect()
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .cohorts
                .iter()
                .map(|c| {
                    std::mem::size_of::<Cohort>() - std::mem::size_of::<SkipAheadEngine>()
                        + c.engine.space_bytes()
                })
                .sum::<usize>()
    }
}

/// Wire format: window width, per-cohort unit count, clock, the manager's
/// RNG position, then each live cohort's global start and engine.
impl Snapshot for CohortManager {
    const TAG: u16 = codec::tag::COHORT_MANAGER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_u64(self.window.width);
        w.put_usize(self.per_cohort);
        w.put_u64(self.time);
        self.rng.encode_into(w);
        w.put_len(self.cohorts.len());
        for cohort in &self.cohorts {
            w.put_u64(cohort.start);
            cohort.engine.encode_into(w);
        }
    }
}

impl Restore for CohortManager {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let width = r.get_u64()?;
        if width == 0 {
            return Err(CodecError::InvalidValue {
                what: "window must be positive",
            });
        }
        let per_cohort = r.get_usize()?;
        // `per_cohort` sizes every *future* cohort engine (the live
        // cohorts' slot counts are cross-checked below, but an empty
        // manager has no corroborating engine), so bound it to keep a
        // crafted snapshot from smuggling an unbounded allocation into the
        // first post-restore epoch. Live unit counts are in the thousands.
        const MAX_UNITS_PER_COHORT: usize = 1 << 20;
        if per_cohort == 0 || per_cohort > MAX_UNITS_PER_COHORT {
            return Err(CodecError::InvalidValue {
                what: "per-cohort unit count out of range",
            });
        }
        let time = r.get_u64()?;
        let rng = Xoshiro256::decode_from(r)?;
        let count = r.get_len(8)?;
        if count > 2 {
            return Err(CodecError::InvalidValue {
                what: "at most the two most recent cohorts are retained",
            });
        }
        let mut cohorts = Vec::with_capacity(count);
        let mut prev_start = 0u64;
        for _ in 0..count {
            let start = r.get_u64()?;
            // Cohorts are born at epoch boundaries (positions 1, W+1, …),
            // retained newest-last, and ingest at least one update before
            // the manager comes to rest.
            if start <= prev_start || start > time || (start - 1) % width != 0 {
                return Err(CodecError::InvalidValue {
                    what: "cohort start is not an in-range epoch boundary",
                });
            }
            prev_start = start;
            let engine = SkipAheadEngine::decode_from(r)?;
            if engine.slot_count() != per_cohort {
                return Err(CodecError::InvalidValue {
                    what: "cohort engine slot count disagrees with the manager",
                });
            }
            // No constraint is placed on `engine.seen()` relative to the
            // epoch suffix: a directly fed cohort has seen exactly
            // `time + 1 − start` updates, but a lockstep merge sums the
            // shards' counts, and a merged sampler can (however
            // inadvisedly) keep ingesting — all reachable states must
            // round-trip, and the engine's own decoder already enforces
            // the invariants that queries rely on.
            cohorts.push(Cohort { start, engine });
        }
        Ok(Self {
            window: WindowSpec::new(width),
            per_cohort,
            cohorts,
            time,
            rng,
        })
    }
}

/// The truly perfect sliding-window `G`-sampler for bounded-increment
/// measures (Algorithm 4 / Theorem 4.1 / Corollary 4.2).
#[derive(Debug)]
pub struct SlidingWindowGSampler<G: MeasureFn> {
    g: G,
    manager: CohortManager,
}

impl<G: MeasureFn> SlidingWindowGSampler<G> {
    /// Creates the sampler for windows of `window` updates with failure
    /// probability at most `delta`.
    ///
    /// The per-cohort instance count follows Theorem 4.1:
    /// `O(ζ·W/F̂_G(W) · log 1/δ)`, with an extra factor 2 because a unit's
    /// sample is active only with probability at least 1/2.
    ///
    /// # Panics
    ///
    /// Panics unless `window ≥ 1` and `δ ∈ (0, 1)`.
    pub fn new(g: G, window: u64, delta: f64, seed: u64) -> Self {
        assert!(window >= 1, "window must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let zeta = g.increment_bound(window).max(f64::MIN_POSITIVE);
        let fg = g.fg_lower_bound(window).max(f64::MIN_POSITIVE);
        // Success probability per unit ≥ (1/2)·F_G/(ζ·2W) ≥ fg/(4·ζ·W).
        let per_unit = (fg / (4.0 * zeta * window as f64)).clamp(1e-12, 1.0);
        let per_cohort = if per_unit >= 1.0 {
            1
        } else {
            (delta.ln() / (1.0 - per_unit).ln()).ceil().max(1.0) as usize
        };
        Self {
            g,
            manager: CohortManager::new(window, per_cohort, seed),
        }
    }

    /// Number of sampler units per cohort.
    pub fn units_per_cohort(&self) -> usize {
        self.manager.per_cohort
    }

    /// Merges two lockstep shard samplers (equal window, unit count and
    /// clock) into one that samples the **union** of the two active
    /// windows: cohorts merge pairwise through the shared-clock engine
    /// merge, so each merged unit holds a uniform one of the combined
    /// update instances with its original global timestamp, and the usual
    /// activity filter plus telescoping rejection apply at query time.
    ///
    /// The model is *parallel streams on one clock* (e.g. per-link network
    /// feeds sampled jointly): each shard observes its own updates tick for
    /// tick. Exactness needs item-disjoint shards (all occurrences of an
    /// item on one side, so suffix counts stay exact); constant-increment
    /// measures are exact regardless. The merged sampler is a query-time
    /// snapshot — keep feeding the shards and re-merge for later queries.
    /// The `L_p` sliding sampler is deliberately *not* mergeable: its
    /// rejection normaliser comes from a randomized smooth-histogram
    /// estimate whose checkpoints cannot be combined without breaking the
    /// certainty analysis; shard the bounded-increment sampler instead.
    ///
    /// # Panics
    ///
    /// Panics unless windows, unit counts and clocks are all equal.
    pub fn merge(self, other: Self) -> Self {
        Self {
            g: self.g,
            manager: self.manager.merge(other.manager),
        }
    }
}

impl<G: MeasureFn> SlidingWindowSampler for SlidingWindowGSampler<G> {
    fn update(&mut self, item: Item) {
        self.manager.update(item);
    }

    fn update_batch(&mut self, items: &[Item]) {
        self.manager.update_batch(items);
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.manager.time == 0 {
            return SampleOutcome::Empty;
        }
        let zeta = self.g.increment_bound(self.manager.window.width);
        if zeta.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return SampleOutcome::Fail;
        }
        let candidates = self.manager.active_candidates();
        for (item, c) in candidates {
            let accept = (self.g.value(c + 1) - self.g.value(c)) / zeta;
            if self.manager.rng.gen_bool(accept) {
                return SampleOutcome::Index(item);
            }
        }
        SampleOutcome::Fail
    }

    fn window(&self) -> u64 {
        self.manager.window.width
    }
}

impl<G: MeasureFn> SpaceUsage for SlidingWindowGSampler<G> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.manager.space_bytes()
    }
}

/// Wire format: the measure and the cohort manager.
impl<G: MeasureFn + Snapshot> Snapshot for SlidingWindowGSampler<G> {
    const TAG: u16 = codec::tag::SLIDING_G_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        self.g.encode_into(w);
        self.manager.encode_into(w);
    }
}

impl<G: MeasureFn + Restore> Restore for SlidingWindowGSampler<G> {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        Ok(Self {
            g: G::decode_from(r)?,
            manager: CohortManager::decode_from(r)?,
        })
    }
}

/// The truly perfect sliding-window `L_p` sampler for `p ∈ (1, 2]`
/// (Algorithm 6 / Theorem 1.4, sliding-window part).
#[derive(Debug)]
pub struct SlidingWindowLpSampler {
    p: f64,
    manager: CohortManager,
    estimate: SlidingWindowLpEstimate,
}

impl SlidingWindowLpSampler {
    /// Creates the sampler for windows of `window` updates with failure
    /// probability roughly `delta` (conditioned on the window-norm
    /// estimator's success, as in the paper).
    ///
    /// The per-cohort unit count is `O(W^{1−1/p} log 1/δ)`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (1, 2]`, `window ≥ 1` and `δ ∈ (0, 1)`.
    pub fn new(p: f64, window: u64, delta: f64, seed: u64) -> Self {
        Self::with_estimator_size(p, window, delta, 3, 80, seed)
    }

    /// Like [`SlidingWindowLpSampler::new`] but with an explicit size
    /// (`rows × cols` AMS units per smooth-histogram checkpoint) for the
    /// window-norm estimator. Smaller estimators are cheaper but give a
    /// looser normaliser, which only affects the failure probability.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ (1, 2]`, `window ≥ 1` and `δ ∈ (0, 1)`.
    pub fn with_estimator_size(
        p: f64,
        window: u64,
        delta: f64,
        estimator_rows: usize,
        estimator_cols: usize,
        seed: u64,
    ) -> Self {
        assert!(
            p > 1.0 && p <= 2.0,
            "sliding-window Lp sampler requires p in (1, 2]"
        );
        assert!(window >= 1, "window must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        // Success probability per unit ≥ 1/(2·p·2^{p-1}·W^{1-1/p})
        // (Theorem 1.4 with the extra 1/2 for window activity).
        let pool = (window as f64).powf(1.0 - 1.0 / p).max(1.0);
        let per_unit = (1.0 / (2.0 * p * 2f64.powf(p - 1.0) * pool)).clamp(1e-12, 1.0);
        let per_cohort = if per_unit >= 1.0 {
            1
        } else {
            (delta.ln() / (1.0 - per_unit).ln()).ceil().max(1.0) as usize
        };
        let estimate = SlidingWindowLpEstimate::new(
            p,
            window,
            estimator_rows,
            estimator_cols,
            Xoshiro256::seed_from_u64(seed ^ 0x5EED),
        );
        Self {
            p,
            manager: CohortManager::new(window, per_cohort, seed),
            estimate,
        }
    }

    /// Number of sampler units per cohort.
    pub fn units_per_cohort(&self) -> usize {
        self.manager.per_cohort
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl SlidingWindowSampler for SlidingWindowLpSampler {
    fn update(&mut self, item: Item) {
        self.manager.update(item);
        self.estimate.update(item);
    }

    fn update_batch(&mut self, items: &[Item]) {
        self.manager.update_batch(items);
        // The smooth-histogram estimator keeps per-item checkpoint logic;
        // its updates commute with the cohorts', so feeding it after the
        // whole cohort batch leaves identical state.
        for &item in items {
            self.estimate.update(item);
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.manager.time == 0 {
            return SampleOutcome::Empty;
        }
        let norm = self.estimate.lp_estimate().max(1.0);
        let zeta = self.p * norm.powf(self.p - 1.0);
        let candidates = self.manager.active_candidates();
        for (item, c) in candidates {
            let c = c as f64;
            let accept = (((c + 1.0).powf(self.p) - c.powf(self.p)) / zeta).min(1.0);
            if self.manager.rng.gen_bool(accept) {
                return SampleOutcome::Index(item);
            }
        }
        SampleOutcome::Fail
    }

    fn window(&self) -> u64 {
        self.manager.window.width
    }
}

impl SpaceUsage for SlidingWindowLpSampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.manager.space_bytes() + self.estimate.space_bytes()
    }
}

/// Wire format: the exponent, the cohort manager, and the smooth-histogram
/// window-norm estimator (checkpoints, inner AMS units and factory RNG
/// included, so the normaliser's draw sequence continues unbroken).
impl Snapshot for SlidingWindowLpSampler {
    const TAG: u16 = codec::tag::SLIDING_LP_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_f64(self.p);
        self.manager.encode_into(w);
        self.estimate.encode_into(w);
    }
}

impl Restore for SlidingWindowLpSampler {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let p = r.get_f64()?;
        if !(p > 1.0 && p <= 2.0) {
            return Err(CodecError::InvalidValue {
                what: "sliding-window Lp sampler requires p in (1, 2]",
            });
        }
        let manager = CohortManager::decode_from(r)?;
        let estimate = SlidingWindowLpEstimate::decode_from(r)?;
        // Live state carries bit-identical exponents in the sampler and
        // its window-norm estimator; a disagreeing pair would silently
        // normalise one distribution by another's norm.
        if estimate.p().to_bits() != p.to_bits() {
            return Err(CodecError::InvalidValue {
                what: "sliding Lp sampler and its estimator disagree on the exponent",
            });
        }
        Ok(Self {
            p,
            manager,
            estimate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::stats::SampleHistogram;
    use tps_streams::{Huber, Lp};

    /// A stream whose window content differs sharply from its prefix, so any
    /// failure to expire old items shows up as sampling mass on items that
    /// should be gone.
    fn two_phase_stream(window: usize) -> Vec<Item> {
        let mut stream = Vec::new();
        // Old phase: heavy on items 1..=3.
        for t in 0..(3 * window) {
            stream.push((t % 3) as u64 + 1);
        }
        // Active phase (exactly one window): items 10..=13, skewed.
        for t in 0..window {
            let item = match t % 8 {
                0..=4 => 10u64,
                5 | 6 => 11,
                _ => 12,
            };
            stream.push(item);
        }
        stream
    }

    #[test]
    fn huber_window_sampler_matches_window_distribution() {
        let window = 100usize;
        let stream = two_phase_stream(window);
        let g = Huber::new(2.0);
        let target = FrequencyVector::from_window(&stream, WindowSpec::new(window as u64))
            .g_distribution(&g);
        let mut histogram = SampleHistogram::new();
        for seed in 0..2_500u64 {
            let mut s = SlidingWindowGSampler::new(g, window as u64, 0.15, 30_000 + seed);
            for &x in &stream {
                SlidingWindowSampler::update(&mut s, x);
            }
            histogram.record(SlidingWindowSampler::sample(&mut s));
        }
        assert!(
            histogram.fail_rate() < 0.15,
            "fail rate {}",
            histogram.fail_rate()
        );
        // No expired item may ever be reported.
        for expired in [1u64, 2, 3] {
            assert_eq!(
                histogram.count(expired),
                0,
                "expired item {expired} was sampled"
            );
        }
        let tv = histogram.tv_distance(&target);
        assert!(tv < 0.05, "TV {tv}");
    }

    #[test]
    fn l1_window_sampler_via_g_framework() {
        // Lp with p = 1 has constant increments, so it can run through the
        // bounded-increment sliding-window sampler and must reproduce the
        // window's frequency distribution.
        let window = 120usize;
        let stream = two_phase_stream(window);
        let g = Lp::new(1.0);
        let target = FrequencyVector::from_window(&stream, WindowSpec::new(window as u64))
            .lp_distribution(1.0);
        let mut histogram = SampleHistogram::new();
        for seed in 0..3_000u64 {
            let mut s = SlidingWindowGSampler::new(g, window as u64, 0.1, 40_000 + seed);
            for &x in &stream {
                SlidingWindowSampler::update(&mut s, x);
            }
            histogram.record(SlidingWindowSampler::sample(&mut s));
        }
        assert!(histogram.fail_rate() < 0.1);
        assert!(histogram.tv_distance(&target) < 0.05);
    }

    #[test]
    fn l2_window_sampler_matches_window_distribution() {
        let window = 48usize;
        let stream = two_phase_stream(window);
        let target = FrequencyVector::from_window(&stream, WindowSpec::new(window as u64))
            .lp_distribution(2.0);
        let mut histogram = SampleHistogram::new();
        for seed in 0..600u64 {
            let mut s = SlidingWindowLpSampler::with_estimator_size(
                2.0,
                window as u64,
                0.1,
                2,
                12,
                50_000 + seed,
            );
            for &x in &stream {
                SlidingWindowSampler::update(&mut s, x);
            }
            histogram.record(SlidingWindowSampler::sample(&mut s));
        }
        assert!(
            histogram.fail_rate() < 0.2,
            "fail rate {}",
            histogram.fail_rate()
        );
        for expired in [1u64, 2, 3] {
            assert_eq!(
                histogram.count(expired),
                0,
                "expired item {expired} was sampled"
            );
        }
        let tv = histogram.tv_distance(&target);
        assert!(tv < 0.1, "TV {tv}");
    }

    #[test]
    fn empty_stream_reports_empty() {
        let mut g = SlidingWindowGSampler::new(Huber::new(1.0), 10, 0.1, 1);
        assert_eq!(SlidingWindowSampler::sample(&mut g), SampleOutcome::Empty);
        let mut lp = SlidingWindowLpSampler::new(2.0, 10, 0.1, 1);
        assert_eq!(SlidingWindowSampler::sample(&mut lp), SampleOutcome::Empty);
    }

    #[test]
    fn window_accessor_reports_width() {
        let g = SlidingWindowGSampler::new(Huber::new(1.0), 77, 0.1, 1);
        assert_eq!(SlidingWindowSampler::window(&g), 77);
    }

    #[test]
    fn unit_count_grows_with_window_for_lp() {
        let small = SlidingWindowLpSampler::new(2.0, 64, 0.2, 1).units_per_cohort();
        let large = SlidingWindowLpSampler::new(2.0, 4_096, 0.2, 1).units_per_cohort();
        let ratio = large as f64 / small as f64;
        // sqrt scaling: (4096/64)^{1/2} = 8.
        assert!((4.0..16.0).contains(&ratio), "ratio {ratio}");
    }
}
