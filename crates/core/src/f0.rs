//! Truly perfect `F_0` (support) samplers
//! (Section 5: Theorem 5.2, Corollary 5.3, Remark 5.1).
//!
//! The target distribution is uniform over the nonzero coordinates. The
//! framework of Section 3 cannot be applied directly without trivialising
//! the space (its instance count scales with `m / F_G` and `F_0` can be far
//! smaller than `m`), so the paper gives a dedicated algorithm:
//!
//! * keep the **first `√n` distinct items** of the stream (set `T`), which
//!   answers exactly when `F_0 ≤ √n`; and
//! * keep a **uniform random pre-drawn subset `S ⊆ [n]` of `2√n` items** and
//!   record which of them occur (set `U`); when `F_0 > √n`, a uniform element
//!   of `U` is a truly perfect sample and `U` is non-empty with constant
//!   probability, amplified by independent repetitions.
//!
//! Both sets also carry exact frequencies, so the sampler can report
//! `(i, f_i)` — the property Theorem 5.4 uses to build the Tukey sampler.
//! The random-oracle min-hash sampler of Remark 5.1 is provided as a
//! comparator ([`RandomOracleF0Sampler`]).

use std::collections::{HashMap, HashSet};
use tps_random::{random_subset, StreamRng, TabulationHash, Xoshiro256};
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::space::{hashmap_bytes, hashset_bytes};
use tps_streams::{
    Item, MergeableSampler, SampleOutcome, SlidingWindowSampler, SpaceUsage, StreamSampler,
    Timestamp, WindowSpec,
};

/// One repetition of the random-subset side of Algorithm 5: a pre-drawn
/// subset `S` and the frequencies of its members that appeared.
///
/// Members that occurred are additionally kept in first-occurrence order
/// (`order`), so drawing a uniform member is `O(1)` indexing — and, unlike
/// `HashMap` iteration order, *deterministic* given the sampler's seed.
#[derive(Debug, Clone)]
struct CandidateSet {
    subset: HashSet<Item>,
    seen: HashMap<Item, u64>,
    order: Vec<Item>,
}

impl CandidateSet {
    fn new<R: StreamRng>(rng: &mut R, n: u64, size: usize) -> Self {
        Self {
            subset: random_subset(rng, n, size.min(n as usize)),
            seen: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn update(&mut self, item: Item) {
        self.record(item, 1);
    }

    fn record(&mut self, item: Item, count: u64) {
        if self.subset.contains(&item) {
            let entry = self.seen.entry(item).or_insert(0);
            if *entry == 0 {
                self.order.push(item);
            }
            *entry += count;
        }
    }

    fn space_bytes(&self) -> usize {
        hashset_bytes(&self.subset)
            + hashmap_bytes(&self.seen)
            + self.order.capacity() * std::mem::size_of::<Item>()
    }
}

/// The truly perfect `F_0` sampler for insertion-only streams
/// (Algorithm 5 / Theorem 5.2). Uses `O(√n log n log 1/δ)` bits.
#[derive(Debug, Clone)]
pub struct TrulyPerfectF0Sampler {
    universe: u64,
    threshold: usize,
    /// `T`: the first `√n` distinct items, with exact frequencies.
    first_distinct: HashMap<Item, u64>,
    /// Insertion order of `T`, so uniform draws are `O(1)` and
    /// seed-deterministic (a `HashMap`'s iteration order is not).
    first_order: Vec<Item>,
    /// Whether more than `threshold` distinct items have appeared
    /// (i.e. `F_0 > √n` is certain).
    overflowed: bool,
    candidates: Vec<CandidateSet>,
    processed: u64,
    rng: Xoshiro256,
}

impl TrulyPerfectF0Sampler {
    /// Creates the sampler over the universe `[0, n)` with failure
    /// probability at most `delta` (amplified by independent random
    /// subsets).
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 1` and `δ ∈ (0, 1)`.
    pub fn new(n: u64, delta: f64, seed: u64) -> Self {
        assert!(n >= 1, "universe must be non-empty");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let threshold = (n as f64).sqrt().ceil() as usize;
        let subset_size = (2 * threshold).min(n as usize).max(1);
        // Each repetition fails (conditioned on F0 ≥ √n) with probability at
        // most e^{-2}; ⌈ln(1/δ)/2⌉ repetitions push this below δ.
        let repetitions = ((1.0 / delta).ln() / 2.0).ceil().max(1.0) as usize;
        let candidates = (0..repetitions)
            .map(|_| CandidateSet::new(&mut rng, n, subset_size))
            .collect();
        Self {
            universe: n,
            threshold,
            first_distinct: HashMap::new(),
            first_order: Vec::new(),
            overflowed: false,
            candidates,
            processed: 0,
            rng,
        }
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Whether the stream is known to have support larger than `√n`.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Draws a uniform nonzero coordinate together with its exact frequency,
    /// or `None` on failure. The distribution over coordinates is exactly
    /// uniform over the support, conditioned on not failing.
    pub fn sample_with_frequency(&mut self) -> Option<(Item, u64)> {
        if self.processed == 0 {
            return None;
        }
        if !self.overflowed {
            // T holds the entire support with exact counts.
            let idx = self.rng.gen_index(self.first_order.len());
            let item = self.first_order[idx];
            return Some((item, self.first_distinct[&item]));
        }
        for candidate in &self.candidates {
            if candidate.order.is_empty() {
                continue;
            }
            let idx = self.rng.gen_index(candidate.order.len());
            let item = candidate.order[idx];
            return Some((item, candidate.seen[&item]));
        }
        None
    }

    /// Applies `count` occurrences of `item` to the first-distinct side,
    /// exactly as `count` sequential updates would.
    fn record_first_distinct(&mut self, item: Item, count: u64) {
        if let Some(c) = self.first_distinct.get_mut(&item) {
            *c += count;
        } else if self.first_distinct.len() < self.threshold {
            self.first_distinct.insert(item, count);
            self.first_order.push(item);
        } else {
            self.overflowed = true;
        }
    }
}

impl StreamSampler for TrulyPerfectF0Sampler {
    fn update(&mut self, item: Item) {
        self.processed += 1;
        self.record_first_distinct(item, 1);
        for candidate in &mut self.candidates {
            candidate.update(item);
        }
    }

    /// Amortised batch path: the update logic consumes no randomness and
    /// every decision depends only on (a) which distinct items appear, in
    /// first-occurrence order, and (b) how often — so the batch is
    /// aggregated to `(item, multiplicity)` pairs once and the
    /// per-candidate-set subset probes run per *distinct* item instead of
    /// per occurrence. Final state is identical to the per-item loop's.
    fn update_batch(&mut self, items: &[Item]) {
        self.processed += items.len() as u64;
        let (order, multiplicities) = tps_streams::aggregate_in_order(items);
        for &item in &order {
            let count = multiplicities[&item];
            self.record_first_distinct(item, count);
            for candidate in &mut self.candidates {
                candidate.record(item, count);
            }
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.processed == 0 {
            return SampleOutcome::Empty;
        }
        match self.sample_with_frequency() {
            Some((item, _)) => SampleOutcome::Index(item),
            None => SampleOutcome::Fail,
        }
    }
}

/// Merge with concatenation semantics, replaying `other`'s retained state
/// into `self`: the first-distinct side replays `other`'s items in
/// first-occurrence order with their exact multiplicities, and each
/// candidate set absorbs its counterpart's observed members.
///
/// Requires both samplers to have been built with the **same seed** (so the
/// pre-drawn random subsets coincide — the sharded front-end's contract for
/// `F_0`). For item-disjoint shards the merged state is then byte-identical
/// to sequential ingestion of the concatenated stream: the merged support
/// is the union, exact frequencies are preserved, and the uniform-over-
/// support guarantee carries over. For overlapping shards the merge remains
/// sound for membership but can under-count items one side evicted.
///
/// # Panics
///
/// Panics if the universes, thresholds, repetition counts or pre-drawn
/// subsets differ.
impl MergeableSampler for TrulyPerfectF0Sampler {
    fn merge(mut self, other: Self, _rng: &mut dyn StreamRng) -> Self {
        assert_eq!(
            self.universe, other.universe,
            "merging F0 samplers requires equal universes"
        );
        assert_eq!(self.threshold, other.threshold);
        assert_eq!(
            self.candidates.len(),
            other.candidates.len(),
            "merging F0 samplers requires equal repetition counts"
        );
        for (mine, theirs) in self.candidates.iter().zip(&other.candidates) {
            assert_eq!(
                mine.subset, theirs.subset,
                "merging F0 samplers requires shard instances built with the same seed"
            );
        }
        self.processed += other.processed;
        for &item in &other.first_order {
            self.record_first_distinct(item, other.first_distinct[&item]);
        }
        if other.overflowed {
            self.overflowed = true;
        }
        for (mine, theirs) in self.candidates.iter_mut().zip(&other.candidates) {
            for &item in &theirs.order {
                mine.record(item, theirs.seen[&item]);
            }
        }
        self
    }

    fn merge_compatible(&self, other: &Self) -> bool {
        self.universe == other.universe
            && self.threshold == other.threshold
            && self.candidates.len() == other.candidates.len()
            && self
                .candidates
                .iter()
                .zip(&other.candidates)
                .all(|(mine, theirs)| mine.subset == theirs.subset)
    }
}

impl CandidateSet {
    /// Writes the pre-drawn subset (sorted), then the observed members in
    /// first-occurrence order with their exact frequencies.
    fn encode_into(&self, w: &mut SnapshotWriter) {
        codec::put_sorted_u64_set(w, self.subset.iter().copied());
        w.put_len(self.order.len());
        for &item in &self.order {
            w.put_u64(item);
            w.put_u64(self.seen[&item]);
        }
    }

    fn decode_from(r: &mut SnapshotReader<'_>, universe: u64) -> Result<Self, CodecError> {
        let sorted = codec::get_sorted_u64_set(r)?;
        // Pre-drawn subsets are drawn from [0, universe); the sampler's
        // output contract (indices inside the declared universe) depends
        // on it. The set is sorted, so checking the last element suffices.
        if sorted.last().is_some_and(|&max| max >= universe) {
            return Err(CodecError::InvalidValue {
                what: "candidate subset member outside the universe",
            });
        }
        let subset: HashSet<Item> = sorted.into_iter().collect();
        let len = r.get_len(16)?;
        let mut order = Vec::with_capacity(len);
        let mut seen = HashMap::with_capacity(len);
        for _ in 0..len {
            let item = r.get_u64()?;
            let count = r.get_u64()?;
            if count == 0 || !subset.contains(&item) || seen.insert(item, count).is_some() {
                return Err(CodecError::InvalidValue {
                    what: "candidate-set member not a distinct subset item with positive count",
                });
            }
            order.push(item);
        }
        Ok(Self {
            subset,
            seen,
            order,
        })
    }
}

/// Wire format: universe, threshold, overflow flag, processed count, RNG
/// position, the first-distinct set in first-occurrence order with exact
/// frequencies, then one record per candidate-set repetition.
impl Snapshot for TrulyPerfectF0Sampler {
    const TAG: u16 = codec::tag::F0_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_u64(self.universe);
        w.put_usize(self.threshold);
        w.put_u8(u8::from(self.overflowed));
        w.put_u64(self.processed);
        self.rng.encode_into(w);
        w.put_len(self.first_order.len());
        for &item in &self.first_order {
            w.put_u64(item);
            w.put_u64(self.first_distinct[&item]);
        }
        w.put_len(self.candidates.len());
        for candidate in &self.candidates {
            candidate.encode_into(w);
        }
    }
}

impl Restore for TrulyPerfectF0Sampler {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let universe = r.get_u64()?;
        if universe == 0 {
            return Err(CodecError::InvalidValue {
                what: "universe must be non-empty",
            });
        }
        let threshold = r.get_usize()?;
        if threshold == 0 {
            return Err(CodecError::InvalidValue {
                what: "first-distinct threshold must be positive",
            });
        }
        let overflowed = match r.get_u8()? {
            0 => false,
            1 => true,
            _ => {
                return Err(CodecError::InvalidValue {
                    what: "overflow flag must be 0 or 1",
                })
            }
        };
        let processed = r.get_u64()?;
        let rng = Xoshiro256::decode_from(r)?;
        let len = r.get_len(16)?;
        if len > threshold {
            return Err(CodecError::InvalidValue {
                what: "first-distinct set exceeds the threshold",
            });
        }
        let mut first_order = Vec::with_capacity(len);
        let mut first_distinct = HashMap::with_capacity(len);
        for _ in 0..len {
            let item = r.get_u64()?;
            let count = r.get_u64()?;
            // Items come from the stream over [0, universe); the sampler's
            // output contract depends on staying inside it.
            if item >= universe || count == 0 || first_distinct.insert(item, count).is_some() {
                return Err(CodecError::InvalidValue {
                    what: "first-distinct entries must be distinct in-universe items with positive counts",
                });
            }
            first_order.push(item);
        }
        // Live invariant: the first update always enters the (threshold ≥ 1)
        // first-distinct set, so a non-empty non-overflowed stream has a
        // non-empty `T` — `sample()` draws an index into it unguarded.
        if processed > 0 && !overflowed && first_order.is_empty() {
            return Err(CodecError::InvalidValue {
                what: "non-empty stream without overflow must have first-distinct items",
            });
        }
        let reps = r.get_len(16)?;
        let mut candidates = Vec::with_capacity(reps);
        for _ in 0..reps {
            candidates.push(CandidateSet::decode_from(r, universe)?);
        }
        Ok(Self {
            universe,
            threshold,
            first_distinct,
            first_order,
            overflowed,
            candidates,
            processed,
            rng,
        })
    }
}

impl SpaceUsage for TrulyPerfectF0Sampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + hashmap_bytes(&self.first_distinct)
            + self.first_order.capacity() * std::mem::size_of::<Item>()
            + self
                .candidates
                .iter()
                .map(CandidateSet::space_bytes)
                .sum::<usize>()
    }
}

/// The sliding-window truly perfect `F_0` sampler (Corollary 5.3): the same
/// two-sided construction with `T` replaced by the *most recent* `√n`
/// distinct items and all records carrying last-seen timestamps so expired
/// items can be ignored.
#[derive(Debug, Clone)]
pub struct SlidingWindowF0Sampler {
    window: WindowSpec,
    threshold: usize,
    /// Most recent `√n` distinct items, keyed to their last-seen time.
    recent_distinct: HashMap<Item, Timestamp>,
    /// Random pre-drawn subsets with last-seen times of their members.
    candidates: Vec<(HashSet<Item>, HashMap<Item, Timestamp>)>,
    time: Timestamp,
    rng: Xoshiro256,
}

/// The items of a last-seen map passing the activity filter, ordered by
/// their (unique) last-seen timestamps — a deterministic order independent
/// of hash-map layout.
fn active_by_timestamp(
    seen: &HashMap<Item, Timestamp>,
    active: impl Fn(Timestamp) -> bool,
) -> Vec<Item> {
    let mut stamped: Vec<(Timestamp, Item)> = seen
        .iter()
        .filter(|&(_, &t)| active(t))
        .map(|(&i, &t)| (t, i))
        .collect();
    stamped.sort_unstable();
    stamped.into_iter().map(|(_, i)| i).collect()
}

impl SlidingWindowF0Sampler {
    /// Creates the sampler over universe `[0, n)` and windows of `window`
    /// updates, with failure probability roughly `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 1`, `window ≥ 1` and `δ ∈ (0, 1)`.
    pub fn new(n: u64, window: u64, delta: f64, seed: u64) -> Self {
        assert!(n >= 1, "universe must be non-empty");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let threshold = (n as f64).sqrt().ceil() as usize;
        let subset_size = (2 * threshold).min(n as usize).max(1);
        let repetitions = ((1.0 / delta).ln() / 2.0).ceil().max(1.0) as usize;
        let candidates = (0..repetitions)
            .map(|_| (random_subset(&mut rng, n, subset_size), HashMap::new()))
            .collect();
        Self {
            window: WindowSpec::new(window),
            threshold,
            recent_distinct: HashMap::new(),
            candidates,
            time: 0,
            rng,
        }
    }

    fn active(&self, t: Timestamp) -> bool {
        self.window.is_active(t, self.time)
    }
}

impl SlidingWindowSampler for SlidingWindowF0Sampler {
    fn update(&mut self, item: Item) {
        self.time += 1;
        self.recent_distinct.insert(item, self.time);
        if self.recent_distinct.len() > self.threshold {
            // Evict the least recently seen item to keep only the most
            // recent √n distinct items.
            if let Some((&oldest, _)) = self.recent_distinct.iter().min_by_key(|&(_, &t)| t) {
                self.recent_distinct.remove(&oldest);
            }
        }
        for (subset, seen) in &mut self.candidates {
            if subset.contains(&item) {
                seen.insert(item, self.time);
            }
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.time == 0 {
            return SampleOutcome::Empty;
        }
        // Active portion of the recent-distinct set, in last-seen order:
        // timestamps are unique per item, so the list — and therefore which
        // item a given RNG draw selects — is a canonical function of the
        // sampler's logical state, not of hash-map iteration order (the
        // snapshot round-trip law depends on this).
        let active_recent = active_by_timestamp(&self.recent_distinct, |t| self.active(t));
        if active_recent.is_empty() {
            return SampleOutcome::Empty;
        }
        // If the recent-distinct set did not fill up, it contains the entire
        // window support and answers exactly.
        if self.recent_distinct.len() < self.threshold {
            let idx = self.rng.gen_index(active_recent.len());
            return SampleOutcome::Index(active_recent[idx]);
        }
        for (_, seen) in &self.candidates {
            let active = active_by_timestamp(seen, |t| self.active(t));
            if !active.is_empty() {
                let idx = self.rng.gen_index(active.len());
                return SampleOutcome::Index(active[idx]);
            }
        }
        SampleOutcome::Fail
    }

    fn window(&self) -> u64 {
        self.window.width
    }
}

/// Wire format: window width, threshold, clock, RNG position, the
/// recent-distinct last-seen map (sorted by item), then per repetition the
/// pre-drawn subset (sorted) and its members' last-seen map (sorted).
impl Snapshot for SlidingWindowF0Sampler {
    const TAG: u16 = codec::tag::SLIDING_F0_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_u64(self.window.width);
        w.put_usize(self.threshold);
        w.put_u64(self.time);
        self.rng.encode_into(w);
        codec::put_sorted_u64_pairs(w, self.recent_distinct.iter().map(|(&i, &t)| (i, t)));
        w.put_len(self.candidates.len());
        for (subset, seen) in &self.candidates {
            codec::put_sorted_u64_set(w, subset.iter().copied());
            codec::put_sorted_u64_pairs(w, seen.iter().map(|(&i, &t)| (i, t)));
        }
    }
}

impl Restore for SlidingWindowF0Sampler {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let width = r.get_u64()?;
        if width == 0 {
            return Err(CodecError::InvalidValue {
                what: "window must be positive",
            });
        }
        let threshold = r.get_usize()?;
        if threshold == 0 {
            // Live state has threshold = ⌈√n⌉ ≥ 1; a zero threshold would
            // make every update evict itself, silently hollowing out the
            // recent-distinct side.
            return Err(CodecError::InvalidValue {
                what: "recent-distinct threshold must be positive",
            });
        }
        let time = r.get_u64()?;
        let rng = Xoshiro256::decode_from(r)?;
        let recent = codec::get_sorted_u64_pairs(r)?;
        if recent.len() > threshold.saturating_add(1)
            || recent.iter().any(|&(_, t)| t == 0 || t > time)
        {
            return Err(CodecError::InvalidValue {
                what: "recent-distinct set oversized or timestamps out of range",
            });
        }
        let reps = r.get_len(16)?;
        let mut candidates = Vec::with_capacity(reps);
        for _ in 0..reps {
            let subset: HashSet<Item> = codec::get_sorted_u64_set(r)?.into_iter().collect();
            let seen_pairs = codec::get_sorted_u64_pairs(r)?;
            if seen_pairs
                .iter()
                .any(|&(i, t)| !subset.contains(&i) || t == 0 || t > time)
            {
                return Err(CodecError::InvalidValue {
                    what: "candidate member outside its subset or timestamp range",
                });
            }
            candidates.push((subset, seen_pairs.into_iter().collect()));
        }
        Ok(Self {
            window: WindowSpec::new(width),
            threshold,
            recent_distinct: recent.into_iter().collect(),
            candidates,
            time,
            rng,
        })
    }
}

impl SpaceUsage for SlidingWindowF0Sampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + hashmap_bytes(&self.recent_distinct)
            + self
                .candidates
                .iter()
                .map(|(s, m)| hashset_bytes(s) + hashmap_bytes(m))
                .sum::<usize>()
    }
}

/// The `O(log n)`-bit random-oracle `F_0` sampler of Remark 5.1: output the
/// nonzero coordinate minimising a random hash. Included as a comparator —
/// its guarantee is only as good as the concrete hash family standing in for
/// the oracle (tabulation hashing here).
#[derive(Debug, Clone)]
pub struct RandomOracleF0Sampler {
    hash: TabulationHash,
    best: Option<(Item, f64, u64)>,
    processed: u64,
}

impl RandomOracleF0Sampler {
    /// Creates the sampler with a seeded tabulation hash.
    pub fn new(seed: u64) -> Self {
        Self {
            hash: TabulationHash::from_seed(seed),
            best: None,
            processed: 0,
        }
    }

    /// The sampled item and its exact frequency, if the stream is non-empty.
    pub fn sample_with_frequency(&self) -> Option<(Item, u64)> {
        self.best.map(|(i, _, c)| (i, c))
    }
}

impl StreamSampler for RandomOracleF0Sampler {
    fn update(&mut self, item: Item) {
        self.processed += 1;
        let value = self.hash.unit(item);
        match &mut self.best {
            Some((held, held_value, count)) => {
                if *held == item {
                    *count += 1;
                } else if value < *held_value {
                    *held = item;
                    *held_value = value;
                    *count = 1;
                }
            }
            None => self.best = Some((item, value, 1)),
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        match self.best {
            Some((item, _, _)) => SampleOutcome::Index(item),
            None => SampleOutcome::Empty,
        }
    }
}

impl SpaceUsage for RandomOracleF0Sampler {
    fn space_bytes(&self) -> usize {
        // The tabulation tables stand in for the random oracle and are not
        // charged to the algorithm, matching the random-oracle accounting of
        // Remark 5.1.
        std::mem::size_of::<Self>() - std::mem::size_of::<TabulationHash>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::default_rng;
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::stats::SampleHistogram;

    #[test]
    fn small_support_is_answered_exactly_and_uniformly() {
        // F0 = 3 < sqrt(10000), so T answers exactly.
        let stream = [(7u64, 100u64), (8, 1), (9, 10)]
            .iter()
            .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
            .collect::<Vec<_>>();
        let target = FrequencyVector::from_stream(&stream).f0_distribution();
        let mut histogram = SampleHistogram::new();
        for seed in 0..4_000u64 {
            let mut s = TrulyPerfectF0Sampler::new(10_000, 0.1, seed);
            s.update_all(&stream);
            histogram.record(s.sample());
        }
        assert_eq!(histogram.fails(), 0);
        assert!(histogram.tv_distance(&target) < 0.03);
    }

    #[test]
    fn large_support_is_uniform_and_rarely_fails() {
        // F0 = 400 > sqrt(1000) ≈ 32: the random-subset side must kick in.
        let n = 1_000u64;
        let stream: Vec<Item> = (0..400u64)
            .flat_map(|i| std::iter::repeat_n(i, 3))
            .collect();
        let target = FrequencyVector::from_stream(&stream).f0_distribution();
        let mut histogram = SampleHistogram::new();
        for seed in 0..4_000u64 {
            let mut s = TrulyPerfectF0Sampler::new(n, 0.05, 10_000 + seed);
            s.update_all(&stream);
            histogram.record(s.sample());
        }
        assert!(
            histogram.fail_rate() < 0.05,
            "fail rate {}",
            histogram.fail_rate()
        );
        assert!(
            histogram.tv_distance(&target) < 0.25,
            "tv {}",
            histogram.tv_distance(&target)
        );
        // Pointwise check: no item should be sampled wildly more often than
        // the uniform rate.
        let succ = histogram.successes() as f64;
        for item in 0..400u64 {
            let rate = histogram.count(item) as f64 / succ;
            assert!(rate < 5.0 / 400.0, "item {item} oversampled: {rate}");
        }
    }

    #[test]
    fn frequencies_are_reported_exactly() {
        let mut s = TrulyPerfectF0Sampler::new(100, 0.1, 3);
        for _ in 0..5 {
            s.update(42);
        }
        s.update(7);
        let (item, freq) = s.sample_with_frequency().unwrap();
        if item == 42 {
            assert_eq!(freq, 5);
        } else {
            assert_eq!((item, freq), (7, 1));
        }
    }

    #[test]
    fn empty_stream_reports_empty() {
        let mut s = TrulyPerfectF0Sampler::new(100, 0.1, 4);
        assert_eq!(s.sample(), SampleOutcome::Empty);
    }

    #[test]
    fn space_scales_like_sqrt_n() {
        let small = TrulyPerfectF0Sampler::new(1_000, 0.1, 1).space_bytes();
        let large = TrulyPerfectF0Sampler::new(100_000, 0.1, 1).space_bytes();
        let ratio = large as f64 / small as f64;
        assert!(
            (4.0..30.0).contains(&ratio),
            "ratio {ratio} should be near sqrt(100) = 10"
        );
    }

    #[test]
    fn sliding_window_sampler_only_reports_active_items() {
        let n = 10_000u64;
        let window = 50u64;
        let mut rng = default_rng(9);
        let mut s = SlidingWindowF0Sampler::new(n, window, 0.1, 11);
        let mut stream = Vec::new();
        // Early phase: items 0..20; late phase: items 100..120.
        for _ in 0..500 {
            stream.push(rng.gen_range(20));
        }
        for _ in 0..500 {
            stream.push(100 + rng.gen_range(20));
        }
        for &x in &stream {
            SlidingWindowSampler::update(&mut s, x);
        }
        for _ in 0..50 {
            if let SampleOutcome::Index(i) = SlidingWindowSampler::sample(&mut s) {
                assert!((100..120).contains(&i), "expired item {i} reported");
            }
        }
    }

    #[test]
    fn sliding_window_small_support_is_uniform() {
        let window = 200u64;
        let mut stream = Vec::new();
        for t in 0..600u64 {
            stream.push(t % 3 + 40); // window support is {40, 41, 42}
        }
        let mut histogram = SampleHistogram::new();
        for seed in 0..3_000u64 {
            let mut s = SlidingWindowF0Sampler::new(100_000, window, 0.1, 20_000 + seed);
            for &x in &stream {
                SlidingWindowSampler::update(&mut s, x);
            }
            histogram.record(SlidingWindowSampler::sample(&mut s));
        }
        let target: std::collections::HashMap<Item, f64> =
            [(40u64, 1.0 / 3.0), (41, 1.0 / 3.0), (42, 1.0 / 3.0)]
                .into_iter()
                .collect();
        assert!(histogram.tv_distance(&target) < 0.04);
    }

    #[test]
    fn random_oracle_sampler_is_roughly_uniform() {
        let stream: Vec<Item> = (0..50u64).flat_map(|i| std::iter::repeat_n(i, 5)).collect();
        let mut histogram = SampleHistogram::new();
        for seed in 0..5_000u64 {
            let mut s = RandomOracleF0Sampler::new(seed);
            s.update_all(&stream);
            histogram.record(s.sample());
        }
        let target = FrequencyVector::from_stream(&stream).f0_distribution();
        assert!(histogram.tv_distance(&target) < 0.1);
        assert_eq!(histogram.fails(), 0);
    }
}
