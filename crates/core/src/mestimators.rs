//! Truly perfect samplers for M-estimator measures
//! (Corollary 3.6 and Theorem 5.4 of the paper).
//!
//! For the `L_1–L_2`, Fair and Huber estimators the measure's increments are
//! bounded by a constant and `F_G ≥ G(1)·m`, so the generic framework with
//! the closed-form normaliser needs only `O(log 1/δ)` parallel instances —
//! `O(log n log 1/δ)` bits in total.
//!
//! The Tukey biweight is *bounded* (`G(x) ≤ τ²/6`), so `F_G` can be far
//! smaller than `m` and the generic framework would need too many instances.
//! Following Theorem 5.4, the Tukey sampler instead draws a uniform nonzero
//! coordinate from a truly perfect `F_0` sampler (which also reports the
//! coordinate's frequency) and accepts it with probability `G(f_i)/G(τ)`,
//! which corrects the uniform distribution to `G(f_i)/F_G`.

use crate::f0::TrulyPerfectF0Sampler;
use crate::framework::{recommended_instances, MeasureNormalizer, TrulyPerfectGSampler};
use tps_random::{StreamRng, Xoshiro256};
use tps_streams::{
    Fair, Huber, Item, MeasureFn, SampleOutcome, SpaceUsage, StreamSampler, Tukey, L1L2,
};

/// A truly perfect sampler for any bounded-increment M-estimator measure.
///
/// This is a thin, documented wrapper over the generic framework that picks
/// the instance count of Corollary 3.6.
#[derive(Debug)]
pub struct MEstimatorSampler<G: MeasureFn> {
    inner: TrulyPerfectGSampler<G, MeasureNormalizer<G>>,
}

impl<G: MeasureFn> MEstimatorSampler<G> {
    /// Creates a sampler for the measure `g`, sized for streams of roughly
    /// `expected_length` updates and failure probability `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless `δ ∈ (0, 1)`.
    pub fn new(g: G, expected_length: u64, delta: f64, seed: u64) -> Self {
        let instances = recommended_instances(&g, expected_length, delta);
        let normalizer = MeasureNormalizer::new(g.clone());
        Self {
            inner: TrulyPerfectGSampler::with_instances(g, normalizer, instances, seed),
        }
    }

    /// Number of parallel instances.
    pub fn instance_count(&self) -> usize {
        self.inner.instance_count()
    }
}

impl<G: MeasureFn> StreamSampler for MEstimatorSampler<G> {
    fn update(&mut self, item: Item) {
        self.inner.update(item);
    }

    fn sample(&mut self) -> SampleOutcome {
        self.inner.sample()
    }
}

impl<G: MeasureFn> SpaceUsage for MEstimatorSampler<G> {
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
}

/// A truly perfect `L_1–L_2` estimator sampler (Corollary 3.6).
pub type L1L2Sampler = MEstimatorSampler<L1L2>;

/// A truly perfect Fair estimator sampler (Corollary 3.6).
pub type FairSampler = MEstimatorSampler<Fair>;

/// A truly perfect Huber estimator sampler (Corollary 3.6).
pub type HuberSampler = MEstimatorSampler<Huber>;

/// Convenience constructors matching the paper's statements.
impl L1L2Sampler {
    /// Creates an `L_1–L_2` sampler.
    pub fn l1l2(expected_length: u64, delta: f64, seed: u64) -> Self {
        MEstimatorSampler::new(L1L2, expected_length, delta, seed)
    }
}

impl FairSampler {
    /// Creates a Fair-estimator sampler with parameter `τ`.
    pub fn fair(tau: f64, expected_length: u64, delta: f64, seed: u64) -> Self {
        MEstimatorSampler::new(Fair::new(tau), expected_length, delta, seed)
    }
}

impl HuberSampler {
    /// Creates a Huber-estimator sampler with parameter `τ`.
    pub fn huber(tau: f64, expected_length: u64, delta: f64, seed: u64) -> Self {
        MEstimatorSampler::new(Huber::new(tau), expected_length, delta, seed)
    }
}

/// A truly perfect Tukey-biweight sampler built on top of the truly perfect
/// `F_0` sampler (Theorem 5.4).
#[derive(Debug)]
pub struct TukeySampler {
    g: Tukey,
    /// Independent F0 samplers, one per retry, so a rejected proposal can be
    /// retried with fresh randomness.
    f0_samplers: Vec<TrulyPerfectF0Sampler>,
    rng: Xoshiro256,
}

impl TukeySampler {
    /// Creates a Tukey sampler with parameter `τ` over the universe
    /// `[0, n)`, with failure probability roughly `delta`.
    ///
    /// The number of retries is `O(G(τ)/G(1) · log 1/δ)`, each retry backed
    /// by an independent `F_0` sampler of `O(√n log n)` bits (Theorem 5.2).
    ///
    /// # Panics
    ///
    /// Panics unless `δ ∈ (0, 1)` and `n ≥ 1`.
    pub fn new(tau: f64, n: u64, delta: f64, seed: u64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        assert!(n >= 1, "universe must be non-empty");
        let g = Tukey::new(tau);
        // Acceptance probability per proposal is at least G(1)/G(τ)
        // (achieved when every nonzero coordinate has frequency 1).
        let accept_floor = (g.value(1) / g.saturation()).clamp(1e-9, 1.0);
        let retries = if accept_floor >= 1.0 {
            1
        } else {
            (delta.ln() / (1.0 - accept_floor).ln()).ceil().max(1.0) as usize
        };
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let f0_samplers = (0..retries)
            .map(|i| TrulyPerfectF0Sampler::new(n, 0.05, seed.wrapping_add(1 + i as u64)))
            .collect();
        let _ = rng.next_u64();
        Self {
            g,
            f0_samplers,
            rng,
        }
    }

    /// Number of independent retries (each with its own `F_0` sampler).
    pub fn retries(&self) -> usize {
        self.f0_samplers.len()
    }
}

impl StreamSampler for TukeySampler {
    fn update(&mut self, item: Item) {
        for s in &mut self.f0_samplers {
            s.update(item);
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.f0_samplers.iter().all(|s| s.processed() == 0) {
            return SampleOutcome::Empty;
        }
        let saturation = self.g.saturation();
        for idx in 0..self.f0_samplers.len() {
            let Some((item, frequency)) = self.f0_samplers[idx].sample_with_frequency() else {
                continue;
            };
            let accept = (self.g.value(frequency) / saturation).min(1.0);
            if self.rng.gen_bool(accept) {
                return SampleOutcome::Index(item);
            }
        }
        SampleOutcome::Fail
    }
}

impl SpaceUsage for TukeySampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .f0_samplers
                .iter()
                .map(SpaceUsage::space_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_streams::frequency::FrequencyVector;
    use tps_streams::stats::SampleHistogram;

    fn stream_from(counts: &[(Item, u64)]) -> Vec<Item> {
        counts
            .iter()
            .flat_map(|&(i, c)| std::iter::repeat_n(i, c as usize))
            .collect()
    }

    fn check_distribution<G, S, B>(g: &G, counts: &[(Item, u64)], build: B, trials: usize, tol: f64)
    where
        G: MeasureFn,
        S: StreamSampler,
        B: Fn(u64) -> S,
    {
        let stream = stream_from(counts);
        let target = FrequencyVector::from_stream(&stream).g_distribution(g);
        let mut histogram = SampleHistogram::new();
        for seed in 0..trials as u64 {
            let mut sampler = build(seed);
            sampler.update_all(&stream);
            histogram.record(sampler.sample());
        }
        assert!(
            histogram.fail_rate() < 0.25,
            "fail rate {}",
            histogram.fail_rate()
        );
        let tv = histogram.tv_distance(&target);
        assert!(tv < tol, "{}: TV {tv} exceeds {tol}", g.name());
    }

    #[test]
    fn l1l2_distribution_is_exact() {
        let counts = [(1u64, 12u64), (2, 4), (3, 1)];
        check_distribution(
            &L1L2,
            &counts,
            |seed| L1L2Sampler::l1l2(17, 0.05, 2_000 + seed),
            5_000,
            0.04,
        );
    }

    #[test]
    fn fair_distribution_is_exact() {
        let counts = [(5u64, 10u64), (6, 5), (7, 2)];
        check_distribution(
            &Fair::new(2.0),
            &counts,
            |seed| FairSampler::fair(2.0, 17, 0.05, 3_000 + seed),
            5_000,
            0.04,
        );
    }

    #[test]
    fn huber_distribution_is_exact() {
        let counts = [(9u64, 8u64), (10, 4), (11, 1)];
        check_distribution(
            &Huber::new(3.0),
            &counts,
            |seed| HuberSampler::huber(3.0, 13, 0.05, 4_000 + seed),
            5_000,
            0.04,
        );
    }

    #[test]
    fn tukey_distribution_is_exact() {
        // With τ = 6 and frequencies below τ the Tukey weights differ
        // meaningfully between items, so the acceptance correction is
        // genuinely exercised.
        let counts = [(1u64, 1u64), (2, 2), (3, 4)];
        check_distribution(
            &Tukey::new(6.0),
            &counts,
            |seed| TukeySampler::new(6.0, 64, 0.05, 5_000 + seed),
            5_000,
            0.05,
        );
    }

    #[test]
    fn m_estimator_space_is_logarithmic_in_delta_only() {
        let loose = L1L2Sampler::l1l2(1_000_000, 0.2, 1);
        let tight = L1L2Sampler::l1l2(1_000_000, 0.001, 1);
        assert!(loose.instance_count() < tight.instance_count());
        assert!(
            tight.instance_count() <= 60,
            "instances {}",
            tight.instance_count()
        );
    }

    #[test]
    fn tukey_empty_stream_reports_empty() {
        let mut s = TukeySampler::new(3.0, 16, 0.1, 9);
        assert_eq!(s.sample(), SampleOutcome::Empty);
    }
}
