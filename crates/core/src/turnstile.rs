//! Turnstile-stream results: the Ω(min{n, log 1/γ}) lower bound machinery
//! (Section 2 / Theorem 1.2), the multi-pass strict-turnstile samplers
//! (Theorem 1.5) and the strict-turnstile `F_0` sampler (Theorem D.3).
//!
//! Theorem 1.2 shows that a one-pass sublinear-space *truly* perfect sampler
//! cannot exist in the (general) turnstile model: a `(ε, γ, 1/2)`-sampler
//! yields a two-party protocol for `equality` with advantage related to `γ`,
//! and the fine-grained refutation complexity of equality forces
//! `Ω(min{n, log 1/γ})` bits. [`EqualityReduction`] implements that
//! protocol and measures the distinguishing advantage empirically; the
//! companion [`lower_bound_bits`] evaluates the bound itself.
//!
//! The positive results avoid the lower bound by changing the model:
//!
//! * [`MultiPassL1Sampler`] / [`MultiPassLpSampler`] give *truly perfect*
//!   `L_p` samples over **strict turnstile** streams using `O(1/γ)` passes
//!   and `Õ(n^γ)`-type space (Theorem 1.5): recursively partition the
//!   universe into `n^γ` chunks, keep one exact counter per chunk per pass,
//!   and descend into a chunk chosen with probability proportional to its
//!   (non-negative) mass.
//! * [`StrictTurnstileF0Sampler`] combines deterministic sparse recovery
//!   with a pre-drawn random subset to sample the support of a strict
//!   turnstile stream in `Õ(√n)` space (Theorem D.3).

use std::collections::{HashMap, HashSet};
use tps_random::{random_subset, StreamRng, Xoshiro256};
use tps_sketches::SparseRecovery;
use tps_streams::codec::{self, CodecError, Restore, Snapshot, SnapshotReader, SnapshotWriter};
use tps_streams::frequency::FrequencyVector;
use tps_streams::generators::EqualityInstance;
use tps_streams::space::{hashmap_bytes, hashset_bytes};
use tps_streams::{
    Item, MergeableSampler, SampleOutcome, SignedUpdate, SpaceUsage, TurnstileSampler,
};

/// The space lower bound of Theorem 1.2, in bits:
/// `Ω(min{n, log₂ 1/γ})` for any `(ε₀, γ, 1/2)`-approximate `G`-sampler in
/// the turnstile model. The constant is taken as 1/8·(effective instance
/// size − 7), following the proof.
pub fn lower_bound_bits(n: u64, gamma: f64) -> f64 {
    assert!(
        gamma > 0.0 && gamma < 0.25,
        "the bound is stated for gamma in (0, 1/4)"
    );
    let effective = (n as f64 / 2.0).min((1.0 / (16.0 * gamma)).log2());
    ((effective - 7.0) / 128.0).max(0.0)
}

/// Statistics of one multi-pass sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassReport {
    /// Number of passes over the stream that were needed.
    pub passes: usize,
    /// Maximum number of live counters across all passes (the space term).
    pub peak_counters: usize,
}

/// A truly perfect multi-pass `L_1` sampler for strict turnstile streams
/// (the core of Theorem 1.5).
#[derive(Debug, Clone)]
pub struct MultiPassL1Sampler {
    universe: u64,
    /// Number of chunks per pass, `≈ n^γ`.
    chunks_per_pass: usize,
}

impl MultiPassL1Sampler {
    /// Creates the sampler with `chunks_per_pass ≈ universe^gamma` chunks
    /// per level.
    ///
    /// # Panics
    ///
    /// Panics unless `universe ≥ 1` and `gamma ∈ (0, 1]`.
    pub fn new(universe: u64, gamma: f64) -> Self {
        assert!(universe >= 1, "universe must be non-empty");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
        let chunks = (universe as f64).powf(gamma).ceil().max(2.0) as usize;
        Self {
            universe,
            chunks_per_pass: chunks,
        }
    }

    /// Number of chunks maintained per pass.
    pub fn chunks_per_pass(&self) -> usize {
        self.chunks_per_pass
    }

    /// Draws one truly perfect `L_1` sample by making `O(log_chunks n)`
    /// passes over the (replayable) stream.
    ///
    /// Returns the sample (or `Empty` for a zero vector) and the pass
    /// statistics.
    pub fn sample<R: StreamRng>(
        &self,
        stream: &[SignedUpdate],
        rng: &mut R,
    ) -> (SampleOutcome, PassReport) {
        let mut low = 0u64;
        let mut high = self.universe; // current candidate range [low, high)
        let mut passes = 0usize;
        let mut peak = 0usize;
        while high - low > 1 {
            let span = high - low;
            let chunks = (self.chunks_per_pass as u64).min(span);
            let chunk_width = span.div_ceil(chunks);
            let mut masses = vec![0i64; chunks as usize];
            // One pass: accumulate the mass of each chunk of the range.
            passes += 1;
            peak = peak.max(masses.len());
            for update in stream {
                if update.item >= low && update.item < high {
                    let chunk = ((update.item - low) / chunk_width) as usize;
                    masses[chunk] += update.delta;
                }
            }
            debug_assert!(
                masses.iter().all(|&m| m >= 0),
                "strict turnstile streams must have non-negative chunk masses"
            );
            let total: i64 = masses.iter().sum();
            if total <= 0 {
                return (
                    SampleOutcome::Empty,
                    PassReport {
                        passes,
                        peak_counters: peak,
                    },
                );
            }
            // Choose a chunk with probability proportional to its mass.
            let mut target = rng.gen_range(total as u64) as i64;
            let mut chosen = 0usize;
            for (idx, &mass) in masses.iter().enumerate() {
                if target < mass {
                    chosen = idx;
                    break;
                }
                target -= mass;
            }
            low += chosen as u64 * chunk_width;
            high = (low + chunk_width).min(high);
        }
        (
            SampleOutcome::Index(low),
            PassReport {
                passes,
                peak_counters: peak,
            },
        )
    }
}

/// A truly perfect multi-pass `L_p` sampler (`p ∈ [1, 2]`) for strict
/// turnstile streams (Theorem 1.5): draw `L_1` candidates with the
/// multi-pass sampler, determine their exact frequencies and a certain
/// upper bound on `‖f‖_∞` in one extra pass, and accept each candidate with
/// probability `(f_i/Z)^{p−1}`.
#[derive(Debug, Clone)]
pub struct MultiPassLpSampler {
    p: f64,
    l1: MultiPassL1Sampler,
    candidates: usize,
}

impl MultiPassLpSampler {
    /// Creates the sampler with the given exponent, universe, pass/space
    /// trade-off `gamma` and failure probability `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [1, 2]`, `universe ≥ 1`, `gamma ∈ (0, 1]` and
    /// `δ ∈ (0, 1)`.
    pub fn new(p: f64, universe: u64, gamma: f64, delta: f64) -> Self {
        assert!((1.0..=2.0).contains(&p), "p must be in [1,2]");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let pool = (universe as f64).powf(1.0 - 1.0 / p).max(1.0);
        let per_candidate = (1.0 / pool).min(1.0);
        let candidates = if per_candidate >= 1.0 {
            1
        } else {
            (delta.ln() / (1.0 - per_candidate).ln()).ceil().max(1.0) as usize
        };
        Self {
            p,
            l1: MultiPassL1Sampler::new(universe, gamma),
            candidates,
        }
    }

    /// Number of `L_1` candidates drawn per sample attempt.
    pub fn candidates(&self) -> usize {
        self.candidates
    }

    /// Draws one truly perfect `L_p` sample over the replayable strict
    /// turnstile stream.
    pub fn sample<R: StreamRng>(
        &self,
        stream: &[SignedUpdate],
        rng: &mut R,
    ) -> (SampleOutcome, PassReport) {
        let mut passes = 0usize;
        let mut peak = 0usize;
        // Draw the candidates (their passes are counted; a production
        // implementation would interleave them within shared passes, which
        // changes the constant but not the O(1/γ) pass count).
        let mut drawn = Vec::with_capacity(self.candidates);
        for _ in 0..self.candidates {
            let (outcome, report) = self.l1.sample(stream, rng);
            passes = passes.max(report.passes);
            peak = peak.max(report.peak_counters * self.candidates);
            match outcome {
                SampleOutcome::Index(i) => drawn.push(i),
                SampleOutcome::Empty => {
                    return (
                        SampleOutcome::Empty,
                        PassReport {
                            passes,
                            peak_counters: peak,
                        },
                    )
                }
                SampleOutcome::Fail => {}
            }
        }
        // One extra pass: exact frequencies of the candidates and a certain
        // upper bound Z ≥ ‖f‖_∞ from chunk masses of width ≈ n^{1/p}.
        passes += 1;
        let chunk_width = (self.l1.universe as f64).powf(1.0 / self.p).ceil().max(1.0) as u64;
        let chunk_count = self.l1.universe.div_ceil(chunk_width) as usize;
        let mut chunk_mass = vec![0i64; chunk_count];
        let mut exact: HashMap<Item, i64> = drawn.iter().map(|&i| (i, 0)).collect();
        peak = peak.max(chunk_count + exact.len());
        for update in stream {
            if update.item >= self.l1.universe {
                continue;
            }
            chunk_mass[(update.item / chunk_width) as usize] += update.delta;
            if let Some(count) = exact.get_mut(&update.item) {
                *count += update.delta;
            }
        }
        let z = chunk_mass.iter().copied().max().unwrap_or(0).max(1) as f64;
        for candidate in drawn {
            let f = exact[&candidate].max(0) as f64;
            let accept = (f / z).powf(self.p - 1.0).min(1.0);
            if rng.gen_bool(accept) {
                return (
                    SampleOutcome::Index(candidate),
                    PassReport {
                        passes,
                        peak_counters: peak,
                    },
                );
            }
        }
        (
            SampleOutcome::Fail,
            PassReport {
                passes,
                peak_counters: peak,
            },
        )
    }
}

/// The strict-turnstile truly perfect `F_0` sampler of Theorem D.3:
/// deterministic sparse recovery for small supports, a pre-drawn random
/// subset with exact membership counters for large supports.
#[derive(Debug, Clone)]
pub struct StrictTurnstileF0Sampler {
    recovery: SparseRecovery,
    subset: HashSet<Item>,
    subset_counts: HashMap<Item, i64>,
    processed: u64,
    rng: Xoshiro256,
}

impl StrictTurnstileF0Sampler {
    /// Creates the sampler over the universe `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n >= 1, "universe must be non-empty");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let sqrt_n = (n as f64).sqrt().ceil() as usize;
        let subset = random_subset(&mut rng, n, (2 * sqrt_n).min(n as usize));
        Self {
            recovery: SparseRecovery::new(sqrt_n.max(1), n),
            subset,
            subset_counts: HashMap::new(),
            processed: 0,
            rng,
        }
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.recovery.universe()
    }

    /// Number of updates processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

/// Merge with concatenation semantics, by pure linearity: the syndrome
/// vector adds componentwise ([`SparseRecovery::absorb`]) and the subset
/// counters add with zero entries dropped — exactly the state sequential
/// ingestion of the concatenated stream would reach, because every piece of
/// the sampler's update path is additive in the deltas and **no randomness
/// is consumed during updates** (the RNG only moves at `sample()` time).
///
/// Consequently the merge is **byte-exact for same-seed instances under
/// *any* partitioning of the update sequence** — stronger than the
/// insertion-only `F_0` sampler's item-disjoint requirement, and the reason
/// the sharded front-end can route turnstile streams round-robin as well as
/// by hash without leaving the exact regime. Merging consumes no coins.
///
/// # Panics
///
/// Panics if the universes, sparsity budgets or pre-drawn subsets differ
/// (instances must be built with the same seed).
impl MergeableSampler for StrictTurnstileF0Sampler {
    fn merge(mut self, other: Self, _rng: &mut dyn StreamRng) -> Self {
        assert!(
            self.recovery.merge_compatible(&other.recovery),
            "merging turnstile F0 samplers requires equal universes and sparsity budgets"
        );
        assert_eq!(
            self.subset, other.subset,
            "merging turnstile F0 samplers requires shard instances built with the same seed"
        );
        self.recovery.absorb(&other.recovery);
        self.processed += other.processed;
        for (item, delta) in other.subset_counts {
            let entry = self.subset_counts.entry(item).or_insert(0);
            *entry = entry.wrapping_add(delta);
            if *entry == 0 {
                self.subset_counts.remove(&item);
            }
        }
        self
    }

    fn merge_compatible(&self, other: &Self) -> bool {
        self.recovery.merge_compatible(&other.recovery) && self.subset == other.subset
    }
}

/// Wire format: update count, RNG position, the sparse-recovery component,
/// the pre-drawn subset (sorted), then the live subset counters sorted by
/// item (signed counts, two's-complement).
impl Snapshot for StrictTurnstileF0Sampler {
    const TAG: u16 = codec::tag::TURNSTILE_F0_SAMPLER;

    fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_tag(Self::TAG);
        w.put_u64(self.processed);
        self.rng.encode_into(w);
        self.recovery.encode_into(w);
        codec::put_sorted_u64_set(w, self.subset.iter().copied());
        let mut counts: Vec<(Item, i64)> =
            self.subset_counts.iter().map(|(&i, &c)| (i, c)).collect();
        counts.sort_unstable_by_key(|&(i, _)| i);
        w.put_len(counts.len());
        for (item, count) in counts {
            w.put_u64(item);
            w.put_i64(count);
        }
    }
}

impl Restore for StrictTurnstileF0Sampler {
    fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, CodecError> {
        r.expect_tag(Self::TAG)?;
        let processed = r.get_u64()?;
        let rng = Xoshiro256::decode_from(r)?;
        let recovery = SparseRecovery::decode_from(r)?;
        let universe = recovery.universe();
        let sorted = codec::get_sorted_u64_set(r)?;
        // The subset is drawn from [0, universe); sorted, so the last
        // element bounds them all.
        if sorted.last().is_some_and(|&max| max >= universe) {
            return Err(CodecError::InvalidValue {
                what: "pre-drawn subset member outside the universe",
            });
        }
        let subset: HashSet<Item> = sorted.into_iter().collect();
        let len = r.get_len(16)?;
        let mut subset_counts = HashMap::with_capacity(len);
        let mut previous: Option<Item> = None;
        for _ in 0..len {
            let item = r.get_u64()?;
            let count = r.get_i64()?;
            // Canonical: strictly ascending items (distinct for free), keys
            // inside the pre-drawn subset, zero entries never stored.
            if previous.is_some_and(|p| p >= item) || count == 0 || !subset.contains(&item) {
                return Err(CodecError::InvalidValue {
                    what: "subset counters must be ascending subset members with nonzero counts",
                });
            }
            previous = Some(item);
            subset_counts.insert(item, count);
        }
        Ok(Self {
            recovery,
            subset,
            subset_counts,
            processed,
            rng,
        })
    }
}

impl TurnstileSampler for StrictTurnstileF0Sampler {
    fn update(&mut self, update: SignedUpdate) {
        self.processed += 1;
        self.recovery.update(update);
        if self.subset.contains(&update.item) {
            let entry = self.subset_counts.entry(update.item).or_insert(0);
            *entry += update.delta;
            if *entry == 0 {
                self.subset_counts.remove(&update.item);
            }
        }
    }

    /// Amortised batch path: coalesces the batch to one net delta per item
    /// (first-occurrence order), then applies each with a single `O(k)`
    /// syndrome pass instead of one per update. Everything `update`
    /// touches is additive in the delta — the field syndromes via
    /// [`SparseRecovery::update_coalesced`], the subset counters via
    /// `+=` — and no RNG is consumed during updates, so the final state
    /// (including `processed` and `updates_processed`) is identical to the
    /// per-update loop's: the batch ≡ loop law holds by linearity.
    fn update_batch(&mut self, updates: &[SignedUpdate]) {
        let mut order: Vec<Item> = Vec::new();
        let mut totals: HashMap<Item, (i128, u64)> =
            HashMap::with_capacity(updates.len().min(1024));
        for u in updates {
            let entry = totals.entry(u.item).or_insert_with(|| {
                order.push(u.item);
                (0, 0)
            });
            entry.0 += i128::from(u.delta);
            entry.1 += 1;
        }
        // A per-item net delta outside i64 (≥ 2^63 aggregate magnitude)
        // cannot be coalesced losslessly; replay such batches verbatim.
        if totals
            .values()
            .any(|&(total, _)| i64::try_from(total).is_err())
        {
            for &u in updates {
                self.update(u);
            }
            return;
        }
        self.processed += updates.len() as u64;
        for item in order {
            let (total, count) = totals[&item];
            let total = total as i64;
            self.recovery.update_coalesced(item, total, count);
            if self.subset.contains(&item) {
                let entry = self.subset_counts.entry(item).or_insert(0);
                *entry = entry.wrapping_add(total);
                if *entry == 0 {
                    self.subset_counts.remove(&item);
                }
            }
        }
    }

    fn sample(&mut self) -> SampleOutcome {
        if self.processed == 0 || self.recovery.is_zero() {
            return SampleOutcome::Empty;
        }
        if let Some(recovered) = self.recovery.recover() {
            let support: Vec<Item> = recovered
                .iter()
                .filter(|&&(_, v)| v != 0)
                .map(|&(i, _)| i)
                .collect();
            if support.is_empty() {
                return SampleOutcome::Empty;
            }
            let idx = self.rng.gen_index(support.len());
            return SampleOutcome::Index(support[idx]);
        }
        // Dense case: the support exceeds the recovery budget; fall back to
        // the random pre-drawn subset.
        let mut live: Vec<Item> = self
            .subset_counts
            .iter()
            .filter(|&(_, &c)| c > 0)
            .map(|(&i, _)| i)
            .collect();
        if live.is_empty() {
            return SampleOutcome::Fail;
        }
        // HashMap iteration order is per-instance; sort so that samplers with
        // equal logical state draw identically (mirrors the recovered path).
        live.sort_unstable();
        let idx = self.rng.gen_index(live.len());
        SampleOutcome::Index(live[idx])
    }
}

impl SpaceUsage for StrictTurnstileF0Sampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.recovery.space_bytes()
            + hashset_bytes(&self.subset)
            + hashmap_bytes(&self.subset_counts)
    }
}

/// The Alice/Bob equality protocol built from a `(0, γ, δ)`-sampler oracle
/// (the reduction in the proof of Theorem 1.2).
///
/// The sampler oracle is modelled directly on the final frequency vector
/// `x − y` (any turnstile sampler is a function of that vector plus its own
/// randomness): it reports `⊥` when the vector is zero, and when the vector
/// is nonzero it still reports `⊥` with probability `γ` — the additive
/// slack Definition 1.1 tolerates. Bob declares "equal" iff he sees `⊥`, so
/// his advantage over guessing on unequal inputs is exactly the sampler's
/// additive error.
#[derive(Debug, Clone, Copy)]
pub struct EqualityReduction {
    /// The additive error of the sampler being exploited.
    pub gamma: f64,
    /// The probability the sampler declares `FAIL` (ignored by the
    /// protocol, which simply re-queries; kept for completeness).
    pub fail_probability: f64,
}

impl EqualityReduction {
    /// Creates the reduction harness for a sampler with additive error
    /// `gamma`.
    ///
    /// # Panics
    ///
    /// Panics unless `γ ∈ [0, 1)`.
    pub fn new(gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0,1)");
        Self {
            gamma,
            fail_probability: 0.0,
        }
    }

    /// Runs the protocol on one instance and returns Bob's declaration
    /// ("the inputs are equal").
    pub fn run<R: StreamRng>(&self, instance: &EqualityInstance, rng: &mut R) -> bool {
        let mut updates = instance.alice_stream();
        updates.extend(instance.bob_stream());
        let vector = FrequencyVector::from_signed_stream(&updates);

        if vector.is_zero() {
            true
        } else {
            // A γ-additive sampler may report ⊥ on a nonzero vector with
            // probability up to γ; a truly perfect sampler never does.
            rng.gen_bool(self.gamma)
        }
    }

    /// Estimates the protocol's refutation error (probability of declaring
    /// "equal" on *unequal* inputs) over `trials` random unequal instances
    /// of dimension `n`. For a truly perfect sampler this is 0; for a
    /// γ-additive sampler it approaches γ — the advantage the lower bound
    /// converts into space.
    pub fn refutation_error<R: StreamRng>(&self, n: usize, trials: usize, rng: &mut R) -> f64 {
        let mut wrong = 0usize;
        let mut counted = 0usize;
        while counted < trials {
            let instance = tps_streams::generators::equality_instance(rng, n, 2);
            if instance.equal() {
                continue;
            }
            counted += 1;
            if self.run(&instance, rng) {
                wrong += 1;
            }
        }
        wrong as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_random::default_rng;
    use tps_streams::generators::strict_turnstile_stream;
    use tps_streams::stats::SampleHistogram;

    fn signed_stream_from_counts(counts: &[(Item, u64)]) -> Vec<SignedUpdate> {
        // Interleave inserts with some insert/delete churn that cancels, so
        // the stream genuinely exercises the turnstile path.
        let mut updates = Vec::new();
        for &(item, c) in counts {
            for _ in 0..c {
                updates.push(SignedUpdate::insert(item));
            }
            updates.push(SignedUpdate::insert(item + 10_000));
            updates.push(SignedUpdate::delete(item + 10_000));
        }
        updates
    }

    #[test]
    fn multipass_l1_distribution_is_exact() {
        let counts = [(3u64, 8u64), (400, 4), (901, 2), (77, 1)];
        let stream = signed_stream_from_counts(&counts);
        let truth = FrequencyVector::from_signed_stream(&stream);
        let target = truth.lp_distribution(1.0);
        let sampler = MultiPassL1Sampler::new(1_000, 0.25);
        let mut rng = default_rng(7);
        let mut histogram = SampleHistogram::new();
        for _ in 0..8_000 {
            let (outcome, report) = sampler.sample(&stream, &mut rng);
            assert!(report.passes <= 6, "too many passes: {}", report.passes);
            histogram.record(outcome);
        }
        assert_eq!(histogram.fails(), 0);
        assert!(histogram.tv_distance(&target) < 0.03);
    }

    #[test]
    fn multipass_pass_space_tradeoff() {
        let stream = vec![SignedUpdate::insert(123); 10];
        let mut rng = default_rng(8);
        let coarse = MultiPassL1Sampler::new(65_536, 0.5);
        let fine = MultiPassL1Sampler::new(65_536, 0.125);
        let (_, coarse_report) = coarse.sample(&stream, &mut rng);
        let (_, fine_report) = fine.sample(&stream, &mut rng);
        // Fewer chunks per pass ⇒ more passes but fewer counters.
        assert!(fine_report.passes > coarse_report.passes);
        assert!(fine_report.peak_counters < coarse_report.peak_counters);
    }

    #[test]
    fn multipass_l2_distribution_is_exact() {
        let counts = [(5u64, 6u64), (6, 3), (7, 1)];
        let stream = signed_stream_from_counts(&counts);
        let truth = FrequencyVector::from_signed_stream(&stream);
        let target = truth.lp_distribution(2.0);
        let sampler = MultiPassLpSampler::new(2.0, 64, 0.5, 0.1);
        let mut rng = default_rng(9);
        let mut histogram = SampleHistogram::new();
        for _ in 0..6_000 {
            let (outcome, _) = sampler.sample(&stream, &mut rng);
            histogram.record(outcome);
        }
        assert!(
            histogram.fail_rate() < 0.1,
            "fail rate {}",
            histogram.fail_rate()
        );
        assert!(histogram.tv_distance(&target) < 0.04);
    }

    #[test]
    fn multipass_zero_vector_reports_empty() {
        let stream = vec![SignedUpdate::insert(5), SignedUpdate::delete(5)];
        let sampler = MultiPassL1Sampler::new(100, 0.5);
        let mut rng = default_rng(10);
        let (outcome, _) = sampler.sample(&stream, &mut rng);
        assert_eq!(outcome, SampleOutcome::Empty);
    }

    #[test]
    fn strict_turnstile_f0_sparse_case_is_uniform() {
        // Final support of size 3 out of a universe of 400 (≤ √n budget
        // after cancellations).
        let mut updates = Vec::new();
        for item in 0..60u64 {
            updates.push(SignedUpdate::insert(item));
        }
        for item in 0..60u64 {
            if ![7, 21, 42].contains(&item) {
                updates.push(SignedUpdate::delete(item));
            }
        }
        let mut histogram = SampleHistogram::new();
        for seed in 0..3_000u64 {
            let mut s = StrictTurnstileF0Sampler::new(400, seed);
            for &u in &updates {
                s.update(u);
            }
            histogram.record(s.sample());
        }
        assert_eq!(histogram.fails(), 0);
        let target: HashMap<Item, f64> = [(7u64, 1.0 / 3.0), (21, 1.0 / 3.0), (42, 1.0 / 3.0)]
            .into_iter()
            .collect();
        assert!(histogram.tv_distance(&target) < 0.04);
    }

    #[test]
    fn strict_turnstile_f0_dense_case_succeeds() {
        let mut rng = default_rng(11);
        let updates = strict_turnstile_stream(&mut rng, 500, 3_000, 0.2);
        let truth = FrequencyVector::from_signed_stream(&updates);
        assert!(truth.f0() > 25, "test stream should have a large support");
        let mut histogram = SampleHistogram::new();
        for seed in 0..300u64 {
            let mut s = StrictTurnstileF0Sampler::new(500, 40_000 + seed);
            for &u in &updates {
                s.update(u);
            }
            let outcome = s.sample();
            if let SampleOutcome::Index(i) = outcome {
                assert!(truth.get(i) > 0, "sampled item {i} is not in the support");
            }
            histogram.record(outcome);
        }
        assert!(
            histogram.fail_rate() < 0.2,
            "fail rate {}",
            histogram.fail_rate()
        );
    }

    #[test]
    fn equality_reduction_advantage_tracks_gamma() {
        let mut rng = default_rng(12);
        let perfect = EqualityReduction::new(0.0);
        let leaky = EqualityReduction::new(0.1);
        assert_eq!(perfect.refutation_error(64, 2_000, &mut rng), 0.0);
        let observed = leaky.refutation_error(64, 4_000, &mut rng);
        assert!(
            (observed - 0.1).abs() < 0.02,
            "observed advantage {observed}"
        );
    }

    #[test]
    fn lower_bound_bits_behaviour() {
        // Tiny gamma: bound is governed by n.
        assert!(lower_bound_bits(1_000, 1e-30) > lower_bound_bits(100, 1e-30));
        // Moderate gamma: bound grows as gamma shrinks.
        assert!(lower_bound_bits(1 << 20, 1e-9) > lower_bound_bits(1 << 20, 1e-3));
        // Truly perfect corresponds to gamma -> 0: for moderate n the bound
        // saturates at the linear-in-n regime.
        let n = 256;
        let nearly_zero = lower_bound_bits(n, f64::MIN_POSITIVE);
        assert!((nearly_zero - ((n as f64 / 2.0) - 7.0) / 128.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "gamma in (0, 1/4)")]
    fn lower_bound_rejects_large_gamma() {
        let _ = lower_bound_bits(100, 0.3);
    }
}
